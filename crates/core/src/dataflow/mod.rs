//! The typed graph-assembly interface (§4.3).
//!
//! A dataflow is built inside [`Worker::dataflow`](crate::runtime::Worker::dataflow):
//! the closure receives a [`Scope`], creates input stages, derives
//! [`Stream`]s through operators, and wires loops through
//! [`LoopContext`]s. Each worker runs the same
//! construction code, producing its own vertex per stage — the physical
//! expansion of §3.1.
//!
//! Operators are built from closures over typed ports:
//!
//! * `OnRecv` logic drains an [`InputPort`] and writes an [`OutputPort`];
//! * `OnNotify` logic runs when the system guarantees no further messages
//!   at or before the requested time (§2.2), requested through [`Notify`].

pub mod builder;
pub mod input;
pub mod loops;
pub mod ops;
pub mod output;
mod ports;

pub use input::InputHandle;
pub use loops::LoopContext;
pub use output::ProbeHandle;
pub use ports::{InputPort, OutputPort, Session};

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{ContextId, GraphBuilder, StageId};
use crate::progress::{Pointstamp, PointstampTable};
use crate::runtime::channels::{journal_update, Journal, Pact, Puller, Pusher, RoutingContext};
use crate::runtime::durability::{Checkpoint, KeyedCheckpoint, KeyedState};
use crate::time::Timestamp;

use ports::{new_tee, Tee};

/// The worker's view of a dataflow's progress state, filled in when the
/// graph is finalized. Probes and notificators hold clones.
pub(crate) type TrackerCell = Rc<RefCell<Option<PointstampTable>>>;

/// Construction-time `notify_at` requests, drained into
/// [`GraphBuilder::declare_notification`] when the scope finalizes so the
/// static analyzer (`NA0003`) can check them. `None` once the dataflow is
/// running — runtime requests are checked dynamically by the tracker.
pub(crate) type NotifyLog = Rc<RefCell<Option<Vec<(StageId, Timestamp)>>>>;

/// A handle for requesting notifications at a stage (§2.2's `NotifyAt`).
///
/// Cloneable; `OnRecv` logic typically captures one to request future
/// notifications.
#[derive(Clone)]
pub struct Notify {
    inner: Rc<RefCell<NotifyState>>,
}

struct NotifyState {
    stage: StageId,
    journal: Journal,
    /// Requested blocking notifications, deduplicated by time.
    pending: Vec<Timestamp>,
    /// Requested purge notifications (§2.4: capability time ⊤): delivered
    /// once the frontier passes, but never counted as occurrences, so they
    /// introduce no coordination.
    purge: Vec<Timestamp>,
    /// Shared construction log (active until the scope finalizes).
    log: NotifyLog,
}

impl Notify {
    pub(crate) fn new(stage: StageId, journal: Journal, log: NotifyLog) -> Self {
        Notify {
            inner: Rc::new(RefCell::new(NotifyState {
                stage,
                journal,
                pending: Vec::new(),
                purge: Vec::new(),
                log,
            })),
        }
    }

    /// Requests that `OnNotify` run once no more messages at or before
    /// `time` can arrive. Duplicate requests for the same time coalesce.
    pub fn notify_at(&self, time: Timestamp) {
        let mut state = self.inner.borrow_mut();
        if !state.pending.contains(&time) {
            state.pending.push(time);
            let p = Pointstamp::at_vertex(time, state.stage);
            journal_update(&state.journal, p, 1);
            // While the graph is still under construction, record the
            // interest for the static analyzer (`NA0003`).
            if let Some(log) = state.log.borrow_mut().as_mut() {
                log.push((state.stage, time));
            }
        }
    }

    /// Requests a *purge* notification (§2.4): guaranteed not to run
    /// before `time`, but carrying no capability to send — so it does not
    /// hold back the frontier. Use it to free state for completed times.
    pub fn notify_at_purge(&self, time: Timestamp) {
        let mut state = self.inner.borrow_mut();
        if !state.purge.contains(&time) {
            state.purge.push(time);
        }
    }

    /// Removes and returns notifications that are now deliverable:
    /// `(time, blocking)` pairs, blocking ones first.
    pub(crate) fn take_ready(&self, tracker: &PointstampTable) -> Vec<(Timestamp, bool)> {
        let mut state = self.inner.borrow_mut();
        let stage = state.stage;
        let mut ready = Vec::new();
        state.pending.retain(|&t| {
            if tracker.notification_ready(&Pointstamp::at_vertex(t, stage)) {
                ready.push((t, true));
                false
            } else {
                true
            }
        });
        state.purge.retain(|&t| {
            if tracker.done_through(&t, crate::graph::Location::Vertex(stage)) {
                ready.push((t, false));
                false
            } else {
                true
            }
        });
        ready
    }

    /// Journals the retirement of a delivered blocking notification; runs
    /// after the `OnNotify` logic completes (§2.3).
    pub(crate) fn retire(&self, time: Timestamp) {
        let state = self.inner.borrow();
        let p = Pointstamp::at_vertex(time, state.stage);
        journal_update(&state.journal, p, -1);
    }
}

/// A registered piece of operator state: either opaque (checkpoint/restore
/// only) or keyed (additionally partitionable for elastic rescaling).
#[derive(Clone)]
pub(crate) enum StateHandle {
    /// Registered through [`OperatorInfo::register_state`]: restorable
    /// into the same worker count only.
    Opaque(Rc<RefCell<dyn Checkpoint>>),
    /// Registered through [`OperatorInfo::register_keyed_state`]: can be
    /// split and re-merged along its exchange partitioning.
    Keyed(Rc<RefCell<dyn KeyedCheckpoint>>),
}

impl StateHandle {
    /// Serializes the state (either flavor) into `buf`.
    pub(crate) fn checkpoint(&self, buf: &mut Vec<u8>) {
        match self {
            StateHandle::Opaque(s) => s.borrow().checkpoint(buf),
            StateHandle::Keyed(s) => s.borrow().checkpoint(buf),
        }
    }

    /// Restores the state (either flavor) from `input`.
    pub(crate) fn restore(&self, input: &mut &[u8]) {
        match self {
            StateHandle::Opaque(s) => s.borrow_mut().restore(input),
            StateHandle::Keyed(s) => s.borrow_mut().restore(input),
        }
    }

    /// The keyed view, if this state supports partition migration.
    pub(crate) fn keyed(&self) -> Option<&Rc<RefCell<dyn KeyedCheckpoint>>> {
        match self {
            StateHandle::Opaque(_) => None,
            StateHandle::Keyed(s) => Some(s),
        }
    }

    /// Whether this state can migrate across a worker-count change.
    pub(crate) fn is_keyed(&self) -> bool {
        matches!(self, StateHandle::Keyed(_))
    }
}

/// Registered checkpointable states, in registration order (identical
/// across workers by the SPMD contract, so blobs line up on restore).
pub(crate) type StateRegistry = Rc<RefCell<Vec<(StageId, StateHandle)>>>;

/// Construction-time facts handed to operator constructors.
pub struct OperatorInfo {
    /// The stage the operator instantiates.
    pub stage: StageId,
    /// Notification handle for this vertex.
    pub notify: Notify,
    /// This worker's global index.
    pub worker_index: usize,
    /// Total workers cooperating on the dataflow.
    pub peers: usize,
    states: StateRegistry,
}

impl OperatorInfo {
    pub(crate) fn new(
        stage: StageId,
        notify: Notify,
        worker_index: usize,
        peers: usize,
        states: StateRegistry,
    ) -> Self {
        OperatorInfo {
            stage,
            notify,
            worker_index,
            peers,
            states,
        }
    }

    /// Registers vertex state for checkpointing (§3.4): the state is
    /// serialized by [`Worker::checkpoint`](crate::runtime::Worker::checkpoint)
    /// and reloaded by [`Worker::restore`](crate::runtime::Worker::restore).
    ///
    /// Registration order must match across workers and runs — it does
    /// automatically when every worker runs the same construction code.
    pub fn register_state(&self, state: Rc<RefCell<dyn Checkpoint>>) {
        self.states
            .borrow_mut()
            .push((self.stage, StateHandle::Opaque(state)));
    }

    /// Registers *keyed* vertex state: a map partitioned by the same
    /// routing function the operator exchanges its records on.
    ///
    /// Beyond plain [`register_state`](Self::register_state) checkpointing,
    /// keyed state can be split into per-partition shards and re-merged
    /// under a different worker count, which is what lets
    /// [`execute_elastic`](crate::runtime::rescale::execute_elastic)
    /// migrate the operator across a rescale instead of aborting it.
    ///
    /// `route` must agree with the exchange contract feeding the operator
    /// (typically the same hash passed to `Pact::exchange`); entries are
    /// owned by worker `route(key) % peers`.
    pub fn register_keyed_state<K, V>(
        &self,
        state: Rc<RefCell<std::collections::HashMap<K, V>>>,
        route: impl Fn(&K) -> u64 + 'static,
    ) where
        K: naiad_wire::Wire + Eq + std::hash::Hash + 'static,
        V: naiad_wire::Wire + 'static,
    {
        let adapter: Rc<RefCell<dyn KeyedCheckpoint>> =
            Rc::new(RefCell::new(KeyedState::new(state, route)));
        self.states
            .borrow_mut()
            .push((self.stage, StateHandle::Keyed(adapter)));
    }
}

/// The type-erased vertex harness a worker schedules.
pub(crate) trait OpCore {
    /// The stage this vertex belongs to (telemetry and diagnostics).
    fn stage(&self) -> StageId;
    /// Debug name (telemetry and diagnostics).
    fn name(&self) -> &str;
    /// Drains queued input, runs `OnRecv` logic, flushes outputs.
    /// Returns whether any batch was processed.
    fn pump(&mut self) -> bool;
    /// The notification state.
    fn notify_handle(&self) -> &Notify;
    /// Runs `OnNotify` logic for a deliverable time.
    fn deliver(&mut self, time: Timestamp);
}

/// A generic vertex harness built from two closures.
pub(crate) struct CoreImpl {
    stage: StageId,
    name: String,
    pump_fn: Box<dyn FnMut() -> bool>,
    deliver_fn: Box<dyn FnMut(Timestamp)>,
    notify: Notify,
}

impl CoreImpl {
    pub(crate) fn new(
        stage: StageId,
        name: String,
        notify: Notify,
        pump_fn: Box<dyn FnMut() -> bool>,
        deliver_fn: Box<dyn FnMut(Timestamp)>,
    ) -> Self {
        CoreImpl {
            stage,
            name,
            pump_fn,
            deliver_fn,
            notify,
        }
    }
}

impl OpCore for CoreImpl {
    fn stage(&self) -> StageId {
        self.stage
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn pump(&mut self) -> bool {
        (self.pump_fn)()
    }
    fn notify_handle(&self) -> &Notify {
        &self.notify
    }
    fn deliver(&mut self, time: Timestamp) {
        (self.deliver_fn)(time);
    }
}

/// The dataflow under construction.
///
/// Created by [`Worker::dataflow`](crate::runtime::Worker::dataflow);
/// cloned freely into [`Stream`]s.
pub struct Scope {
    pub(crate) inner: Rc<RefCell<ScopeInner>>,
}

pub(crate) struct ScopeInner {
    pub(crate) builder: GraphBuilder,
    pub(crate) routing: RoutingContext,
    pub(crate) journal: Journal,
    pub(crate) tracker: TrackerCell,
    pub(crate) ops: Vec<Rc<RefCell<dyn OpCore>>>,
    pub(crate) states: StateRegistry,
    /// Construction-time notification interests (`Some` until finalize).
    pub(crate) notify_log: NotifyLog,
    next_channel: usize,
}

impl Scope {
    pub(crate) fn new(routing: RoutingContext, journal: Journal, tracker: TrackerCell) -> Self {
        Scope {
            inner: Rc::new(RefCell::new(ScopeInner {
                builder: GraphBuilder::new(),
                routing,
                journal,
                tracker,
                ops: Vec::new(),
                states: Rc::new(RefCell::new(Vec::new())),
                notify_log: Rc::new(RefCell::new(Some(Vec::new()))),
                next_channel: 0,
            })),
        }
    }

    /// This worker's global index.
    pub fn worker_index(&self) -> usize {
        self.inner.borrow().routing.my_index
    }

    /// Total number of workers cooperating on this dataflow.
    pub fn peers(&self) -> usize {
        self.inner.borrow().routing.peers
    }

    pub(crate) fn clone_ref(&self) -> Scope {
        Scope {
            inner: self.inner.clone(),
        }
    }

    /// Validates the constructed graph, runs the static analyzer, and
    /// takes ownership of the vertex harnesses; called by the worker when
    /// the construction closure returns.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails structural validation or carries an
    /// analyzer diagnostic at or above the config's deny severity.
    pub(crate) fn finalize(&self, config: &crate::analysis::AnalysisConfig) -> FinalizedDataflow {
        let mut inner = self.inner.borrow_mut();
        let mut builder = std::mem::replace(&mut inner.builder, GraphBuilder::new());
        let ops = std::mem::take(&mut inner.ops);
        let states = inner.states.clone();
        // Close the construction window: notify_at calls made while the
        // dataflow runs are checked dynamically, not statically.
        let declared = inner.notify_log.borrow_mut().take().unwrap_or_default();
        drop(inner);
        for (stage, time) in declared {
            builder.declare_notification(stage, time);
        }
        // Surface state registrations to the analyzer (NA0006's
        // rescale-contracts mode certifies keyed state placement).
        for (stage, handle) in states.borrow().iter() {
            builder.declare_stateful(*stage, handle.is_keyed());
        }
        let (graph, report) = builder
            .build_checked(config)
            .unwrap_or_else(|e| panic!("invalid dataflow graph: {e}"));
        (graph, ops, states, report)
    }
}

/// Everything [`Scope::finalize`] hands the worker: the validated graph,
/// the vertex harnesses, the checkpointable state registry, and the
/// static analyzer's report.
pub(crate) type FinalizedDataflow = (
    crate::graph::LogicalGraph,
    Vec<Rc<RefCell<dyn OpCore>>>,
    StateRegistry,
    crate::analysis::AnalysisReport,
);

impl ScopeInner {
    pub(crate) fn alloc_channel(&mut self) -> usize {
        let c = self.next_channel;
        self.next_channel += 1;
        c
    }
}

/// A typed stream of records produced by one stage output.
///
/// Streams are cheap handles: cloning shares the underlying output.
pub struct Stream<D> {
    pub(crate) stage: StageId,
    pub(crate) port: usize,
    pub(crate) context: ContextId,
    pub(crate) tee: Tee<D>,
    pub(crate) scope: Scope,
}

impl<D> Clone for Stream<D> {
    fn clone(&self) -> Self {
        Stream {
            stage: self.stage,
            port: self.port,
            context: self.context,
            tee: self.tee.clone(),
            scope: self.scope.clone_ref(),
        }
    }
}

impl<D: ExchangeData> Stream<D> {
    /// Creates a stream for a freshly added stage output.
    pub(crate) fn new(stage: StageId, port: usize, context: ContextId, scope: Scope) -> Self {
        Stream {
            stage,
            port,
            context,
            tee: new_tee(),
            scope,
        }
    }

    /// Creates a stream over an existing tee (used by the generic
    /// builder, whose output ports and streams share one fan-out point).
    pub(crate) fn from_parts(
        stage: StageId,
        port: usize,
        context: ContextId,
        tee: ports::Tee<D>,
        scope: &Scope,
    ) -> Self {
        Stream {
            stage,
            port,
            context,
            tee,
            scope: scope.clone_ref(),
        }
    }

    /// The stage producing this stream.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// The loop context the stream lives in.
    pub fn context(&self) -> ContextId {
        self.context
    }

    /// The scope this stream belongs to.
    pub fn scope(&self) -> Scope {
        self.scope.clone_ref()
    }

    /// Wires this stream into `dst`'s input `port` under `pact`,
    /// returning the receiving port for the consuming vertex.
    pub(crate) fn connect_to(&self, dst: StageId, port: usize, pact: Pact<D>) -> InputPort<D> {
        let mut inner = self.scope.inner.borrow_mut();
        let connector = inner
            .builder
            .connect_with(self.stage, self.port, dst, port, pact.kind());
        let channel = inner.alloc_channel();
        let pusher = Pusher::new(
            &inner.routing,
            channel,
            connector,
            pact,
            inner.journal.clone(),
        );
        let puller = Puller::new(&inner.routing, channel, connector, inner.journal.clone());
        drop(inner);
        self.tee.borrow_mut().push(pusher);
        InputPort::new(puller)
    }
}
