//! Typed operator ports.
//!
//! User vertex logic sees its connectors through an [`InputPort`] (queued
//! `OnRecv` batches) and an [`OutputPort`] (the `SendBy` side, fanning out
//! to every downstream connector attached to the stage output).

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::runtime::channels::{Puller, Pusher};
use crate::time::Timestamp;

/// The shared fan-out point of a stage output: one pusher per downstream
/// connector, attached as consumers are built.
pub(crate) type Tee<D> = Rc<RefCell<Vec<Pusher<D>>>>;

/// Creates an empty tee.
pub(crate) fn new_tee<D>() -> Tee<D> {
    Rc::new(RefCell::new(Vec::new()))
}

/// The receiving side of a connector, handed to vertex logic.
///
/// Each call to [`InputPort::next`] delivers one timestamped batch; the
/// previous batch's retirement is journaled at that point (its `OnRecv`
/// completed). The harness settles the final batch after the logic
/// returns.
pub struct InputPort<D> {
    puller: Puller<D>,
    worked: bool,
}

impl<D: ExchangeData> InputPort<D> {
    pub(crate) fn new(puller: Puller<D>) -> Self {
        InputPort {
            puller,
            worked: false,
        }
    }

    /// The next queued batch, if any.
    ///
    /// Deliberately named like `Iterator::next` — vertex logic reads as a
    /// queue drain — but an `Iterator` impl would hide the settle
    /// discipline, so the port is not one.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Timestamp, Vec<D>)> {
        let message = self.puller.pull()?;
        self.worked = true;
        Some((message.time, message.data))
    }

    /// Applies `logic` to every queued batch.
    pub fn for_each(&mut self, mut logic: impl FnMut(Timestamp, Vec<D>)) {
        while let Some((time, data)) = self.next() {
            logic(time, data);
        }
    }

    /// Applies `logic` to every queued batch *by reference*, recycling
    /// each emptied container back to the channel's spare stack
    /// (DESIGN.md §16).
    ///
    /// This is the zero-allocation counterpart of
    /// [`for_each`](InputPort::for_each): records the logic leaves in the
    /// container are discarded when it is recycled, so drain it (e.g. via
    /// `drain(..)`, [`Session::give_container`], or `std::mem::take` of
    /// individual records). Prefer this form on hot paths.
    pub fn for_each_batch(&mut self, mut logic: impl FnMut(Timestamp, &mut Vec<D>)) {
        while let Some(message) = self.puller.pull() {
            self.worked = true;
            let crate::runtime::channels::Message { time, mut data } = message;
            logic(time, &mut data);
            self.puller.recycle(data);
        }
    }

    /// Journals the retirement of the last delivered batch.
    pub(crate) fn settle(&mut self) {
        self.puller.settle();
    }

    /// Unwraps the underlying puller (used by the generic builder).
    pub(crate) fn into_puller(self) -> Puller<D> {
        self.puller
    }

    /// Whether any batch was delivered since the last reset.
    pub(crate) fn take_worked(&mut self) -> bool {
        std::mem::take(&mut self.worked)
    }
}

/// The sending side of a stage output, handed to vertex logic.
pub struct OutputPort<D> {
    tee: Tee<D>,
}

impl<D: ExchangeData> OutputPort<D> {
    pub(crate) fn new(tee: Tee<D>) -> Self {
        OutputPort { tee }
    }

    /// Opens a session sending records at `time`.
    ///
    /// Vertex logic must only use times greater than or equal to the time
    /// of the event being processed (§2.2); the progress tracker's
    /// correctness depends on it.
    pub fn session(&mut self, time: Timestamp) -> Session<'_, D> {
        Session {
            tee: &self.tee,
            time,
        }
    }

    /// Sends one record at `time`.
    pub fn give(&mut self, time: Timestamp, record: D) {
        self.session(time).give(record);
    }

    /// Flushes every attached pusher's buffers.
    pub(crate) fn flush(&mut self) {
        for pusher in self.tee.borrow_mut().iter_mut() {
            pusher.flush();
        }
    }
}

/// A borrowed sending session at a fixed timestamp.
pub struct Session<'a, D> {
    tee: &'a Tee<D>,
    time: Timestamp,
}

impl<D: ExchangeData> Session<'_, D> {
    /// Sends one record.
    pub fn give(&mut self, record: D) {
        let mut pushers = self.tee.borrow_mut();
        let n = pushers.len();
        if n == 0 {
            return; // No consumers: records are dropped, like Naiad.
        }
        for pusher in pushers.iter_mut().take(n - 1) {
            pusher.give(self.time, record.clone());
        }
        pushers[n - 1].give(self.time, record);
    }

    /// Sends every record from an iterator.
    pub fn give_iterator(&mut self, records: impl IntoIterator<Item = D>) {
        for r in records {
            self.give(r);
        }
    }

    /// Sends a vector of records.
    pub fn give_vec(&mut self, records: Vec<D>) {
        self.give_iterator(records);
    }

    /// Sends a whole container of records, draining it in place (its
    /// capacity is retained for the caller to refill).
    ///
    /// The final consumer takes the records by move — pipeline channels
    /// can ship the container itself — and any additional consumers
    /// receive clones. Pair with
    /// [`InputPort::for_each_batch`](super::ports::InputPort::for_each_batch)
    /// for an allocation-free steady state (DESIGN.md §16).
    pub fn give_container(&mut self, records: &mut Vec<D>) {
        let mut pushers = self.tee.borrow_mut();
        let n = pushers.len();
        if n == 0 {
            records.clear(); // No consumers: records are dropped, like Naiad.
            return;
        }
        for pusher in pushers.iter_mut().take(n - 1) {
            let mut copy = records.clone();
            pusher.give_batch(self.time, &mut copy);
        }
        pushers[n - 1].give_batch(self.time, records);
    }

    /// The session's timestamp.
    pub fn time(&self) -> Timestamp {
        self.time
    }
}
