//! The general vertex builder (§4.3): stages with any number of typed
//! inputs and outputs.
//!
//! [`Stream::unary`](super::Stream::unary) and friends cover the common
//! shapes; this builder covers the rest — e.g. the paper's Figure 4
//! vertex (one input, *two* outputs) or its Pregel port ("a custom vertex
//! with several strongly typed inputs and outputs"). Ports are created
//! one at a time, each typed independently; the vertex logic is a pair of
//! closures over the captured ports, exactly like the fixed-shape
//! builders.
//!
//! # Examples
//!
//! A one-input, two-output splitter:
//!
//! ```
//! use naiad::dataflow::builder::OperatorBuilder;
//! use naiad::dataflow::{InputPort, OutputPort};
//! use naiad::runtime::Pact;
//! use naiad::{execute, Config};
//!
//! let results = execute(Config::single_process(1), |worker| {
//!     let (mut input, evens_out, odds_out) = worker.dataflow(|scope| {
//!         let (input, numbers) = scope.new_input::<u64>();
//!         let mut builder = OperatorBuilder::new(scope, "SplitParity", numbers.context());
//!         let mut port = builder.add_input(&numbers, Pact::Pipeline);
//!         let (evens_port, evens) = builder.add_output::<u64>();
//!         let (odds_port, odds) = builder.add_output::<u64>();
//!         builder.build(
//!             move || {
//!                 let mut worked = false;
//!                 port.for_each(|time, data| {
//!                     worked = true;
//!                     for x in data {
//!                         if x % 2 == 0 {
//!                             evens_port.borrow_mut().give(time, x);
//!                         } else {
//!                             odds_port.borrow_mut().give(time, x);
//!                         }
//!                     }
//!                 });
//!                 port.settle_now();
//!                 worked
//!             },
//!             |_time| {},
//!         );
//!         (input, evens.capture(), odds.capture())
//!     });
//!     input.send_batch([1, 2, 3, 4, 5]);
//!     input.close();
//!     worker.step_until_done();
//!     let result = (evens_out.borrow().clone(), odds_out.borrow().clone());
//!     result
//! })
//! .unwrap();
//! let (evens, odds) = &results[0];
//! assert_eq!(evens[0].1, vec![2, 4]);
//! assert_eq!(odds[0].1, vec![1, 3, 5]);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{ContextId, StageId, StageKind};
use crate::runtime::channels::{Pact, Puller};
use crate::time::Timestamp;

use super::ops::install;
use super::ports::{new_tee, OutputPort};
use super::{Notify, OperatorInfo, Scope, Stream};

/// A vertex under construction with arbitrarily many typed ports.
pub struct OperatorBuilder {
    scope: Scope,
    stage: StageId,
    context: ContextId,
    name: String,
    notify: Notify,
    info: Option<OperatorInfo>,
    /// Flush hooks for every output, run after each pump/notify call.
    flushes: Vec<Box<dyn FnMut()>>,
}

/// A typed input created by [`OperatorBuilder::add_input`]: like
/// [`InputPort`](super::InputPort) but owning its settle discipline, since
/// the generic builder cannot see inside the user's closures.
pub struct BuilderInput<D> {
    puller: Puller<D>,
}

impl<D: ExchangeData> BuilderInput<D> {
    /// The next queued batch, if any. The previous batch is retired on
    /// each call (its processing is over once the logic asks for more).
    ///
    /// Deliberately named like `Iterator::next`; see
    /// [`InputPort::next`](super::InputPort::next).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Timestamp, Vec<D>)> {
        let message = self.puller.pull()?;
        Some((message.time, message.data))
    }

    /// Applies `logic` to every queued batch.
    pub fn for_each(&mut self, mut logic: impl FnMut(Timestamp, Vec<D>)) {
        while let Some((time, data)) = self.next() {
            logic(time, data);
        }
    }

    /// Retires the final delivered batch; call when the pump logic is
    /// done with this input for the current invocation.
    pub fn settle_now(&mut self) {
        self.puller.settle();
    }
}

impl OperatorBuilder {
    /// Starts building a vertex in `context`.
    pub fn new(scope: &mut Scope, name: &str, context: ContextId) -> Self {
        let (stage, notify, info) = {
            let mut inner = scope.inner.borrow_mut();
            let stage = inner
                .builder
                .add_stage(name, StageKind::Regular, context, 0, 0);
            let notify = Notify::new(stage, inner.journal.clone(), inner.notify_log.clone());
            let info = OperatorInfo::new(
                stage,
                notify.clone(),
                inner.routing.my_index,
                inner.routing.peers,
                inner.states.clone(),
            );
            (stage, notify, info)
        };
        OperatorBuilder {
            scope: scope.clone_ref(),
            stage,
            context,
            name: name.to_string(),
            notify,
            info: Some(info),
            flushes: Vec::new(),
        }
    }

    /// Construction-time facts (stage id, notification handle, worker
    /// index, state registration). May be taken once.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn info(&mut self) -> OperatorInfo {
        self.info.take().expect("OperatorBuilder::info taken twice")
    }

    /// The notification handle for this vertex.
    pub fn notify_handle(&self) -> Notify {
        self.notify.clone()
    }

    /// Attaches `stream` as the next input, under `pact`.
    ///
    /// # Panics
    ///
    /// Panics if the stream belongs to a different loop context.
    pub fn add_input<D: ExchangeData>(
        &mut self,
        stream: &Stream<D>,
        pact: Pact<D>,
    ) -> BuilderInput<D> {
        assert_eq!(
            stream.context(),
            self.context,
            "operator inputs must share the operator's loop context"
        );
        let port = self
            .scope
            .inner
            .borrow_mut()
            .builder
            .add_input_port(self.stage);
        let input = stream.connect_to(self.stage, port, pact);
        BuilderInput {
            puller: input.into_puller(),
        }
    }

    /// Adds the next output, returning the shared port (for the vertex
    /// logic) and its stream (for downstream consumers).
    pub fn add_output<D: ExchangeData>(&mut self) -> (Rc<RefCell<OutputPort<D>>>, Stream<D>) {
        let port = self
            .scope
            .inner
            .borrow_mut()
            .builder
            .add_output_port(self.stage);
        let tee = new_tee::<D>();
        let stream = Stream::from_parts(self.stage, port, self.context, tee.clone(), &self.scope);
        let output = Rc::new(RefCell::new(OutputPort::new(tee)));
        let flushing = output.clone();
        self.flushes
            .push(Box::new(move || flushing.borrow_mut().flush()));
        (output, stream)
    }

    /// Finalizes the vertex: `pump` is the `OnRecv` driver (drain the
    /// captured inputs, write the captured outputs, report whether any
    /// work happened); `deliver` is the `OnNotify` logic. Output buffers
    /// flush automatically after each invocation.
    ///
    /// **Contract:** `pump` must call [`BuilderInput::settle_now`] on each
    /// input it drained before returning. An unsettled final batch keeps
    /// its occurrence count alive, so notifications for its time — and
    /// eventually the whole dataflow — would never complete.
    pub fn build(
        mut self,
        mut pump: impl FnMut() -> bool + 'static,
        mut deliver: impl FnMut(Timestamp) + 'static,
    ) {
        // Both closures must flush every output; share the hooks.
        type Flushes = Rc<RefCell<Vec<Box<dyn FnMut()>>>>;
        let mut pump_flushes = std::mem::take(&mut self.flushes);
        let shared: Flushes = Rc::new(RefCell::new(Vec::new()));
        shared.borrow_mut().append(&mut pump_flushes);
        let pump_shared = shared.clone();
        let pump_fn = Box::new(move || {
            let worked = pump();
            for f in pump_shared.borrow_mut().iter_mut() {
                f();
            }
            worked
        });
        let deliver_fn = Box::new(move |time: Timestamp| {
            deliver(time);
            for f in shared.borrow_mut().iter_mut() {
                f();
            }
        });
        install(
            &self.scope,
            self.stage,
            &self.name,
            self.notify,
            pump_fn,
            deliver_fn,
        );
    }
}
