//! Output-side conveniences: probes, subscriptions, captures, inspection.
//!
//! `subscribe` is the paper's §4.1 output stage: a per-epoch callback fired
//! when the epoch is complete at this worker. `probe` exposes the frontier
//! at a point in the graph so driver code can pace itself ("has epoch e
//! reached the output yet?").

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{Location, StageId};
use crate::runtime::channels::Pact;
use crate::time::Timestamp;

use super::ports::InputPort;
use super::{Notify, Stream, TrackerCell};

/// Observes progress at a point in the dataflow.
///
/// The probe reflects this worker's view of the global frontier, which is
/// exactly the guarantee notifications rest on (§3.3): if
/// [`ProbeHandle::done_through`] reports `true` for an epoch, no record of
/// that epoch can ever arrive there again, anywhere.
#[derive(Clone)]
pub struct ProbeHandle {
    stage: StageId,
    tracker: TrackerCell,
}

impl ProbeHandle {
    /// Whether every event at or before `epoch` has drained at the probed
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if called before the enclosing dataflow is finalized.
    pub fn done_through(&self, epoch: u64) -> bool {
        self.tracker
            .borrow()
            .as_ref()
            .expect("probe consulted before the dataflow was finalized")
            .done_through(&Timestamp::new(epoch), Location::Vertex(self.stage))
    }

    /// Whether the whole dataflow has quiesced from this worker's view.
    pub fn done(&self) -> bool {
        self.tracker
            .borrow()
            .as_ref()
            .expect("probe consulted before the dataflow was finalized")
            .is_empty()
    }
}

impl<D: ExchangeData> Stream<D> {
    /// Attaches a probe that consumes (and discards) the stream.
    pub fn probe(&self) -> ProbeHandle {
        let tracker = self.scope.inner.borrow().tracker.clone();
        let mut handle = ProbeHandle {
            stage: StageId(usize::MAX),
            tracker,
        };
        let stage_slot: Rc<RefCell<Option<StageId>>> = Rc::new(RefCell::new(None));
        let slot = stage_slot.clone();
        self.sink(Pact::Pipeline, "Probe", move |info| {
            *slot.borrow_mut() = Some(info.stage);
            move |input: &mut InputPort<D>| {
                input.for_each_batch(|_, _| {});
            }
        });
        handle.stage = stage_slot
            .borrow()
            .expect("sink constructor runs synchronously");
        handle
    }

    /// Invokes `callback(epoch, records)` once per completed epoch with
    /// this worker's partition of the stream (§4.1's `Subscribe`).
    ///
    /// The callback also fires for epochs with no records, so consumers
    /// observe every completed epoch in order of completion.
    ///
    /// Only root-context streams can be subscribed; leave loops first.
    ///
    /// # Panics
    ///
    /// Panics if the stream is inside a loop context.
    pub fn subscribe(&self, mut callback: impl FnMut(u64, Vec<D>) + 'static) {
        assert_eq!(
            self.context,
            crate::graph::ContextId::ROOT,
            "subscribe requires a top-level stream"
        );
        self.sink_notify(Pact::Pipeline, "Subscribe", move |_info| {
            let buffers: Rc<RefCell<HashMap<u64, Vec<D>>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv_buffers = buffers.clone();
            let mut max_seen = 0u64;
            (
                move |input: &mut InputPort<D>, notify: &Notify| {
                    let mut buffers = recv_buffers.borrow_mut();
                    input.for_each(|time, mut data| {
                        // Request completion for every epoch up to this one
                        // so earlier empty epochs are reported too.
                        while max_seen <= time.epoch {
                            notify.notify_at(Timestamp::new(max_seen));
                            max_seen += 1;
                        }
                        buffers.entry(time.epoch).or_default().append(&mut data);
                    });
                },
                move |time: Timestamp, _notify: &Notify| {
                    let data = buffers.borrow_mut().remove(&time.epoch).unwrap_or_default();
                    callback(time.epoch, data);
                },
            )
        });
    }

    /// Collects completed epochs into a shared vector; a test and example
    /// convenience built on [`Stream::subscribe`].
    // The nested type is the whole point: a shared, per-epoch record log.
    #[allow(clippy::type_complexity)]
    pub fn capture(&self) -> Rc<RefCell<Vec<(u64, Vec<D>)>>> {
        let captured = Rc::new(RefCell::new(Vec::new()));
        let sink = captured.clone();
        self.subscribe(move |epoch, data| {
            if !data.is_empty() {
                sink.borrow_mut().push((epoch, data));
            }
        });
        captured
    }

    /// Applies `action` to each record as it flows past, forwarding the
    /// stream unchanged.
    pub fn inspect(&self, mut action: impl FnMut(&Timestamp, &D) + 'static) -> Stream<D> {
        self.unary(Pact::Pipeline, "Inspect", move |_info| {
            move |input: &mut InputPort<D>, output: &mut super::OutputPort<D>| {
                input.for_each_batch(|time, data| {
                    for record in data.iter() {
                        action(&time, record);
                    }
                    output.session(time).give_container(data);
                });
            }
        })
    }
}
