//! Input stages and their external-producer handles (§2.1, §4.1).
//!
//! Each worker hosts one vertex of every input stage; the worker's driver
//! code feeds it through an [`InputHandle`] following the push-based model
//! of §4.1: `send` supplies records for the current epoch, `advance_to`
//! marks the epoch complete and opens a later one, and `close` marks the
//! input finished. The §2.3 initialization — an active pointstamp at the
//! input vertex for the first epoch — happens when the stage is created.

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{ContextId, StageId, StageKind};
use crate::progress::Pointstamp;
use crate::runtime::channels::{journal_update, Journal};
use crate::time::Timestamp;

use super::ports::Tee;
use super::{Scope, Stream, TrackerCell};

impl Scope {
    /// Adds an input stage, returning the producer handle and the stream
    /// of its records.
    ///
    /// Records sent before the dataflow closure returns are accepted but
    /// reach only consumers already attached; send after
    /// [`Worker::dataflow`](crate::runtime::Worker::dataflow) returns.
    pub fn new_input<D: ExchangeData>(&mut self) -> (InputHandle<D>, Stream<D>) {
        // §2.3's initialization (an active pointstamp at the input vertex
        // for the first epoch) is derived from the graph by every
        // participant's tracker and accumulator rather than journaled here;
        // this handle only journals epoch transitions and closure.
        let stage = self.inner.borrow_mut().builder.add_stage(
            "Input",
            StageKind::Input,
            ContextId::ROOT,
            0,
            1,
        );
        let stream: Stream<D> = Stream::new(stage, 0, ContextId::ROOT, self.clone_ref());
        let inner = self.inner.borrow();
        let journal = inner.journal.clone();
        let tracker = inner.tracker.clone();
        // Ingress admission control: when the run is configured with
        // credit-based flow control, the handle starts with the flow
        // config's open-epoch window so a producer using
        // `try_advance_to` cannot race ahead of the frontier.
        let window = inner
            .routing
            .flow
            .as_ref()
            .and_then(|f| f.config().max_open_epochs);
        drop(inner);
        let handle = InputHandle {
            shared: Rc::new(RefCell::new(InputShared {
                stage,
                epoch: 0,
                closed: false,
                tee: stream.tee.clone(),
                journal,
                tracker,
                window,
            })),
        };
        (handle, stream)
    }
}

struct InputShared<D> {
    stage: StageId,
    epoch: u64,
    closed: bool,
    tee: Tee<D>,
    journal: Journal,
    /// The dataflow's progress view, for the admission window.
    tracker: TrackerCell,
    /// Maximum epochs the producer may hold open beyond the frontier
    /// (`None` = unbounded, the classical §4.1 producer).
    window: Option<u64>,
}

impl<D> InputShared<D> {
    /// The oldest epoch the dataflow can still work on, from this
    /// worker's tracker. Falls back to the producer's own epoch while
    /// the graph is under construction or once everything has drained —
    /// both cases admit.
    fn frontier_epoch(&self) -> u64 {
        self.tracker
            .borrow()
            .as_ref()
            .and_then(crate::progress::PointstampTable::min_epoch)
            .unwrap_or(self.epoch)
    }
}

impl<D: ExchangeData> InputShared<D> {
    fn flush(&mut self) {
        for pusher in self.tee.borrow_mut().iter_mut() {
            pusher.flush();
        }
    }
}

/// The external producer's handle to an input stage (§4.1's `OnNext` /
/// `OnCompleted` pattern).
///
/// Dropping the handle closes the input if `close` was not called, so a
/// dataflow can always drain and shut down cleanly.
pub struct InputHandle<D: ExchangeData> {
    shared: Rc<RefCell<InputShared<D>>>,
}

impl<D: ExchangeData> InputHandle<D> {
    /// Supplies one record for the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if the input is closed.
    pub fn send(&mut self, record: D) {
        let shared = self.shared.borrow_mut();
        assert!(!shared.closed, "send on a closed input");
        let time = Timestamp::new(shared.epoch);
        let mut tee = shared.tee.borrow_mut();
        // Clone for all but the last subscriber; the last consumes the
        // record, so single-consumer inputs never copy.
        let last = tee.len().saturating_sub(1);
        let mut record = Some(record);
        for (i, pusher) in tee.iter_mut().enumerate() {
            if i == last {
                pusher.give(time, record.take().expect("record moved once"));
            } else {
                pusher.give(time, record.clone().expect("record present until last"));
            }
        }
    }

    /// Supplies a batch of records for the current epoch.
    pub fn send_batch(&mut self, records: impl IntoIterator<Item = D>) {
        let mut batch: Vec<D> = records.into_iter().collect();
        self.send_container(&mut batch);
    }

    /// Supplies a whole container of records for the current epoch,
    /// draining it in place (capacity is retained for refilling).
    ///
    /// This is the batch counterpart of [`InputHandle::send`]: the input
    /// machinery is borrowed once per container instead of once per
    /// record, and the container rides the channel layer's batch path
    /// (DESIGN.md §16). Prefer it when feeding high-volume inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input is closed.
    pub fn send_container(&mut self, records: &mut Vec<D>) {
        let shared = self.shared.borrow_mut();
        assert!(!shared.closed, "send_container on a closed input");
        let time = Timestamp::new(shared.epoch);
        let mut tee = shared.tee.borrow_mut();
        let n = tee.len();
        if n == 0 {
            records.clear(); // No consumers: records are dropped, like Naiad.
            return;
        }
        for pusher in tee.iter_mut().take(n - 1) {
            let mut copy = records.clone();
            pusher.give_batch(time, &mut copy);
        }
        tee[n - 1].give_batch(time, records);
    }

    /// Marks every epoch before `epoch` complete (§2.1: the producer
    /// notifies the input vertex that an epoch is finished).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is not beyond the current epoch, or the input is
    /// closed.
    pub fn advance_to(&mut self, epoch: u64) {
        let mut shared = self.shared.borrow_mut();
        assert!(!shared.closed, "advance_to on a closed input");
        assert!(
            epoch > shared.epoch,
            "advance_to({epoch}) does not advance past epoch {}",
            shared.epoch
        );
        shared.flush();
        // §2.3: add the new epoch's pointstamp, then retire the old one,
        // permitting downstream notifications for the completed epoch.
        let stage = shared.stage;
        let old = shared.epoch;
        journal_update(
            &shared.journal,
            Pointstamp::at_vertex(Timestamp::new(epoch), stage),
            1,
        );
        journal_update(
            &shared.journal,
            Pointstamp::at_vertex(Timestamp::new(old), stage),
            -1,
        );
        shared.epoch = epoch;
    }

    /// Like [`advance_to`](Self::advance_to), but subject to the
    /// admission window: returns `false` without advancing when opening
    /// `epoch` would leave the producer more than the window's epochs
    /// ahead of the frontier. The blessed pattern is
    /// `while !input.try_advance_to(e) { worker.step(); }` — stepping
    /// drains older epochs, moving the frontier until the epoch admits.
    ///
    /// With no window configured this always advances.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is not beyond the current epoch, or the input
    /// is closed — the same contract as [`advance_to`](Self::advance_to).
    pub fn try_advance_to(&mut self, epoch: u64) -> bool {
        {
            let shared = self.shared.borrow();
            assert!(!shared.closed, "try_advance_to on a closed input");
            assert!(
                epoch > shared.epoch,
                "try_advance_to({epoch}) does not advance past epoch {}",
                shared.epoch
            );
            if let Some(window) = shared.window {
                if epoch.saturating_sub(shared.frontier_epoch()) > window {
                    return false;
                }
            }
        }
        self.advance_to(epoch);
        true
    }

    /// Epochs the producer currently holds open beyond the frontier:
    /// `epoch() − min_epoch` over the dataflow's active pointstamps.
    /// Zero while the graph is under construction or after everything
    /// older has drained.
    pub fn open_epochs(&self) -> u64 {
        let shared = self.shared.borrow();
        shared.epoch.saturating_sub(shared.frontier_epoch())
    }

    /// Sets (or clears) the admission window consulted by
    /// [`try_advance_to`](Self::try_advance_to): at most `window` epochs
    /// open beyond the frontier. Inputs of a flow-controlled run start
    /// with the [`FlowConfig`](crate::runtime::FlowConfig)'s
    /// `max_open_epochs`.
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)`: the producer always holds its own current
    /// epoch open, so a zero window could never admit an advance.
    pub fn set_admission_window(&mut self, window: Option<u64>) {
        assert!(
            window != Some(0),
            "admission window of 0 can never admit an advance"
        );
        self.shared.borrow_mut().window = window;
    }

    /// The admission window, if any.
    pub fn admission_window(&self) -> Option<u64> {
        self.shared.borrow().window
    }

    /// Closes the input: no more records from any epoch (§2.1).
    ///
    /// Idempotent.
    pub fn close(&mut self) {
        let mut shared = self.shared.borrow_mut();
        if shared.closed {
            return;
        }
        shared.flush();
        let stage = shared.stage;
        let epoch = shared.epoch;
        journal_update(
            &shared.journal,
            Pointstamp::at_vertex(Timestamp::new(epoch), stage),
            -1,
        );
        shared.closed = true;
    }

    /// The current (incomplete) epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.borrow().epoch
    }

    /// Whether the input has been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.borrow().closed
    }

    /// The input's stage id.
    pub fn stage(&self) -> StageId {
        self.shared.borrow().stage
    }
}

impl<D: ExchangeData> Drop for InputHandle<D> {
    fn drop(&mut self) {
        self.close();
    }
}
