//! Generic operator constructors: unary, binary, and sink stages, with and
//! without notifications.
//!
//! These are the low-level vertex builders of §4.3 on which the operator
//! library (`naiad-operators`) is layered. Each takes a *constructor*
//! closure: it runs once per worker with the vertex's [`OperatorInfo`] and
//! returns the `OnRecv` (and optionally `OnNotify`) logic, so per-vertex
//! state lives in plain captured variables.

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{StageId, StageKind};
use crate::runtime::channels::Pact;
use crate::time::Timestamp;

use super::ports::{InputPort, OutputPort};
use super::{CoreImpl, Notify, OperatorInfo, Scope, Stream};

impl<D: ExchangeData> Stream<D> {
    /// A one-input, one-output vertex without notifications.
    ///
    /// # Examples
    ///
    /// See [`Stream::unary_notify`] for the notification-using variant;
    /// the distinction mirrors the paper's Figure 4, where the distinct
    /// set is emitted from `OnRecv` and the counts from `OnNotify`.
    pub fn unary<D2, B, L>(&self, pact: Pact<D>, name: &str, constructor: B) -> Stream<D2>
    where
        D2: ExchangeData,
        B: FnOnce(OperatorInfo) -> L,
        L: FnMut(&mut InputPort<D>, &mut OutputPort<D2>) + 'static,
    {
        self.unary_notify(pact, name, |info| {
            let mut logic = constructor(info);
            (
                move |input: &mut InputPort<D>, output: &mut OutputPort<D2>, _notify: &Notify| {
                    logic(input, output)
                },
                |_time: Timestamp, _output: &mut OutputPort<D2>, _notify: &Notify| {},
            )
        })
    }

    /// A one-input, one-output vertex with `OnRecv` and `OnNotify` logic.
    pub fn unary_notify<D2, B, L, N>(&self, pact: Pact<D>, name: &str, constructor: B) -> Stream<D2>
    where
        D2: ExchangeData,
        B: FnOnce(OperatorInfo) -> (L, N),
        L: FnMut(&mut InputPort<D>, &mut OutputPort<D2>, &Notify) + 'static,
        N: FnMut(Timestamp, &mut OutputPort<D2>, &Notify) + 'static,
    {
        let scope = self.scope();
        let (stage, notify, info) = add_stage(&scope, name, self.context, 1, 1);
        let mut input = self.connect_to(stage, 0, pact);
        let stream_out: Stream<D2> = Stream::new(stage, 0, self.context, scope.clone_ref());
        let output = Rc::new(RefCell::new(OutputPort::new(stream_out.tee.clone())));

        let (mut recv_logic, mut notify_logic) = constructor(info);

        let pump_output = output.clone();
        let pump_notify = notify.clone();
        let pump = Box::new(move || {
            let mut out = pump_output.borrow_mut();
            recv_logic(&mut input, &mut out, &pump_notify);
            input.settle();
            out.flush();
            input.take_worked()
        });
        let deliver_output = output;
        let deliver_notify = notify.clone();
        let deliver = Box::new(move |time: Timestamp| {
            let mut out = deliver_output.borrow_mut();
            notify_logic(time, &mut out, &deliver_notify);
            out.flush();
        });
        install(&scope, stage, name, notify, pump, deliver);
        stream_out
    }

    /// A two-input, one-output vertex without notifications.
    pub fn binary<D2, D3, B, L>(
        &self,
        other: &Stream<D2>,
        pact1: Pact<D>,
        pact2: Pact<D2>,
        name: &str,
        constructor: B,
    ) -> Stream<D3>
    where
        D2: ExchangeData,
        D3: ExchangeData,
        B: FnOnce(OperatorInfo) -> L,
        L: FnMut(&mut InputPort<D>, &mut InputPort<D2>, &mut OutputPort<D3>) + 'static,
    {
        self.binary_notify(other, pact1, pact2, name, |info| {
            let mut logic = constructor(info);
            (
                move |i1: &mut InputPort<D>,
                      i2: &mut InputPort<D2>,
                      output: &mut OutputPort<D3>,
                      _notify: &Notify| logic(i1, i2, output),
                |_time: Timestamp, _output: &mut OutputPort<D3>, _notify: &Notify| {},
            )
        })
    }

    /// A two-input, one-output vertex with `OnRecv` and `OnNotify` logic.
    ///
    /// # Panics
    ///
    /// Panics if the two streams belong to different loop contexts.
    pub fn binary_notify<D2, D3, B, L, N>(
        &self,
        other: &Stream<D2>,
        pact1: Pact<D>,
        pact2: Pact<D2>,
        name: &str,
        constructor: B,
    ) -> Stream<D3>
    where
        D2: ExchangeData,
        D3: ExchangeData,
        B: FnOnce(OperatorInfo) -> (L, N),
        L: FnMut(&mut InputPort<D>, &mut InputPort<D2>, &mut OutputPort<D3>, &Notify) + 'static,
        N: FnMut(Timestamp, &mut OutputPort<D3>, &Notify) + 'static,
    {
        assert_eq!(
            self.context, other.context,
            "binary operator inputs must share a loop context"
        );
        let scope = self.scope();
        let (stage, notify, info) = add_stage(&scope, name, self.context, 2, 1);
        let mut input1 = self.connect_to(stage, 0, pact1);
        let mut input2 = other.connect_to(stage, 1, pact2);
        let stream_out: Stream<D3> = Stream::new(stage, 0, self.context, scope.clone_ref());
        let output = Rc::new(RefCell::new(OutputPort::new(stream_out.tee.clone())));

        let (mut recv_logic, mut notify_logic) = constructor(info);

        let pump_output = output.clone();
        let pump_notify = notify.clone();
        let pump = Box::new(move || {
            let mut out = pump_output.borrow_mut();
            recv_logic(&mut input1, &mut input2, &mut out, &pump_notify);
            input1.settle();
            input2.settle();
            out.flush();
            input1.take_worked() | input2.take_worked()
        });
        let deliver_output = output;
        let deliver_notify = notify.clone();
        let deliver = Box::new(move |time: Timestamp| {
            let mut out = deliver_output.borrow_mut();
            notify_logic(time, &mut out, &deliver_notify);
            out.flush();
        });
        install(&scope, stage, name, notify, pump, deliver);
        stream_out
    }

    /// A one-input, zero-output vertex without notifications.
    pub fn sink<B, L>(&self, pact: Pact<D>, name: &str, constructor: B)
    where
        B: FnOnce(OperatorInfo) -> L,
        L: FnMut(&mut InputPort<D>) + 'static,
    {
        self.sink_notify(pact, name, |info| {
            let mut logic = constructor(info);
            (
                move |input: &mut InputPort<D>, _notify: &Notify| logic(input),
                |_time: Timestamp, _notify: &Notify| {},
            )
        })
    }

    /// A one-input, zero-output vertex with `OnRecv` and `OnNotify` logic.
    pub fn sink_notify<B, L, N>(&self, pact: Pact<D>, name: &str, constructor: B)
    where
        B: FnOnce(OperatorInfo) -> (L, N),
        L: FnMut(&mut InputPort<D>, &Notify) + 'static,
        N: FnMut(Timestamp, &Notify) + 'static,
    {
        let scope = self.scope();
        let (stage, notify, info) = add_stage(&scope, name, self.context, 1, 0);
        let mut input = self.connect_to(stage, 0, pact);

        let (mut recv_logic, mut notify_logic) = constructor(info);

        let pump_notify = notify.clone();
        let pump = Box::new(move || {
            recv_logic(&mut input, &pump_notify);
            input.settle();
            input.take_worked()
        });
        let deliver_notify = notify.clone();
        let deliver = Box::new(move |time: Timestamp| {
            notify_logic(time, &deliver_notify);
        });
        install(&scope, stage, name, notify, pump, deliver);
    }
}

/// Adds a regular stage and prepares its notification machinery.
pub(crate) fn add_stage(
    scope: &Scope,
    name: &str,
    context: crate::graph::ContextId,
    inputs: usize,
    outputs: usize,
) -> (StageId, Notify, OperatorInfo) {
    let mut inner = scope.inner.borrow_mut();
    let stage = inner
        .builder
        .add_stage(name, StageKind::Regular, context, inputs, outputs);
    let notify = Notify::new(stage, inner.journal.clone(), inner.notify_log.clone());
    let info = OperatorInfo::new(
        stage,
        notify.clone(),
        inner.routing.my_index,
        inner.routing.peers,
        inner.states.clone(),
    );
    (stage, notify, info)
}

/// Registers a vertex harness with the scope's schedule.
pub(crate) fn install(
    scope: &Scope,
    stage: StageId,
    name: &str,
    notify: Notify,
    pump: Box<dyn FnMut() -> bool>,
    deliver: Box<dyn FnMut(Timestamp)>,
) {
    let core = CoreImpl::new(stage, name.to_string(), notify, pump, deliver);
    scope
        .inner
        .borrow_mut()
        .ops
        .push(Rc::new(RefCell::new(core)));
}

/// Creates a stream whose stage already exists (used by system stages).
pub(crate) fn new_output_stream<D: ExchangeData>(
    scope: &Scope,
    stage: StageId,
    context: crate::graph::ContextId,
) -> (Stream<D>, Rc<RefCell<OutputPort<D>>>) {
    let stream: Stream<D> = Stream::new(stage, 0, context, scope.clone_ref());
    let output = Rc::new(RefCell::new(OutputPort::new(stream.tee.clone())));
    (stream, output)
}

/// Forwards both inputs to one output, pipeline-partitioned. The merge
/// primitive loops need; the richer `concat` in `naiad-operators` builds
/// on the same shape.
pub fn concatenate<D: ExchangeData>(a: &Stream<D>, b: &Stream<D>) -> Stream<D> {
    a.binary(b, Pact::Pipeline, Pact::Pipeline, "Concat", |_info| {
        |i1: &mut InputPort<D>, i2: &mut InputPort<D>, out: &mut OutputPort<D>| {
            i1.for_each_batch(|t, data| out.session(t).give_container(data));
            i2.for_each_batch(|t, data| out.session(t).give_container(data));
        }
    })
}
