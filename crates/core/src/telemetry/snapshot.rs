//! The unified metrics registry.
//!
//! [`TelemetrySnapshot::assemble`] merges every worker's harvested
//! [`WorkerTelemetry`] with the fabric's traffic meters into one
//! registry: per-worker scheduler counters, per-operator schedule time
//! and record counts (connector counters folded onto their endpoint
//! stages via the [`DataflowDirectory`]), frontier-probe samples, and
//! per-class traffic totals read *directly* from
//! [`FabricMetrics`] — so the snapshot's byte totals match the meters
//! exactly, by construction.
//!
//! Exporters: [`TelemetrySnapshot::events_json_lines`] (SnailTrail-style
//! one-object-per-line event dump) and
//! [`TelemetrySnapshot::summary_table`] (human-readable tables).

use std::collections::BTreeMap;

use naiad_netsim::{ClassCounters, FabricMetrics, FaultCounters, TrafficClass};

use super::event::TelemetryEvent;
use super::recorder::{DataflowDirectory, WorkerTelemetry};

/// One worker's scheduler counters plus event-buffer accounting.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// The worker's global index.
    pub worker: usize,
    /// Aggregate counters (exact even when the event buffer overflowed).
    pub counters: super::recorder::WorkerCounters,
    /// Events retained in the buffer.
    pub events_recorded: usize,
    /// Events discarded because the buffer was full.
    pub events_dropped: u64,
}

/// Cluster-wide aggregates for one `(dataflow, stage)` operator, merged
/// across workers.
#[derive(Debug, Clone, Default)]
pub struct OperatorSummary {
    /// Dataflow id.
    pub dataflow: u32,
    /// Stage id.
    pub stage: u32,
    /// Stage name (from the dataflow directory; empty if unnamed).
    pub name: String,
    /// Scheduling slices run across all workers.
    pub schedules: u64,
    /// Slices that processed at least one batch.
    pub worked: u64,
    /// Cumulative nanoseconds inside the operator.
    pub busy_nanos: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Batches received on connectors terminating at this stage.
    pub messages_in: u64,
    /// Records received.
    pub records_in: u64,
    /// Batches emitted on connectors originating at this stage.
    pub messages_out: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Serialized bytes emitted (remote routes only).
    pub bytes_out: u64,
}

/// One frontier-probe sample, tagged with its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierSample {
    /// The sampling worker.
    pub worker: usize,
    /// Dataflow id.
    pub dataflow: u32,
    /// Nanoseconds since the worker's recorder was created.
    pub nanos: u64,
    /// Active pointstamps in the worker's tracker.
    pub active: u32,
    /// Minimum open input epoch; `None` once every input has closed.
    pub input_epoch: Option<u64>,
}

/// Per-class fabric traffic, with and without loopback, plus fault
/// counters — read directly from [`FabricMetrics`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficSummary {
    /// Data-class totals over every directed link (loopback included).
    pub data_total: ClassCounters,
    /// Progress-class totals over every directed link (loopback included).
    pub progress_total: ClassCounters,
    /// Data-class totals excluding loopback: bytes that crossed a
    /// physical network (the Fig 6a quantity).
    pub data_network: ClassCounters,
    /// Progress-class totals excluding loopback (the Fig 6c quantity).
    pub progress_network: ClassCounters,
    /// Control-class (heartbeat/liveness) totals, loopback included.
    pub control_total: ClassCounters,
    /// Control-class totals excluding loopback.
    pub control_network: ClassCounters,
    /// Fault-injection counters.
    pub faults: FaultCounters,
}

/// Liveness-layer counters gathered outside the worker threads: router
/// and central-accumulator idle ticks plus failure-detector activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubCounters {
    /// Idle receive timeouts observed by router threads (each one a
    /// bounded-backoff wait, not a spin).
    pub router_idle_ticks: u64,
    /// Idle receive timeouts observed by the central accumulator.
    pub central_idle_ticks: u64,
    /// Standalone heartbeats emitted by the liveness layer.
    pub heartbeats_sent: u64,
    /// Peer-suspected transitions raised by the detectors.
    pub suspicions: u64,
    /// Peer-failed declarations raised by the detectors.
    pub peer_failures: u64,
}

/// Cluster-wide credit-flow gauges, read from the
/// [`FlowRegistry`](crate::runtime::flow) after the run completes.
/// All-zero (with `enabled: false`) when the run had no
/// [`FlowConfig`](crate::runtime::FlowConfig).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowGauges {
    /// Whether credit-based flow control was configured for the run.
    pub enabled: bool,
    /// Data-plane bytes still charged against credit cells at snapshot
    /// time (zero after a clean drain).
    pub in_flight_bytes: u64,
    /// High-water mark of in-flight data-plane bytes over the run.
    pub peak_in_flight_bytes: u64,
    /// Times a sender parked waiting for credit.
    pub credit_waits: u64,
    /// Cumulative nanoseconds senders spent parked.
    pub credit_wait_ns: u64,
    /// Credit returns processed (local releases + control-plane returns).
    pub credit_returns: u64,
    /// Batches admitted past an exhausted cell after the bounded wait
    /// expired (`ShedPolicy::Block` escape hatch).
    pub overdrafts: u64,
    /// Batches dropped by the shedding policy.
    pub shed_batches: u64,
    /// Records inside those dropped batches.
    pub shed_records: u64,
    /// Byte cost of those dropped batches.
    pub shed_bytes: u64,
}

/// The unified registry: everything the paper's measurement sections
/// read, in one place.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Per-worker scheduler counters, sorted by worker index.
    pub workers: Vec<WorkerSummary>,
    /// Per-operator aggregates merged across workers, sorted by
    /// `(dataflow, stage)`.
    pub operators: Vec<OperatorSummary>,
    /// Every frontier-probe sample, in per-worker recording order.
    pub frontier: Vec<FrontierSample>,
    /// Fabric traffic totals and fault counters.
    pub traffic: TrafficSummary,
    /// Liveness-layer counters (router/central idle ticks, heartbeats,
    /// detector transitions). Populated by the runtime after assembly.
    pub hub: HubCounters,
    /// Credit-flow gauges. Populated by the runtime after assembly when
    /// the run was configured with flow control; all-zero otherwise.
    pub flow: FlowGauges,
    /// Slab-pool gauges from the run's data-plane byte pool
    /// (DESIGN.md §16). Populated by the runtime after assembly.
    pub slab: naiad_wire::SlabGauges,
    /// The raw per-worker harvests (event logs included), sorted by
    /// worker index.
    pub logs: Vec<WorkerTelemetry>,
    /// Per-epoch critical-path summaries from the self-hosted analysis
    /// dataflow ([`crate::introspect`]), sorted by epoch. Empty unless
    /// the run executed under
    /// [`execute_with_introspection`](crate::introspect::execute_with_introspection).
    pub critical_paths: Vec<crate::introspect::CriticalPathSummary>,
}

fn directory_for(logs: &[WorkerTelemetry], dataflow: u32) -> Option<&DataflowDirectory> {
    logs.iter()
        .flat_map(|l| l.directory.iter())
        .find(|d| d.dataflow == dataflow)
}

impl TelemetrySnapshot {
    /// Merges worker harvests and fabric meters into a snapshot.
    pub fn assemble(mut logs: Vec<WorkerTelemetry>, metrics: &FabricMetrics) -> Self {
        logs.sort_by_key(|l| l.worker);

        let workers = logs
            .iter()
            .map(|l| WorkerSummary {
                worker: l.worker,
                counters: l.counters,
                events_recorded: l.events.len(),
                events_dropped: l.dropped,
            })
            .collect();

        // Stage names from the dataflow directories.
        let mut names: BTreeMap<(u32, u32), &str> = BTreeMap::new();
        for dir in logs.iter().flat_map(|l| l.directory.iter()) {
            for (stage, name) in &dir.operators {
                names.entry((dir.dataflow, *stage)).or_insert(name);
            }
        }

        // Merge per-operator scheduling aggregates across workers.
        let mut ops: BTreeMap<(u32, u32), OperatorSummary> = BTreeMap::new();
        for ((dataflow, stage), c) in logs.iter().flat_map(|l| l.ops.iter()) {
            let op = ops.entry((*dataflow, *stage)).or_default();
            op.schedules += c.schedules;
            op.worked += c.worked;
            op.busy_nanos += c.busy_nanos;
            op.notifications += c.notifications;
        }

        // Fold connector counters onto their endpoint stages.
        for ((dataflow, connector), c) in logs.iter().flat_map(|l| l.connectors.iter()) {
            let Some(dir) = directory_for(&logs, *dataflow) else {
                continue;
            };
            let conn = *connector as usize;
            if let Some(&src) = dir.connector_src.get(conn) {
                let op = ops.entry((*dataflow, src)).or_default();
                op.messages_out += c.messages_out;
                op.records_out += c.records_out;
                op.bytes_out += c.bytes_out;
            }
            if let Some(&dst) = dir.connector_dst.get(conn) {
                let op = ops.entry((*dataflow, dst)).or_default();
                op.messages_in += c.messages_in;
                op.records_in += c.records_in;
            }
        }

        let operators = ops
            .into_iter()
            .map(|((dataflow, stage), mut op)| {
                op.dataflow = dataflow;
                op.stage = stage;
                op.name = names
                    .get(&(dataflow, stage))
                    .map(|s| s.to_string())
                    .unwrap_or_default();
                op
            })
            .collect();

        let frontier = logs
            .iter()
            .flat_map(|l| {
                l.events.iter().filter_map(|r| match r.event {
                    TelemetryEvent::FrontierProbe {
                        dataflow,
                        active,
                        input_epoch,
                    } => Some(FrontierSample {
                        worker: l.worker,
                        dataflow,
                        nanos: r.nanos,
                        active,
                        input_epoch,
                    }),
                    _ => None,
                })
            })
            .collect();

        let traffic = TrafficSummary {
            data_total: metrics.total(TrafficClass::Data, true),
            progress_total: metrics.total(TrafficClass::Progress, true),
            data_network: metrics.total(TrafficClass::Data, false),
            progress_network: metrics.total(TrafficClass::Progress, false),
            control_total: metrics.total(TrafficClass::Control, true),
            control_network: metrics.total(TrafficClass::Control, false),
            faults: metrics.faults(),
        };

        TelemetrySnapshot {
            workers,
            operators,
            frontier,
            traffic,
            hub: HubCounters::default(),
            flow: FlowGauges::default(),
            slab: naiad_wire::SlabGauges::default(),
            logs,
            critical_paths: Vec::new(),
        }
    }

    /// Progress-protocol bytes — the Fig 6c quantity. With
    /// `include_loopback` the total covers intra-process batches too
    /// (what the four accumulation modes trade against each other).
    pub fn progress_bytes(&self, include_loopback: bool) -> u64 {
        if include_loopback {
            self.traffic.progress_total.bytes
        } else {
            self.traffic.progress_network.bytes
        }
    }

    /// Data-plane bytes (Fig 6a quantity when loopback is excluded).
    pub fn data_bytes(&self, include_loopback: bool) -> u64 {
        if include_loopback {
            self.traffic.data_total.bytes
        } else {
            self.traffic.data_network.bytes
        }
    }

    /// Total scheduling rounds across workers.
    pub fn total_steps(&self) -> u64 {
        self.workers.iter().map(|w| w.counters.steps).sum()
    }

    /// Total notifications delivered across workers.
    pub fn total_notifications(&self) -> u64 {
        self.workers.iter().map(|w| w.counters.notifications).sum()
    }

    /// Total events discarded across workers because their buffers
    /// filled. Aggregate counters stayed exact regardless.
    pub fn total_events_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.events_dropped).sum()
    }

    /// Every retained event as JSON lines (one object per line,
    /// SnailTrail-style), workers in index order, each worker's events
    /// in recording order. The first line is a schema header carrying
    /// the encoding version, so downstream consumers can detect field
    /// changes (version 2 added `epoch`/`seq` to schedule events).
    pub fn events_json_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"naiad-telemetry\",\"version\":2,\"workers\":{},\"dropped\":{}}}",
            self.workers.len(),
            self.total_events_dropped()
        );
        for log in &self.logs {
            for record in &log.events {
                out.push_str(&record.to_json(log.worker));
                out.push('\n');
            }
        }
        out
    }

    /// Per-epoch critical-path summaries as JSON lines, prefixed by a
    /// schema header. Empty (header only) unless the run executed under
    /// [`execute_with_introspection`](crate::introspect::execute_with_introspection).
    pub fn critical_path_json_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"naiad-critical-path\",\"version\":1,\"epochs\":{}}}",
            self.critical_paths.len()
        );
        for summary in &self.critical_paths {
            out.push_str(&summary.to_json());
            out.push('\n');
        }
        out
    }

    /// A human-readable summary: per-worker, per-operator, and traffic
    /// tables.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();

        let _ = writeln!(s, "== workers ==");
        let _ = writeln!(
            s,
            "{:>6} {:>8} {:>9} {:>10} {:>6} {:>9} {:>9} {:>10} {:>10} {:>8} {:>7}",
            "worker",
            "steps",
            "scheds",
            "busy_us",
            "notif",
            "recs_out",
            "recs_in",
            "prog_sent",
            "prog_appl",
            "events",
            "dropped"
        );
        for w in &self.workers {
            let c = &w.counters;
            let _ = writeln!(
                s,
                "{:>6} {:>8} {:>9} {:>10} {:>6} {:>9} {:>9} {:>10} {:>10} {:>8} {:>7}",
                w.worker,
                c.steps,
                c.schedules,
                c.busy_nanos / 1_000,
                c.notifications,
                c.records_sent,
                c.records_received,
                c.progress_updates_sent,
                c.progress_updates_applied,
                w.events_recorded,
                w.events_dropped
            );
        }

        let _ = writeln!(s, "\n== operators ==");
        let _ = writeln!(
            s,
            "{:>3} {:>5} {:<18} {:>8} {:>8} {:>10} {:>6} {:>9} {:>9} {:>10}",
            "df",
            "stage",
            "name",
            "scheds",
            "worked",
            "busy_us",
            "notif",
            "recs_in",
            "recs_out",
            "bytes_out"
        );
        for op in &self.operators {
            let _ = writeln!(
                s,
                "{:>3} {:>5} {:<18} {:>8} {:>8} {:>10} {:>6} {:>9} {:>9} {:>10}",
                op.dataflow,
                op.stage,
                op.name,
                op.schedules,
                op.worked,
                op.busy_nanos / 1_000,
                op.notifications,
                op.records_in,
                op.records_out,
                op.bytes_out
            );
        }

        let _ = writeln!(s, "\n== traffic ==");
        let _ = writeln!(
            s,
            "{:<10} {:>12} {:>10} {:>14} {:>12}",
            "class", "bytes", "msgs", "net_bytes", "net_msgs"
        );
        let t = &self.traffic;
        for (name, total, network) in [
            ("data", t.data_total, t.data_network),
            ("progress", t.progress_total, t.progress_network),
            ("control", t.control_total, t.control_network),
        ] {
            let _ = writeln!(
                s,
                "{:<10} {:>12} {:>10} {:>14} {:>12}",
                name, total.bytes, total.messages, network.bytes, network.messages
            );
        }
        let f = &t.faults;
        if *f != FaultCounters::default() {
            let _ = writeln!(
                s,
                "faults: dropped={} duplicated={} dup_suppressed={} partition_rejects={} crash_rejects={} crashes={}",
                f.dropped,
                f.duplicated,
                f.duplicates_suppressed,
                f.partition_rejects,
                f.crash_rejects,
                f.crashes
            );
        }
        let h = &self.hub;
        if *h != HubCounters::default() {
            let _ = writeln!(
                s,
                "liveness: heartbeats={} suspicions={} peer_failures={} router_idle={} central_idle={}",
                h.heartbeats_sent,
                h.suspicions,
                h.peer_failures,
                h.router_idle_ticks,
                h.central_idle_ticks
            );
        }

        if self.flow.enabled {
            let fl = &self.flow;
            let _ = writeln!(s, "\n== flow ==");
            let _ = writeln!(
                s,
                "peak_in_flight={} in_flight={} waits={} wait_us={} returns={} overdrafts={} shed_batches={} shed_records={} shed_bytes={}",
                fl.peak_in_flight_bytes,
                fl.in_flight_bytes,
                fl.credit_waits,
                fl.credit_wait_ns / 1_000,
                fl.credit_returns,
                fl.overdrafts,
                fl.shed_batches,
                fl.shed_records,
                fl.shed_bytes
            );
        }

        if !self.frontier.is_empty() {
            let _ = writeln!(s, "\n== frontier ==");
            // Last sample per (worker, dataflow).
            let mut last: BTreeMap<(usize, u32), FrontierSample> = BTreeMap::new();
            for sample in &self.frontier {
                last.insert((sample.worker, sample.dataflow), *sample);
            }
            let _ = writeln!(
                s,
                "{:>6} {:>3} {:>8} {:>7} {:>12}",
                "worker", "df", "samples", "active", "input_epoch"
            );
            for ((worker, dataflow), sample) in &last {
                let samples = self
                    .frontier
                    .iter()
                    .filter(|p| p.worker == *worker && p.dataflow == *dataflow)
                    .count();
                let epoch = match sample.input_epoch {
                    Some(e) => e.to_string(),
                    None => "closed".to_string(),
                };
                let _ = writeln!(
                    s,
                    "{:>6} {:>3} {:>8} {:>7} {:>12}",
                    worker, dataflow, samples, sample.active, epoch
                );
            }
        }

        s
    }
}

#[cfg(test)]
mod tests {
    use super::super::recorder::Recorder;
    use super::*;
    use naiad_netsim::Fabric;

    fn harvest_one(worker: usize) -> WorkerTelemetry {
        let r = Recorder::with_capacity(64);
        r.record_step();
        r.record(TelemetryEvent::ScheduleStop {
            dataflow: 0,
            stage: 1,
            nanos: 500,
            worked: true,
            epoch: 0,
            seq: 0,
        });
        r.record(TelemetryEvent::MessageSent {
            dataflow: 0,
            connector: 0,
            target: 1,
            records: 7,
            bytes: 56,
            remote: true,
        });
        r.record(TelemetryEvent::MessageReceived {
            dataflow: 0,
            connector: 0,
            records: 7,
            remote: true,
        });
        r.record(TelemetryEvent::FrontierProbe {
            dataflow: 0,
            active: 3,
            input_epoch: Some(worker as u64),
        });
        let mut t = r.harvest(worker).unwrap();
        // Synthesize the dataflow directory the worker would have
        // registered: stage 0 --conn 0--> stage 1.
        t.directory.push(DataflowDirectory {
            dataflow: 0,
            operators: vec![(0, "input".into()), (1, "map".into())],
            connector_src: vec![0],
            connector_dst: vec![1],
        });
        t
    }

    fn fabric_metrics_with_traffic() -> std::sync::Arc<FabricMetrics> {
        let mut eps = Fabric::builder(2).build();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, TrafficClass::Data, vec![0u8; 56].into())
            .unwrap();
        a.send(0, 0, TrafficClass::Progress, vec![0u8; 12].into())
            .unwrap();
        drop(b);
        a.metrics().clone()
    }

    #[test]
    fn assemble_merges_operators_and_folds_connectors() {
        let metrics = fabric_metrics_with_traffic();
        let snap = TelemetrySnapshot::assemble(vec![harvest_one(1), harvest_one(0)], &metrics);

        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].worker, 0, "sorted by worker");
        assert_eq!(snap.workers[0].counters.steps, 1);

        // Stage 1 merged across both workers: 2 schedules, connector
        // receive side folded in; stage 0 got the send side.
        let map = snap
            .operators
            .iter()
            .find(|o| o.stage == 1)
            .expect("stage 1 present");
        assert_eq!(map.name, "map");
        assert_eq!(map.schedules, 2);
        assert_eq!(map.busy_nanos, 1000);
        assert_eq!(map.records_in, 14);
        assert_eq!(map.records_out, 0);
        let input = snap.operators.iter().find(|o| o.stage == 0).unwrap();
        assert_eq!(input.name, "input");
        assert_eq!(input.records_out, 14);
        assert_eq!(input.bytes_out, 112);

        // Frontier samples carry their worker tag.
        assert_eq!(snap.frontier.len(), 2);
        assert!(snap
            .frontier
            .iter()
            .any(|p| p.worker == 1 && p.input_epoch == Some(1)));
    }

    #[test]
    fn traffic_matches_fabric_meters_exactly() {
        let metrics = fabric_metrics_with_traffic();
        let snap = TelemetrySnapshot::assemble(vec![harvest_one(0)], &metrics);
        assert_eq!(
            snap.traffic.data_total,
            metrics.total(TrafficClass::Data, true)
        );
        assert_eq!(
            snap.traffic.progress_total,
            metrics.total(TrafficClass::Progress, true)
        );
        assert_eq!(snap.data_bytes(false), metrics.network_bytes(TrafficClass::Data));
        assert_eq!(snap.data_bytes(true), 56);
        assert_eq!(snap.progress_bytes(true), 12);
        assert_eq!(snap.progress_bytes(false), 0, "loopback progress excluded");
        assert_eq!(snap.traffic.faults, metrics.faults());
    }

    #[test]
    fn exporters_emit_events_and_tables() {
        let metrics = fabric_metrics_with_traffic();
        let snap = TelemetrySnapshot::assemble(vec![harvest_one(1), harvest_one(0)], &metrics);

        let jsonl = snap.events_json_lines();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 9, "schema header + 4 events per worker");
        assert!(
            lines[0].starts_with("{\"schema\":\"naiad-telemetry\",\"version\":2"),
            "versioned header first: {}",
            lines[0]
        );
        assert!(lines[1].starts_with("{\"w\":0,"), "worker 0 first");
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));

        let cp = snap.critical_path_json_lines();
        assert!(
            cp.starts_with("{\"schema\":\"naiad-critical-path\",\"version\":1"),
            "{cp}"
        );
        assert_eq!(cp.lines().count(), 1, "header only without introspection");

        let table = snap.summary_table();
        assert!(table.contains("== workers =="));
        assert!(table.contains("== operators =="));
        assert!(table.contains("map"));
        assert!(table.contains("== traffic =="));
        assert!(table.contains("== frontier =="));
    }

    #[test]
    fn flow_gauges_default_off_and_render_when_enabled() {
        let metrics = fabric_metrics_with_traffic();
        let mut snap = TelemetrySnapshot::assemble(vec![harvest_one(0)], &metrics);
        assert_eq!(snap.flow, FlowGauges::default());
        assert!(
            !snap.summary_table().contains("== flow =="),
            "no flow section without flow control"
        );
        snap.flow = FlowGauges {
            enabled: true,
            in_flight_bytes: 0,
            peak_in_flight_bytes: 4096,
            credit_waits: 3,
            credit_wait_ns: 9_000,
            credit_returns: 12,
            overdrafts: 1,
            shed_batches: 0,
            shed_records: 0,
            shed_bytes: 0,
        };
        let table = snap.summary_table();
        assert!(table.contains("== flow =="), "{table}");
        assert!(table.contains("peak_in_flight=4096"), "{table}");
        assert!(table.contains("wait_us=9"), "{table}");
    }
}
