//! Typed telemetry events and their JSON-lines encoding.

use crate::runtime::FaultKind;

/// One telemetry event, as recorded by a worker.
///
/// Events are `Copy` and fixed-size so recording is an append into a
/// preallocated buffer — no per-event allocation on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// An operator's `pump` (OnRecv scheduling slice) is about to run.
    ScheduleStart {
        /// Dataflow id.
        dataflow: u32,
        /// Stage id of the scheduled operator.
        stage: u32,
        /// Minimum open epoch in the dataflow's tracker when the slice
        /// began (the epoch of the work item being processed).
        epoch: u64,
        /// Per-worker monotone slice sequence number; the matching
        /// [`TelemetryEvent::ScheduleStop`] carries the same value.
        seq: u64,
    },
    /// The matching end of a [`TelemetryEvent::ScheduleStart`].
    ScheduleStop {
        /// Dataflow id.
        dataflow: u32,
        /// Stage id of the scheduled operator.
        stage: u32,
        /// Wall-clock nanoseconds the slice took.
        nanos: u64,
        /// Whether the operator processed any batch.
        worked: bool,
        /// Minimum open epoch in the dataflow's tracker when the slice
        /// began (the epoch of the work item being processed).
        epoch: u64,
        /// Per-worker monotone slice sequence number shared with the
        /// matching [`TelemetryEvent::ScheduleStart`].
        seq: u64,
    },
    /// A data batch was emitted on a connector.
    MessageSent {
        /// Dataflow id.
        dataflow: u32,
        /// Connector the batch travels on.
        connector: u32,
        /// Destination worker (global index).
        target: u32,
        /// Records in the batch.
        records: u32,
        /// Serialized payload bytes (0 for intra-process typed batches,
        /// which never touch the wire).
        bytes: u32,
        /// Whether the batch crossed the fabric.
        remote: bool,
    },
    /// A data batch was pulled by the receiving vertex.
    MessageReceived {
        /// Dataflow id.
        dataflow: u32,
        /// Connector the batch arrived on.
        connector: u32,
        /// Records in the batch.
        records: u32,
        /// Whether the batch arrived serialized over the fabric.
        remote: bool,
    },
    /// A progress batch left this worker (broadcast or to the central
    /// accumulator).
    ProgressBatchSent {
        /// Dataflow id.
        dataflow: u32,
        /// This worker's batch sequence number.
        seq: u64,
        /// Updates in the batch.
        updates: u32,
    },
    /// Progress updates were deposited into the process-local accumulator
    /// (`Local` / `LocalGlobal` modes).
    ProgressDeposited {
        /// Dataflow id.
        dataflow: u32,
        /// Updates deposited.
        updates: u32,
    },
    /// A progress batch was applied to this worker's tracker.
    ProgressApplied {
        /// Dataflow id.
        dataflow: u32,
        /// Sending worker or accumulator id.
        sender: u32,
        /// The sender's sequence number.
        seq: u64,
        /// Updates in the batch.
        updates: u32,
        /// Net occurrence-count delta of the batch (Σ deltas).
        net: i64,
    },
    /// A notification was delivered to an operator.
    NotificationDelivered {
        /// Dataflow id.
        dataflow: u32,
        /// Stage id.
        stage: u32,
        /// Epoch component of the delivered timestamp.
        epoch: u64,
        /// `true` for blocking (§2.3 counted) notifications, `false` for
        /// purge notifications.
        blocking: bool,
    },
    /// A frontier-probe sample (recorded when the sampled values change).
    FrontierProbe {
        /// Dataflow id.
        dataflow: u32,
        /// Active pointstamps in the worker's tracker.
        active: u32,
        /// Minimum open input epoch; `None` once every input has closed.
        input_epoch: Option<u64>,
    },
    /// A checkpoint blob was produced ([`Worker::checkpoint`](crate::runtime::Worker::checkpoint)).
    CheckpointTaken {
        /// Sealed blob size in bytes.
        bytes: u64,
    },
    /// A checkpoint blob was restored ([`Worker::try_restore`](crate::runtime::Worker::try_restore)).
    CheckpointRestored {
        /// Sealed blob size in bytes.
        bytes: u64,
    },
    /// A fault escaped the retry budget and escalated, unwinding the
    /// cluster (§3.4).
    FaultEscalated {
        /// The classified fault.
        kind: FaultKind,
    },
    /// The failure detector marked a peer *suspected*: no heartbeat or
    /// traffic for longer than the suspicion threshold (§3.4/§3.5).
    PeerSuspected {
        /// The suspected peer process.
        peer: u32,
        /// Milliseconds of silence when the suspicion was raised.
        silent_ms: u64,
    },
    /// A previously suspected peer was heard from again.
    PeerCleared {
        /// The exonerated peer process.
        peer: u32,
    },
    /// The failure detector declared a peer *failed*: silence exceeded
    /// the failure threshold, escalating into coordinated rollback.
    PeerFailed {
        /// The failed peer process.
        peer: u32,
        /// Milliseconds of silence when the failure was declared.
        silent_ms: u64,
    },
    /// The stall watchdog declared a global stall: pointstamps were
    /// outstanding but no frontier or occurrence change happened for the
    /// configured timeout.
    Stalled {
        /// Milliseconds of frontier inactivity when the stall fired.
        idle_ms: u64,
        /// Active pointstamps outstanding at the time.
        active: u32,
    },
    /// An elastic rescale began: the coordinator fenced the run at a
    /// closed epoch and is migrating state to the new membership.
    RescaleStarted {
        /// The fence epoch (first epoch the new membership computes).
        epoch: u64,
        /// Worker count before the rescale.
        from_workers: u32,
        /// Worker count after the rescale.
        to_workers: u32,
    },
    /// A migration shard from one pre-rescale worker was absorbed into
    /// this worker's keyed state.
    PartitionMigrated {
        /// The pre-rescale worker whose shard this was.
        from_worker: u32,
        /// Shard payload bytes absorbed.
        bytes: u64,
    },
    /// An elastic rescale completed: the new membership resumed at the
    /// fence epoch. `stalled_ms` attributes the migration stall.
    RescaleCompleted {
        /// The fence epoch the new membership resumed at.
        epoch: u64,
        /// Worker count after the rescale.
        workers: u32,
        /// Wall-clock milliseconds the computation was fenced.
        stalled_ms: u64,
    },
    /// The autotuner ([`crate::introspect`]) adjusted a runtime knob in
    /// response to a critical-path summary.
    TuningDecision {
        /// Source epoch whose summary triggered the adjustment.
        epoch: u64,
        /// Which knob was adjusted.
        knob: TuningKnob,
        /// Knob value before the adjustment.
        from: u64,
        /// Knob value after the adjustment.
        to: u64,
    },
    /// A data-plane sender spent time parked on an exhausted credit cell
    /// before its batch was admitted (or timed out). Recorded once per
    /// waiting `emit`, never on the uncontended fast path.
    CreditWait {
        /// Dataflow id.
        dataflow: u32,
        /// Connector the blocked batch was bound for.
        connector: u32,
        /// Wall-clock nanoseconds the sender waited for credit.
        waited_ns: u64,
        /// Byte cost of the batch that waited.
        bytes: u32,
    },
    /// The per-worker overload monitor changed state (`from`/`to` are
    /// [`crate::runtime::OverloadState`] discriminants: 0 = normal,
    /// 1 = throttled, 2 = shedding).
    OverloadTransition {
        /// State before the transition.
        from: u8,
        /// State after the transition.
        to: u8,
    },
    /// A data batch was dropped by the graceful-degradation shedding
    /// policy: the sender's bounded credit wait expired while the worker
    /// was in the `Shedding` overload state.
    MessagesShed {
        /// Dataflow id.
        dataflow: u32,
        /// Connector the dropped batch was bound for.
        connector: u32,
        /// Records in the dropped batch.
        records: u32,
        /// Byte cost of the dropped batch.
        bytes: u32,
    },
    /// The static analyzer ([`crate::analysis`]) ran over a freshly built
    /// dataflow graph; counts summarize its findings by severity.
    AnalysisReport {
        /// Dataflow id.
        dataflow: u32,
        /// Error-severity diagnostics (zero, or the build would have been
        /// denied under the default config).
        errors: u32,
        /// Warning-severity diagnostics.
        warnings: u32,
        /// Info-severity diagnostics.
        infos: u32,
    },
}

/// A runtime knob the [`crate::introspect`] autotuner may adjust online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningKnob {
    /// Exchange-channel batch size (records per emitted batch).
    BatchSize,
    /// Progress-accumulation flush threshold (journal entries below
    /// which a flush may be deferred for a bounded number of steps).
    ProgressFlush,
    /// Data-plane credit budget (bytes in flight per credited queue).
    CreditBudget,
    /// Slab-pool resident cap (recycled encode-buffer bytes retained
    /// per process, DESIGN.md §16).
    PoolResidentCap,
}

impl TuningKnob {
    /// Short machine-readable knob name (the JSON `"knob"` field).
    pub fn name(self) -> &'static str {
        match self {
            TuningKnob::BatchSize => "batch_size",
            TuningKnob::ProgressFlush => "progress_flush",
            TuningKnob::CreditBudget => "credit_budget",
            TuningKnob::PoolResidentCap => "pool_resident_cap",
        }
    }
}

impl TelemetryEvent {
    /// Short machine-readable event name (the `"ev"` JSON field).
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEvent::ScheduleStart { .. } => "schedule_start",
            TelemetryEvent::ScheduleStop { .. } => "schedule_stop",
            TelemetryEvent::MessageSent { .. } => "message_sent",
            TelemetryEvent::MessageReceived { .. } => "message_received",
            TelemetryEvent::ProgressBatchSent { .. } => "progress_sent",
            TelemetryEvent::ProgressDeposited { .. } => "progress_deposited",
            TelemetryEvent::ProgressApplied { .. } => "progress_applied",
            TelemetryEvent::NotificationDelivered { .. } => "notification",
            TelemetryEvent::FrontierProbe { .. } => "frontier",
            TelemetryEvent::CheckpointTaken { .. } => "checkpoint",
            TelemetryEvent::CheckpointRestored { .. } => "restore",
            TelemetryEvent::FaultEscalated { .. } => "fault",
            TelemetryEvent::PeerSuspected { .. } => "peer_suspected",
            TelemetryEvent::PeerCleared { .. } => "peer_cleared",
            TelemetryEvent::PeerFailed { .. } => "peer_failed",
            TelemetryEvent::Stalled { .. } => "stalled",
            TelemetryEvent::RescaleStarted { .. } => "rescale_started",
            TelemetryEvent::PartitionMigrated { .. } => "partition_migrated",
            TelemetryEvent::RescaleCompleted { .. } => "rescale_completed",
            TelemetryEvent::TuningDecision { .. } => "tuning",
            TelemetryEvent::CreditWait { .. } => "credit_wait",
            TelemetryEvent::OverloadTransition { .. } => "overload",
            TelemetryEvent::MessagesShed { .. } => "shed",
            TelemetryEvent::AnalysisReport { .. } => "analysis",
        }
    }

    /// The dataflow the event belongs to, when it carries one. Cluster-
    /// level events (faults, peers, checkpoints, rescales, tuning) have
    /// no dataflow and return `None`.
    pub fn dataflow_id(&self) -> Option<u32> {
        match *self {
            TelemetryEvent::ScheduleStart { dataflow, .. }
            | TelemetryEvent::ScheduleStop { dataflow, .. }
            | TelemetryEvent::MessageSent { dataflow, .. }
            | TelemetryEvent::MessageReceived { dataflow, .. }
            | TelemetryEvent::ProgressBatchSent { dataflow, .. }
            | TelemetryEvent::ProgressDeposited { dataflow, .. }
            | TelemetryEvent::ProgressApplied { dataflow, .. }
            | TelemetryEvent::NotificationDelivered { dataflow, .. }
            | TelemetryEvent::FrontierProbe { dataflow, .. }
            | TelemetryEvent::CreditWait { dataflow, .. }
            | TelemetryEvent::MessagesShed { dataflow, .. }
            | TelemetryEvent::AnalysisReport { dataflow, .. } => Some(dataflow),
            _ => None,
        }
    }
}

/// A recorded event: nanoseconds since the worker's recorder was created,
/// plus the typed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Nanoseconds since recorder creation (per-worker clock).
    pub nanos: u64,
    /// The event.
    pub event: TelemetryEvent,
}

impl EventRecord {
    /// Encodes the record as one JSON object (no trailing newline), with
    /// the owning worker's index in the `"w"` field.
    pub fn to_json(&self, worker: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"w\":{worker},\"t\":{},\"ev\":\"{}\"",
            self.nanos,
            self.event.name()
        );
        match self.event {
            TelemetryEvent::ScheduleStart {
                dataflow,
                stage,
                epoch,
                seq,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"stage\":{stage},\"epoch\":{epoch},\"seq\":{seq}"
                );
            }
            TelemetryEvent::ScheduleStop {
                dataflow,
                stage,
                nanos,
                worked,
                epoch,
                seq,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"stage\":{stage},\"nanos\":{nanos},\"worked\":{worked},\"epoch\":{epoch},\"seq\":{seq}"
                );
            }
            TelemetryEvent::MessageSent {
                dataflow,
                connector,
                target,
                records,
                bytes,
                remote,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"conn\":{connector},\"target\":{target},\"records\":{records},\"bytes\":{bytes},\"remote\":{remote}"
                );
            }
            TelemetryEvent::MessageReceived {
                dataflow,
                connector,
                records,
                remote,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"conn\":{connector},\"records\":{records},\"remote\":{remote}"
                );
            }
            TelemetryEvent::ProgressBatchSent {
                dataflow,
                seq,
                updates,
            } => {
                let _ = write!(s, ",\"df\":{dataflow},\"seq\":{seq},\"updates\":{updates}");
            }
            TelemetryEvent::ProgressDeposited { dataflow, updates } => {
                let _ = write!(s, ",\"df\":{dataflow},\"updates\":{updates}");
            }
            TelemetryEvent::ProgressApplied {
                dataflow,
                sender,
                seq,
                updates,
                net,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"sender\":{sender},\"seq\":{seq},\"updates\":{updates},\"net\":{net}"
                );
            }
            TelemetryEvent::NotificationDelivered {
                dataflow,
                stage,
                epoch,
                blocking,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"stage\":{stage},\"epoch\":{epoch},\"blocking\":{blocking}"
                );
            }
            TelemetryEvent::FrontierProbe {
                dataflow,
                active,
                input_epoch,
            } => {
                let _ = write!(s, ",\"df\":{dataflow},\"active\":{active}");
                match input_epoch {
                    Some(e) => {
                        let _ = write!(s, ",\"input_epoch\":{e}");
                    }
                    None => s.push_str(",\"input_epoch\":null"),
                }
            }
            TelemetryEvent::CheckpointTaken { bytes }
            | TelemetryEvent::CheckpointRestored { bytes } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            TelemetryEvent::FaultEscalated { kind } => match kind {
                FaultKind::LinkFailed { src, dst } => {
                    let _ = write!(s, ",\"kind\":\"link_failed\",\"src\":{src},\"dst\":{dst}");
                }
                FaultKind::ProcessCrashed { process } => {
                    let _ = write!(s, ",\"kind\":\"process_crashed\",\"process\":{process}");
                }
                FaultKind::Stalled { worker } => {
                    let _ = write!(s, ",\"kind\":\"stalled\",\"worker\":{worker}");
                }
            },
            TelemetryEvent::PeerSuspected { peer, silent_ms }
            | TelemetryEvent::PeerFailed { peer, silent_ms } => {
                let _ = write!(s, ",\"peer\":{peer},\"silent_ms\":{silent_ms}");
            }
            TelemetryEvent::PeerCleared { peer } => {
                let _ = write!(s, ",\"peer\":{peer}");
            }
            TelemetryEvent::AnalysisReport {
                dataflow,
                errors,
                warnings,
                infos,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"errors\":{errors},\"warnings\":{warnings},\"infos\":{infos}"
                );
            }
            TelemetryEvent::Stalled { idle_ms, active } => {
                let _ = write!(s, ",\"idle_ms\":{idle_ms},\"active\":{active}");
            }
            TelemetryEvent::RescaleStarted {
                epoch,
                from_workers,
                to_workers,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"from_workers\":{from_workers},\"to_workers\":{to_workers}"
                );
            }
            TelemetryEvent::PartitionMigrated { from_worker, bytes } => {
                let _ = write!(s, ",\"from_worker\":{from_worker},\"bytes\":{bytes}");
            }
            TelemetryEvent::RescaleCompleted {
                epoch,
                workers,
                stalled_ms,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"workers\":{workers},\"stalled_ms\":{stalled_ms}"
                );
            }
            TelemetryEvent::TuningDecision {
                epoch,
                knob,
                from,
                to,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"knob\":\"{}\",\"from\":{from},\"to\":{to}",
                    knob.name()
                );
            }
            TelemetryEvent::CreditWait {
                dataflow,
                connector,
                waited_ns,
                bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"conn\":{connector},\"waited_ns\":{waited_ns},\"bytes\":{bytes}"
                );
            }
            TelemetryEvent::OverloadTransition { from, to } => {
                let _ = write!(s, ",\"from\":{from},\"to\":{to}");
            }
            TelemetryEvent::MessagesShed {
                dataflow,
                connector,
                records,
                bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"df\":{dataflow},\"conn\":{connector},\"records\":{records},\"bytes\":{bytes}"
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_well_formed() {
        let records = [
            EventRecord {
                nanos: 5,
                event: TelemetryEvent::ScheduleStart {
                    dataflow: 0,
                    stage: 3,
                    epoch: 2,
                    seq: 40,
                },
            },
            EventRecord {
                nanos: 9,
                event: TelemetryEvent::ScheduleStop {
                    dataflow: 0,
                    stage: 3,
                    nanos: 4,
                    worked: true,
                    epoch: 2,
                    seq: 40,
                },
            },
            EventRecord {
                nanos: 10,
                event: TelemetryEvent::TuningDecision {
                    epoch: 2,
                    knob: TuningKnob::BatchSize,
                    from: 1024,
                    to: 2048,
                },
            },
            EventRecord {
                nanos: 11,
                event: TelemetryEvent::FrontierProbe {
                    dataflow: 0,
                    active: 2,
                    input_epoch: None,
                },
            },
            EventRecord {
                nanos: 12,
                event: TelemetryEvent::FaultEscalated {
                    kind: FaultKind::ProcessCrashed { process: 1 },
                },
            },
            EventRecord {
                nanos: 13,
                event: TelemetryEvent::FaultEscalated {
                    kind: FaultKind::Stalled { worker: 2 },
                },
            },
            EventRecord {
                nanos: 14,
                event: TelemetryEvent::PeerSuspected {
                    peer: 1,
                    silent_ms: 60,
                },
            },
            EventRecord {
                nanos: 15,
                event: TelemetryEvent::PeerCleared { peer: 1 },
            },
            EventRecord {
                nanos: 16,
                event: TelemetryEvent::PeerFailed {
                    peer: 1,
                    silent_ms: 220,
                },
            },
            EventRecord {
                nanos: 17,
                event: TelemetryEvent::Stalled {
                    idle_ms: 30_000,
                    active: 4,
                },
            },
            EventRecord {
                nanos: 18,
                event: TelemetryEvent::CreditWait {
                    dataflow: 0,
                    connector: 2,
                    waited_ns: 1_500_000,
                    bytes: 4096,
                },
            },
            EventRecord {
                nanos: 19,
                event: TelemetryEvent::OverloadTransition { from: 0, to: 1 },
            },
            EventRecord {
                nanos: 20,
                event: TelemetryEvent::MessagesShed {
                    dataflow: 0,
                    connector: 2,
                    records: 64,
                    bytes: 4096,
                },
            },
        ];
        for r in records {
            let json = r.to_json(7);
            assert!(json.starts_with("{\"w\":7,\"t\":"), "{json}");
            assert!(json.ends_with('}'), "{json}");
            // Balanced braces and quotes (a cheap well-formedness check:
            // no nested objects, so exactly one pair of braces).
            assert_eq!(json.matches('{').count(), 1, "{json}");
            assert_eq!(json.matches('}').count(), 1, "{json}");
            assert_eq!(json.matches('"').count() % 2, 0, "{json}");
            assert!(json.contains(&format!("\"ev\":\"{}\"", r.event.name())));
        }
    }

    #[test]
    fn frontier_probe_encodes_closed_inputs_as_null() {
        let r = EventRecord {
            nanos: 1,
            event: TelemetryEvent::FrontierProbe {
                dataflow: 2,
                active: 0,
                input_epoch: Some(4),
            },
        };
        assert!(r.to_json(0).contains("\"input_epoch\":4"));
        let r = EventRecord {
            nanos: 1,
            event: TelemetryEvent::FrontierProbe {
                dataflow: 2,
                active: 0,
                input_epoch: None,
            },
        };
        assert!(r.to_json(0).contains("\"input_epoch\":null"));
    }

    #[test]
    fn schedule_events_carry_epoch_and_seq() {
        let r = EventRecord {
            nanos: 1,
            event: TelemetryEvent::ScheduleStop {
                dataflow: 1,
                stage: 2,
                nanos: 7,
                worked: false,
                epoch: 5,
                seq: 99,
            },
        };
        let json = r.to_json(0);
        assert!(json.contains("\"epoch\":5"), "{json}");
        assert!(json.contains("\"seq\":99"), "{json}");
    }

    #[test]
    fn dataflow_id_distinguishes_dataflow_events_from_cluster_events() {
        let ev = TelemetryEvent::ScheduleStart {
            dataflow: 3,
            stage: 0,
            epoch: 0,
            seq: 0,
        };
        assert_eq!(ev.dataflow_id(), Some(3));
        let ev = TelemetryEvent::TuningDecision {
            epoch: 1,
            knob: TuningKnob::ProgressFlush,
            from: 1,
            to: 2,
        };
        assert_eq!(ev.dataflow_id(), None);
        let ev = TelemetryEvent::CheckpointTaken { bytes: 10 };
        assert_eq!(ev.dataflow_id(), None);
    }

    #[test]
    fn flow_events_carry_dataflow_and_cost_fields() {
        let ev = TelemetryEvent::CreditWait {
            dataflow: 4,
            connector: 9,
            waited_ns: 77,
            bytes: 128,
        };
        assert_eq!(ev.dataflow_id(), Some(4));
        let json = EventRecord { nanos: 1, event: ev }.to_json(0);
        assert!(json.contains("\"ev\":\"credit_wait\""), "{json}");
        assert!(json.contains("\"waited_ns\":77"), "{json}");

        let ev = TelemetryEvent::MessagesShed {
            dataflow: 4,
            connector: 9,
            records: 3,
            bytes: 128,
        };
        assert_eq!(ev.dataflow_id(), Some(4));

        let ev = TelemetryEvent::OverloadTransition { from: 1, to: 2 };
        assert_eq!(ev.dataflow_id(), None);
        let json = EventRecord { nanos: 2, event: ev }.to_json(3);
        assert!(json.contains("\"from\":1,\"to\":2"), "{json}");

        assert_eq!(TuningKnob::CreditBudget.name(), "credit_budget");
    }
}
