//! The per-worker event recorder.
//!
//! Each worker owns one [`Recorder`]; pushers and pullers hold clones
//! (they live on the worker's thread, so the handle is an `Rc`). When
//! telemetry is disabled the handle is empty: no buffer is allocated and
//! every call is a single `Option` branch — the near-zero-cost-off
//! property the benchmarks depend on.
//!
//! Alongside the bounded event buffer the recorder maintains *aggregate
//! counters* (per worker, per operator, per connector) that are updated
//! on every record call even after the buffer fills, so the registry's
//! totals stay exact no matter how long the run.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::Instant;

use crate::graph::{LogicalGraph, StageId};

use super::event::{EventRecord, TelemetryEvent};

/// Worker-level scheduler counters, maintained even when the event
/// buffer is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Scheduling rounds ([`Worker::step`](crate::runtime::Worker::step)).
    pub steps: u64,
    /// Operator scheduling slices run.
    pub schedules: u64,
    /// Nanoseconds spent inside operator slices.
    pub busy_nanos: u64,
    /// Notifications delivered (blocking + purge).
    pub notifications: u64,
    /// Data batches emitted by this worker's pushers.
    pub messages_sent: u64,
    /// Records emitted by this worker's pushers.
    pub records_sent: u64,
    /// Data batches pulled by this worker's vertices.
    pub messages_received: u64,
    /// Records pulled by this worker's vertices.
    pub records_received: u64,
    /// Progress batches this worker put on the wire.
    pub progress_batches_sent: u64,
    /// Progress updates inside those batches.
    pub progress_updates_sent: u64,
    /// Progress updates deposited into a process-local accumulator.
    pub progress_updates_deposited: u64,
    /// Progress batches applied to this worker's trackers.
    pub progress_batches_applied: u64,
    /// Progress updates inside those batches.
    pub progress_updates_applied: u64,
    /// Net occurrence-count delta applied via the protocol (Σ `net`).
    pub net_delta_applied: i64,
    /// Frontier-probe samples recorded.
    pub frontier_samples: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoints restored.
    pub restores: u64,
    /// Faults escalated from this worker's thread.
    pub faults: u64,
    /// Peer-suspected transitions observed by this worker.
    pub suspicions: u64,
    /// Peer-failed declarations observed by this worker.
    pub peer_failures: u64,
    /// Global stalls declared by this worker's watchdog.
    pub stalls: u64,
    /// Elastic rescales this worker participated in (started).
    pub rescales: u64,
    /// Migration shards absorbed into this worker's keyed state.
    pub partitions_migrated: u64,
    /// Bytes of keyed state absorbed across those shards.
    pub migrated_bytes: u64,
    /// Autotuner knob adjustments recorded on this worker.
    pub tuning_decisions: u64,
    /// Times a pusher on this worker parked waiting for credit.
    pub credit_waits: u64,
    /// Cumulative nanoseconds those pushers spent parked.
    pub credit_wait_nanos: u64,
    /// Overload-state transitions on this worker.
    pub overload_transitions: u64,
    /// Data batches dropped by the shedding policy.
    pub batches_shed: u64,
    /// Records inside those dropped batches.
    pub records_shed: u64,
    /// Static-analyzer reports recorded (one per built dataflow).
    pub analysis_reports: u64,
    /// Warning-severity analyzer diagnostics across those reports.
    pub analysis_warnings: u64,
}

/// Per-operator (dataflow, stage) scheduling aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Scheduling slices run.
    pub schedules: u64,
    /// Slices that processed at least one batch.
    pub worked: u64,
    /// Cumulative nanoseconds inside the operator.
    pub busy_nanos: u64,
    /// Notifications delivered to the operator.
    pub notifications: u64,
}

/// Per-connector data-plane aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectorCounters {
    /// Batches emitted on the connector by this worker.
    pub messages_out: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Serialized bytes emitted (remote routes only).
    pub bytes_out: u64,
    /// Batches received on the connector by this worker.
    pub messages_in: u64,
    /// Records received.
    pub records_in: u64,
}

/// The logical shape of one dataflow, captured at construction so the
/// registry can translate connector-level counters into per-operator
/// rows and label stages by name.
#[derive(Debug, Clone)]
pub struct DataflowDirectory {
    /// The dataflow id.
    pub dataflow: u32,
    /// `(stage, name)` for every vertex this worker instantiated, in
    /// stage order.
    pub operators: Vec<(u32, String)>,
    /// `connector → source stage`.
    pub connector_src: Vec<u32>,
    /// `connector → destination stage`.
    pub connector_dst: Vec<u32>,
}

/// Everything harvested from one worker after its closure returns.
#[derive(Debug, Clone)]
pub struct WorkerTelemetry {
    /// The worker's global index.
    pub worker: usize,
    /// Recorded events, in order.
    pub events: Vec<EventRecord>,
    /// Events discarded because the buffer was full.
    pub dropped: u64,
    /// Worker-level counters.
    pub counters: WorkerCounters,
    /// Per-operator aggregates, keyed by `(dataflow, stage)`.
    pub ops: Vec<((u32, u32), OpCounters)>,
    /// Per-connector aggregates, keyed by `(dataflow, connector)`.
    pub connectors: Vec<((u32, u32), ConnectorCounters)>,
    /// Logical shape of every dataflow the worker built.
    pub directory: Vec<DataflowDirectory>,
}

/// An in-process bounded tap on a worker's recorder: the introspection
/// harness drains the queue from a step hook on the same thread (`Rc`,
/// no locks on the hot path). Events from the excluded dataflow (the
/// observer's own analysis dataflow) are never tapped, so the layer
/// cannot feed back into itself.
#[derive(Clone)]
pub(crate) struct Tap {
    /// Pending tapped records, drained by the harness each step.
    pub(crate) queue: Rc<RefCell<VecDeque<EventRecord>>>,
    /// Queue bound; records past it are counted, not queued.
    pub(crate) capacity: usize,
    /// Records the tap discarded because the queue was full.
    pub(crate) dropped: Rc<Cell<u64>>,
    /// Dataflow id whose events are never tapped.
    pub(crate) exclude_dataflow: u32,
}

impl Tap {
    /// Whether this event kind contributes to the program-activity
    /// graph. Start markers and probe samples are skipped at the tap so
    /// the observer only pays for attributable activity.
    fn wants(event: &TelemetryEvent) -> bool {
        matches!(
            event,
            TelemetryEvent::ScheduleStop { .. }
                | TelemetryEvent::MessageSent { .. }
                | TelemetryEvent::MessageReceived { .. }
                | TelemetryEvent::ProgressBatchSent { .. }
                | TelemetryEvent::ProgressDeposited { .. }
                | TelemetryEvent::ProgressApplied { .. }
                | TelemetryEvent::NotificationDelivered { .. }
                | TelemetryEvent::CreditWait { .. }
        )
    }
}

struct EventLog {
    base: Instant,
    events: Vec<EventRecord>,
    capacity: usize,
    dropped: u64,
    warned: bool,
    worker: usize,
    counters: WorkerCounters,
    ops: HashMap<(u32, u32), OpCounters>,
    connectors: HashMap<(u32, u32), ConnectorCounters>,
    directory: Vec<DataflowDirectory>,
    tap: Option<Tap>,
}

impl EventLog {
    fn new(capacity: usize) -> Self {
        EventLog {
            base: Instant::now(),
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            warned: false,
            worker: usize::MAX,
            counters: WorkerCounters::default(),
            ops: HashMap::new(),
            connectors: HashMap::new(),
            directory: Vec::new(),
            tap: None,
        }
    }

    fn record(&mut self, event: TelemetryEvent) {
        self.count(&event);
        let nanos = self.base.elapsed().as_nanos() as u64;
        if let Some(tap) = &self.tap {
            if Tap::wants(&event) && event.dataflow_id() != Some(tap.exclude_dataflow) {
                let mut queue = tap.queue.borrow_mut();
                if queue.len() < tap.capacity {
                    queue.push_back(EventRecord { nanos, event });
                } else {
                    tap.dropped.set(tap.dropped.get() + 1);
                }
            }
        }
        if self.events.len() < self.capacity {
            self.events.push(EventRecord { nanos, event });
        } else {
            self.dropped += 1;
            if !self.warned {
                self.warned = true;
                let worker = self.worker;
                let capacity = self.capacity;
                eprintln!(
                    "naiad: telemetry buffer full (worker {worker}, capacity {capacity}); \
                     further events are counted but not recorded"
                );
            }
        }
    }

    fn count(&mut self, event: &TelemetryEvent) {
        let c = &mut self.counters;
        match *event {
            TelemetryEvent::ScheduleStart { .. } => {}
            TelemetryEvent::ScheduleStop {
                dataflow,
                stage,
                nanos,
                worked,
                ..
            } => {
                c.schedules += 1;
                c.busy_nanos += nanos;
                let op = self.ops.entry((dataflow, stage)).or_default();
                op.schedules += 1;
                op.busy_nanos += nanos;
                op.worked += u64::from(worked);
            }
            TelemetryEvent::MessageSent {
                dataflow,
                connector,
                records,
                bytes,
                ..
            } => {
                c.messages_sent += 1;
                c.records_sent += u64::from(records);
                let conn = self.connectors.entry((dataflow, connector)).or_default();
                conn.messages_out += 1;
                conn.records_out += u64::from(records);
                conn.bytes_out += u64::from(bytes);
            }
            TelemetryEvent::MessageReceived {
                dataflow,
                connector,
                records,
                ..
            } => {
                c.messages_received += 1;
                c.records_received += u64::from(records);
                let conn = self.connectors.entry((dataflow, connector)).or_default();
                conn.messages_in += 1;
                conn.records_in += u64::from(records);
            }
            TelemetryEvent::ProgressBatchSent { updates, .. } => {
                c.progress_batches_sent += 1;
                c.progress_updates_sent += u64::from(updates);
            }
            TelemetryEvent::ProgressDeposited { updates, .. } => {
                c.progress_updates_deposited += u64::from(updates);
            }
            TelemetryEvent::ProgressApplied { updates, net, .. } => {
                c.progress_batches_applied += 1;
                c.progress_updates_applied += u64::from(updates);
                c.net_delta_applied += net;
            }
            TelemetryEvent::NotificationDelivered {
                dataflow, stage, ..
            } => {
                c.notifications += 1;
                self.ops.entry((dataflow, stage)).or_default().notifications += 1;
            }
            TelemetryEvent::FrontierProbe { .. } => c.frontier_samples += 1,
            TelemetryEvent::CheckpointTaken { .. } => c.checkpoints += 1,
            TelemetryEvent::CheckpointRestored { .. } => c.restores += 1,
            TelemetryEvent::FaultEscalated { .. } => c.faults += 1,
            TelemetryEvent::PeerSuspected { .. } => c.suspicions += 1,
            TelemetryEvent::PeerCleared { .. } => {}
            TelemetryEvent::PeerFailed { .. } => c.peer_failures += 1,
            TelemetryEvent::Stalled { .. } => c.stalls += 1,
            TelemetryEvent::RescaleStarted { .. } => c.rescales += 1,
            TelemetryEvent::PartitionMigrated { bytes, .. } => {
                c.partitions_migrated += 1;
                c.migrated_bytes += bytes;
            }
            TelemetryEvent::RescaleCompleted { .. } => {}
            TelemetryEvent::TuningDecision { .. } => c.tuning_decisions += 1,
            TelemetryEvent::CreditWait { waited_ns, .. } => {
                c.credit_waits += 1;
                c.credit_wait_nanos += waited_ns;
            }
            TelemetryEvent::OverloadTransition { .. } => c.overload_transitions += 1,
            TelemetryEvent::MessagesShed { records, .. } => {
                c.batches_shed += 1;
                c.records_shed += u64::from(records);
            }
            TelemetryEvent::AnalysisReport { warnings, .. } => {
                c.analysis_reports += 1;
                c.analysis_warnings += u64::from(warnings);
            }
        }
    }
}

/// A cheap, cloneable handle to a worker's event log. Empty (all calls
/// no-ops) when telemetry is disabled.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Rc<RefCell<EventLog>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Recorder {
    /// A disabled recorder: allocates nothing, records nothing.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with an event buffer of `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Some(Rc::new(RefCell::new(EventLog::new(capacity)))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&self, event: TelemetryEvent) {
        if let Some(log) = &self.inner {
            log.borrow_mut().record(event);
        }
    }

    /// Labels the recorder with its worker's global index (used by the
    /// warn-once drop message).
    pub(crate) fn set_worker(&self, worker: usize) {
        if let Some(log) = &self.inner {
            log.borrow_mut().worker = worker;
        }
    }

    /// Installs an introspection tap. At most one tap is active; a second
    /// install replaces the first.
    pub(crate) fn install_tap(&self, tap: Tap) {
        if let Some(log) = &self.inner {
            log.borrow_mut().tap = Some(tap);
        }
    }

    /// Removes the introspection tap, if any.
    pub(crate) fn remove_tap(&self) {
        if let Some(log) = &self.inner {
            log.borrow_mut().tap = None;
        }
    }

    /// Counts one scheduling round.
    #[inline]
    pub fn record_step(&self) {
        if let Some(log) = &self.inner {
            log.borrow_mut().counters.steps += 1;
        }
    }

    /// Registers a dataflow's logical shape and this worker's vertex
    /// names, so the registry can label per-operator rows.
    pub fn register_dataflow(
        &self,
        dataflow: usize,
        graph: &LogicalGraph,
        operators: Vec<(StageId, String)>,
    ) {
        let Some(log) = &self.inner else { return };
        let connectors = graph.connectors();
        log.borrow_mut().directory.push(DataflowDirectory {
            dataflow: dataflow as u32,
            operators: operators
                .into_iter()
                .map(|(s, n)| (s.0 as u32, n))
                .collect(),
            connector_src: connectors.iter().map(|c| c.src.0 .0 as u32).collect(),
            connector_dst: connectors.iter().map(|c| c.dst.0 .0 as u32).collect(),
        });
    }

    /// The most recent `n` recorded events (diagnostic surface for the
    /// `NAIAD_DEBUG` structured dump).
    pub fn recent(&self, n: usize) -> Vec<EventRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(log) => {
                let log = log.borrow();
                let start = log.events.len().saturating_sub(n);
                log.events[start..].to_vec()
            }
        }
    }

    /// Drains the log into a [`WorkerTelemetry`] for the registry.
    /// Returns `None` when disabled. The recorder stays usable (further
    /// events land in the emptied buffer).
    pub fn harvest(&self, worker: usize) -> Option<WorkerTelemetry> {
        let log = self.inner.as_ref()?;
        let mut log = log.borrow_mut();
        let mut ops: Vec<_> = log.ops.drain().collect();
        ops.sort_by_key(|(k, _)| *k);
        let mut connectors: Vec<_> = log.connectors.drain().collect();
        connectors.sort_by_key(|(k, _)| *k);
        Some(WorkerTelemetry {
            worker,
            events: std::mem::take(&mut log.events),
            dropped: std::mem::take(&mut log.dropped),
            counters: std::mem::take(&mut log.counters),
            ops,
            connectors,
            directory: std::mem::take(&mut log.directory),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_allocates_and_records_nothing() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.record(TelemetryEvent::ScheduleStart {
            dataflow: 0,
            stage: 0,
            epoch: 0,
            seq: 0,
        });
        r.record_step();
        assert!(r.recent(10).is_empty());
        assert!(r.harvest(0).is_none());
    }

    #[test]
    fn counters_survive_a_full_buffer() {
        let r = Recorder::with_capacity(2);
        for i in 0..5u64 {
            r.record(TelemetryEvent::ScheduleStop {
                dataflow: 0,
                stage: 1,
                nanos: i,
                worked: i % 2 == 0,
                epoch: 0,
                seq: i,
            });
        }
        let t = r.harvest(3).unwrap();
        assert_eq!(t.worker, 3);
        assert_eq!(t.events.len(), 2, "buffer capped at capacity");
        assert_eq!(t.dropped, 3);
        assert_eq!(t.counters.schedules, 5, "aggregates keep counting");
        assert_eq!(t.counters.busy_nanos, 1 + 2 + 3 + 4);
        let (&key, op) = t
            .ops
            .iter()
            .map(|(k, v)| (k, v))
            .next()
            .expect("one operator");
        assert_eq!(key, (0, 1));
        assert_eq!(op.schedules, 5);
        assert_eq!(op.worked, 3);
    }

    #[test]
    fn connector_counters_accumulate_both_directions() {
        let r = Recorder::with_capacity(16);
        r.record(TelemetryEvent::MessageSent {
            dataflow: 0,
            connector: 2,
            target: 1,
            records: 10,
            bytes: 80,
            remote: true,
        });
        r.record(TelemetryEvent::MessageReceived {
            dataflow: 0,
            connector: 2,
            records: 4,
            remote: false,
        });
        let t = r.harvest(0).unwrap();
        assert_eq!(t.counters.records_sent, 10);
        assert_eq!(t.counters.records_received, 4);
        let (_, conn) = t.connectors[0];
        assert_eq!(
            (conn.messages_out, conn.records_out, conn.bytes_out),
            (1, 10, 80)
        );
        assert_eq!((conn.messages_in, conn.records_in), (1, 4));
    }

    #[test]
    fn recent_returns_the_tail_and_harvest_drains() {
        let r = Recorder::with_capacity(16);
        for seq in 0..6u64 {
            r.record(TelemetryEvent::ProgressBatchSent {
                dataflow: 0,
                seq,
                updates: 1,
            });
        }
        let tail = r.recent(2);
        assert_eq!(tail.len(), 2);
        assert!(matches!(
            tail[1].event,
            TelemetryEvent::ProgressBatchSent { seq: 5, .. }
        ));
        let t = r.harvest(0).unwrap();
        assert_eq!(t.events.len(), 6);
        assert_eq!(t.counters.progress_batches_sent, 6);
        assert!(r.recent(4).is_empty(), "harvest drains the buffer");
    }

    #[test]
    fn flow_counters_accumulate_waits_and_sheds() {
        let r = Recorder::with_capacity(16);
        r.record(TelemetryEvent::CreditWait {
            dataflow: 0,
            connector: 1,
            waited_ns: 500,
            bytes: 64,
        });
        r.record(TelemetryEvent::CreditWait {
            dataflow: 0,
            connector: 1,
            waited_ns: 700,
            bytes: 64,
        });
        r.record(TelemetryEvent::OverloadTransition { from: 0, to: 1 });
        r.record(TelemetryEvent::MessagesShed {
            dataflow: 0,
            connector: 1,
            records: 8,
            bytes: 64,
        });
        let t = r.harvest(0).unwrap();
        assert_eq!(t.counters.credit_waits, 2);
        assert_eq!(t.counters.credit_wait_nanos, 1200);
        assert_eq!(t.counters.overload_transitions, 1);
        assert_eq!(t.counters.batches_shed, 1);
        assert_eq!(t.counters.records_shed, 8);
    }

    #[test]
    fn tap_captures_attributable_events_and_excludes_the_observer() {
        let r = Recorder::with_capacity(64);
        let queue = Rc::new(RefCell::new(VecDeque::new()));
        let dropped = Rc::new(Cell::new(0u64));
        r.install_tap(Tap {
            queue: Rc::clone(&queue),
            capacity: 2,
            dropped: Rc::clone(&dropped),
            exclude_dataflow: 0,
        });
        // Start markers and the observer's own dataflow are filtered.
        r.record(TelemetryEvent::ScheduleStart {
            dataflow: 1,
            stage: 0,
            epoch: 0,
            seq: 0,
        });
        r.record(TelemetryEvent::ScheduleStop {
            dataflow: 0,
            stage: 0,
            nanos: 1,
            worked: true,
            epoch: 0,
            seq: 1,
        });
        assert!(queue.borrow().is_empty());
        // Attributable events from other dataflows land in the queue,
        // bounded by the tap capacity with a separate drop counter.
        for seq in 0..4u64 {
            r.record(TelemetryEvent::ScheduleStop {
                dataflow: 1,
                stage: 0,
                nanos: 1,
                worked: true,
                epoch: 0,
                seq,
            });
        }
        assert_eq!(queue.borrow().len(), 2);
        assert_eq!(dropped.get(), 2);
        // The worker's own buffer saw everything regardless of the tap.
        let t = r.harvest(0).unwrap();
        assert_eq!(t.events.len(), 6);
        assert_eq!(t.dropped, 0);
    }
}
