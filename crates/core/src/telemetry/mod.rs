//! Structured telemetry: per-worker event logs, a unified metrics
//! registry, and frontier probes.
//!
//! The paper's evaluation (§5–§6) is a measurement story — data versus
//! progress traffic (Fig 6c), barrier latency (Fig 6b), straggler
//! diagnosis (§5.3). This module is the substrate those measurements
//! read from:
//!
//! * **Per-worker event log** ([`Recorder`], [`EventRecord`]): a
//!   preallocated, bounded buffer of typed [`TelemetryEvent`]s — operator
//!   schedule start/stop with nanosecond durations, message send/receive
//!   with byte counts, progress batches produced and applied,
//!   notification delivery, checkpoint/restore, and fault escalations.
//!   Enabled via [`Config::telemetry`](crate::runtime::Config::telemetry)
//!   (or the `NAIAD_DEBUG` env var); when disabled no buffer is allocated
//!   and every record call is a single branch.
//! * **Metrics registry** ([`TelemetrySnapshot`]): unifies scheduler
//!   counters (steps, schedule activations, notifications), per-operator
//!   cumulative schedule time and record counts, and the fabric's
//!   per-class traffic meters
//!   ([`FabricMetrics`](naiad_netsim::FabricMetrics)) into one snapshot
//!   assembled after the cluster joins.
//! * **Frontier probes** ([`FrontierSample`]): per-dataflow frontier
//!   progression over time, sampled once per scheduling step whenever the
//!   input frontier or active-pointstamp count changes. The sampled input
//!   epoch is monotone per worker — the §3.3 guarantee that a local view
//!   never moves backwards, which the `telemetry` integration test
//!   asserts.
//! * **Exporters**: [`TelemetrySnapshot::events_json_lines`] (one JSON
//!   object per event, SnailTrail-style) and
//!   [`TelemetrySnapshot::summary_table`] (human-readable per-worker /
//!   per-operator / traffic tables).
//!
//! Entry points:
//! [`execute_with_telemetry`](crate::runtime::execute::execute_with_telemetry)
//! returns the snapshot alongside the worker results, and
//! [`ResilientReport::telemetry`](crate::runtime::recovery::ResilientReport)
//! carries the final attempt's snapshot when telemetry is enabled.

mod event;
mod recorder;
mod snapshot;

pub use event::{EventRecord, TelemetryEvent, TuningKnob};
pub(crate) use recorder::Tap;
pub use recorder::{
    ConnectorCounters, DataflowDirectory, OpCounters, Recorder, WorkerCounters, WorkerTelemetry,
};
pub use snapshot::{
    FlowGauges, FrontierSample, HubCounters, OperatorSummary, TelemetrySnapshot, TrafficSummary,
    WorkerSummary,
};
