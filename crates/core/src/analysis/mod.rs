//! `naiad::analysis` — a could-result-in-powered static dataflow linter.
//!
//! Naiad's correctness hinges on structural invariants the paper states
//! but [`GraphBuilder::build`](crate::graph::GraphBuilder::build) only
//! partially enforces: every cycle must pass through a loop context whose
//! feedback *strictly advances* the timestamp (§2.1/§2.3), and
//! notification requests are only sound while some path summary can still
//! reach the requested time (§2.3's could-result-in relation). This module
//! checks those invariants — and four more coordination-misuse classes —
//! *statically*, over the validated [`LogicalGraph`] and its all-pairs
//! path summaries, before a single record moves.
//!
//! # Rule catalog
//!
//! | code     | default severity | what it catches |
//! |----------|------------------|-----------------|
//! | `NA0001` | Error            | zero-delay cycle: a cycle whose composed path summary does not strictly advance any timestamp coordinate (guaranteed non-termination, §2.1) |
//! | `NA0002` | Warning          | dead vertex: unreachable from any input, or no path to any output/probe |
//! | `NA0003` | Error            | unreachable notification: a declared `notify_at` whose time no incoming summary can still produce (§2.3) |
//! | `NA0004` | Error/Warning    | ingress/egress imbalance: loop-context entry without a matching exit |
//! | `NA0005` | Warning          | re-entrancy hazard: local-delivery cycles shorter than the configured bound |
//! | `NA0006` | Error            | exchange-contract violation: a stage mixing an exchange-partitioned input with a pipelined input whose partition is worker-variant; with [`AnalysisConfig::rescale_contracts`], also certifies stateful stages rescale-safe (state keyed, placement worker-invariant) |
//!
//! # Entry points
//!
//! * [`analyze`] runs every enabled rule and returns an
//!   [`AnalysisReport`];
//! * [`GraphBuilder::build_checked`](crate::graph::GraphBuilder::build_checked)
//!   validates, analyzes, and *denies* graphs with diagnostics at or above
//!   [`AnalysisConfig::deny`] severity;
//! * the runtime routes every
//!   [`Worker::dataflow`](crate::runtime::Worker::dataflow) through
//!   `build_checked`, so analyzer-rejected dataflows never start;
//! * `cargo run --example naiad_lint` reports over every in-repo dataflow
//!   (rustc-style, or JSON with `--format json`).
//!
//! # Suppressing findings
//!
//! [`AnalysisConfig::allow`] disables a rule entirely;
//! [`AnalysisConfig::set_severity`] re-levels one (e.g. demote `NA0006` to
//! [`Severity::Warning`] during a migration). The deny threshold itself is
//! [`AnalysisConfig::deny`]; set it to [`Severity::Never`] to make
//! `build_checked` purely advisory.

mod rules;

use crate::graph::{ConnectorId, LogicalGraph, StageId};

/// How serious a diagnostic is.
///
/// Ordered: `Info < Warning < Error < Never`. The extra [`Severity::Never`]
/// level exists only as a deny threshold meaning "never deny".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but not certainly wrong.
    Warning,
    /// A coordination bug: the dataflow can deadlock, livelock, or lose
    /// the guarantees notifications rest on.
    Error,
    /// Not a real severity — used as a deny threshold meaning "deny
    /// nothing".
    Never,
}

impl Severity {
    /// Lowercase label used in reports (`error`, `warning`, `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Never => "never",
        }
    }
}

/// Stable diagnostic codes, one per analyzer rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `NA0001`: a cycle whose composed summary does not strictly advance
    /// any timestamp coordinate.
    ZeroDelayCycle,
    /// `NA0002`: a vertex unreachable from any input, or with no path to
    /// any output or probe.
    DeadVertex,
    /// `NA0003`: a declared notification whose time no incoming summary
    /// can still produce.
    UnreachableNotification,
    /// `NA0004`: a loop context entered without a matching exit (or vice
    /// versa).
    LoopImbalance,
    /// `NA0005`: a local-delivery cycle shorter than the configured
    /// re-entrancy bound.
    ReentrancyHazard,
    /// `NA0006`: an exchange-partitioned input mixed with a pipelined
    /// input whose partition is worker-variant.
    ExchangeContract,
}

impl Code {
    /// The stable `NAxxxx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ZeroDelayCycle => "NA0001",
            Code::DeadVertex => "NA0002",
            Code::UnreachableNotification => "NA0003",
            Code::LoopImbalance => "NA0004",
            Code::ReentrancyHazard => "NA0005",
            Code::ExchangeContract => "NA0006",
        }
    }

    /// Short rule title (report headers, DESIGN.md §12).
    pub fn title(self) -> &'static str {
        match self {
            Code::ZeroDelayCycle => "zero-delay cycle",
            Code::DeadVertex => "dead vertex",
            Code::UnreachableNotification => "unreachable notification",
            Code::LoopImbalance => "ingress/egress imbalance",
            Code::ReentrancyHazard => "re-entrancy hazard",
            Code::ExchangeContract => "exchange-contract violation",
        }
    }

    /// The paper section grounding the rule.
    pub fn paper_section(self) -> &'static str {
        match self {
            Code::ZeroDelayCycle => "§2.1/§2.3",
            Code::DeadVertex => "§2.1",
            Code::UnreachableNotification => "§2.3",
            Code::LoopImbalance => "§2.1",
            Code::ReentrancyHazard => "§2.2/§3.2",
            Code::ExchangeContract => "§4.2",
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Code; 6] {
        [
            Code::ZeroDelayCycle,
            Code::DeadVertex,
            Code::UnreachableNotification,
            Code::LoopImbalance,
            Code::ReentrancyHazard,
            Code::ExchangeContract,
        ]
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the graph a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Locus {
    /// A stage, optionally narrowed to one input port.
    Stage {
        /// Numeric stage id.
        id: StageId,
        /// Human-readable stage name.
        name: String,
        /// The input port concerned, if the finding is port-specific.
        port: Option<usize>,
    },
    /// A connector, with both endpoint names.
    Connector {
        /// Numeric connector id.
        id: ConnectorId,
        /// Source stage name.
        src: String,
        /// Destination stage name.
        dst: String,
    },
    /// A loop context (by index).
    Context {
        /// Context index (0 is the root streaming context).
        id: usize,
    },
}

impl Locus {
    pub(crate) fn stage(graph: &LogicalGraph, id: StageId) -> Locus {
        Locus::Stage {
            id,
            name: graph.stage_name(id).to_string(),
            port: None,
        }
    }

    pub(crate) fn connector(graph: &LogicalGraph, id: ConnectorId) -> Locus {
        let c = &graph.connectors()[id.0];
        Locus::Connector {
            id,
            src: graph.stage_name(c.src.0).to_string(),
            dst: graph.stage_name(c.dst.0).to_string(),
        }
    }
}

impl std::fmt::Display for Locus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Locus::Stage {
                id,
                name,
                port: Some(p),
            } => {
                write!(f, "input port {p} of stage '{name}' (#{})", id.0)
            }
            Locus::Stage {
                id,
                name,
                port: None,
            } => write!(f, "stage '{name}' (#{})", id.0),
            Locus::Connector { id, src, dst } => {
                write!(f, "connector #{} ('{src}' -> '{dst}')", id.0)
            }
            Locus::Context { id } => write!(f, "loop context #{id}"),
        }
    }
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: Code,
    /// Severity after any configured override.
    pub severity: Severity,
    /// Where the finding points.
    pub locus: Locus,
    /// What is wrong, in the user's vocabulary (stage names, ports).
    pub message: String,
    /// How to fix or suppress it.
    pub suggestion: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {} at {}",
            self.severity.label(),
            self.code,
            self.message,
            self.locus
        )
    }
}

/// Analyzer configuration: severity policy, suppression, and rule knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Diagnostics at or above this severity make
    /// [`GraphBuilder::build_checked`](crate::graph::GraphBuilder::build_checked)
    /// reject the graph. Default: [`Severity::Error`]. Use
    /// [`Severity::Never`] for advisory-only analysis.
    pub deny: Severity,
    /// `NA0005` flags all-local cycles with fewer stages than this bound.
    /// Default 2: only degenerate self-cycles (a feedback wired straight
    /// to itself) fire; raise it to audit tighter loops.
    pub reentrancy_bound: usize,
    /// Per-code severity overrides, applied after the rule's default.
    pub overrides: Vec<(Code, Severity)>,
    /// Rules disabled outright.
    pub disabled: Vec<Code>,
    /// When set, `NA0006` additionally certifies the graph *rescale-safe*:
    /// every stage registering cross-epoch state must register it keyed
    /// (so an elastic rescale can re-partition it by the exchange hash),
    /// and every keyed-state stage must sit at worker-invariant placement
    /// (so re-partitioning by key moves exactly the records that were
    /// routed by that key). Default: off — plans built through
    /// [`execute_elastic`](crate::runtime::rescale::execute_elastic)
    /// enable it.
    pub rescale_contracts: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            deny: Severity::Error,
            reentrancy_bound: 2,
            overrides: Vec::new(),
            disabled: Vec::new(),
            rescale_contracts: false,
        }
    }
}

impl AnalysisConfig {
    /// Disables `code` entirely.
    #[must_use]
    pub fn allow(mut self, code: Code) -> Self {
        self.disabled.push(code);
        self
    }

    /// Overrides the default severity of `code`.
    #[must_use]
    pub fn set_severity(mut self, code: Code, severity: Severity) -> Self {
        self.overrides.push((code, severity));
        self
    }

    /// Sets the `NA0005` cycle-length bound.
    #[must_use]
    pub fn with_reentrancy_bound(mut self, bound: usize) -> Self {
        self.reentrancy_bound = bound;
        self
    }

    /// Enables the `NA0006` rescale-safe certification (see
    /// [`AnalysisConfig::rescale_contracts`]).
    #[must_use]
    pub fn with_rescale_contracts(mut self) -> Self {
        self.rescale_contracts = true;
        self
    }

    /// The effective severity of `code` (override or `default`).
    fn effective_severity(&self, code: Code, default: Severity) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(c, _)| *c == code)
            .map_or(default, |(_, s)| *s)
    }
}

/// Everything the analyzer found, ordered most severe first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
    stages: usize,
    connectors: usize,
}

impl AnalysisReport {
    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of stages analyzed.
    pub fn stage_count(&self) -> usize {
        self.stages
    }

    /// Number of connectors analyzed.
    pub fn connector_count(&self) -> usize {
        self.connectors
    }

    /// Diagnostics at [`Severity::Error`].
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Diagnostics at [`Severity::Warning`].
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Diagnostics at [`Severity::Info`].
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report carries no error-severity findings.
    pub fn is_error_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Diagnostics carrying `code`.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// The first diagnostic at or above the config's deny threshold.
    pub fn first_denied(&self, config: &AnalysisConfig) -> Option<&Diagnostic> {
        if config.deny == Severity::Never {
            return None;
        }
        // Diagnostics are sorted most severe first.
        self.diagnostics.first().filter(|d| d.severity >= config.deny)
    }

    /// Renders a rustc-style multi-line report. `subject` names the
    /// dataflow being reported on.
    pub fn render_text(&self, subject: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            let _ = writeln!(
                out,
                "{subject}: clean ({} stages, {} connectors analyzed)",
                self.stages, self.connectors
            );
            return out;
        }
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}[{}]: {} ({})",
                d.severity.label(),
                d.code,
                d.message,
                d.code.title()
            );
            let _ = writeln!(out, "  --> {} in {subject}", d.locus);
            let _ = writeln!(out, "   = note: grounded in {}", d.code.paper_section());
            let _ = writeln!(out, "   = help: {}", d.suggestion);
        }
        let _ = writeln!(
            out,
            "{subject}: {} error(s), {} warning(s), {} info(s)",
            self.error_count(),
            self.warning_count(),
            self.info_count()
        );
        out
    }

    /// Renders the report as one JSON object (no trailing newline):
    /// `{"subject": ..., "errors": n, "warnings": n, "diagnostics": [...]}`.
    pub fn render_json(&self, subject: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"subject\":\"{}\",\"stages\":{},\"connectors\":{},\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            escape_json(subject),
            self.stages,
            self.connectors,
            self.error_count(),
            self.warning_count(),
            self.info_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",",
                d.code,
                d.severity.label()
            );
            match &d.locus {
                Locus::Stage { id, name, port } => {
                    let _ = write!(
                        out,
                        "\"locus\":{{\"kind\":\"stage\",\"id\":{},\"name\":\"{}\"",
                        id.0,
                        escape_json(name)
                    );
                    if let Some(p) = port {
                        let _ = write!(out, ",\"port\":{p}");
                    }
                    out.push_str("},");
                }
                Locus::Connector { id, src, dst } => {
                    let _ = write!(
                        out,
                        "\"locus\":{{\"kind\":\"connector\",\"id\":{},\"src\":\"{}\",\"dst\":\"{}\"}},",
                        id.0,
                        escape_json(src),
                        escape_json(dst)
                    );
                }
                Locus::Context { id } => {
                    let _ = write!(out, "\"locus\":{{\"kind\":\"context\",\"id\":{id}}},");
                }
            }
            let _ = write!(
                out,
                "\"message\":\"{}\",\"suggestion\":\"{}\"}}",
                escape_json(&d.message),
                escape_json(&d.suggestion)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs every enabled rule over a validated graph and its path summaries.
pub fn analyze(graph: &LogicalGraph, config: &AnalysisConfig) -> AnalysisReport {
    let mut diagnostics = rules::run_all(graph, config);
    diagnostics.retain(|d| !config.disabled.contains(&d.code));
    for d in &mut diagnostics {
        d.severity = config.effective_severity(d.code, d.severity);
    }
    // Most severe first, then by code, then by textual locus for
    // determinism.
    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.locus.to_string().cmp(&b.locus.to_string()))
    });
    AnalysisReport {
        diagnostics,
        stages: graph.stages().len(),
        connectors: graph.connectors().len(),
    }
}
