//! The analyzer's rule implementations.
//!
//! Every rule consumes the validated [`LogicalGraph`] (including its
//! all-pairs path summaries Ψ, §2.3) and returns structured
//! [`Diagnostic`]s at the rule's *default* severity; the caller
//! ([`super::analyze`]) applies configured overrides and suppression.

use super::{AnalysisConfig, Code, Diagnostic, Locus, Severity};
use crate::graph::{Connector, ConnectorId, Location, LogicalGraph, PactKind, StageId, StageKind};
use crate::order::{Antichain, PartialOrder};
use crate::summary::Summary;
use crate::time::Timestamp;

/// Runs every rule in code order.
pub(super) fn run_all(graph: &LogicalGraph, config: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zero_delay_cycles(graph, &mut out);
    dead_vertices(graph, &mut out);
    unreachable_notifications(graph, &mut out);
    loop_imbalance(graph, &mut out);
    reentrancy_hazards(graph, config, &mut out);
    exchange_contract(graph, &mut out);
    if config.rescale_contracts {
        rescale_contracts(graph, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// NA0001: zero-delay cycle (§2.1/§2.3)
// ---------------------------------------------------------------------------

/// All-pairs summaries over *non-empty* stage-to-stage paths (Ψ⁺).
///
/// [`SummaryMatrix`](crate::graph::SummaryMatrix) seeds its diagonal with
/// identities, which is what could-result-in wants but absorbs exactly the
/// cycle summaries this rule needs: an identity on `(v, v)` dominates the
/// composed summary of a real cycle through `v`. Recomputing without the
/// diagonal seed keeps only summaries of paths with at least one arc, so a
/// cell `(v, v)` holds precisely the cycle summaries through `v`.
///
/// The relaxation terminates for the same reason the main matrix's does:
/// same-`keep` summaries are totally ordered, so each antichain holds at
/// most one summary per `keep` value, of which there are at most
/// `MAX_LOOP_DEPTH + 1`.
fn plus_matrix(graph: &LogicalGraph) -> Vec<Antichain<Summary>> {
    let n = graph.stages().len();
    let mut cells: Vec<Antichain<Summary>> = vec![Antichain::new(); n * n];

    // Stage-level arcs: a connector moves a timestamp from the source
    // stage's input to the destination stage's input by applying the
    // source stage's timestamp action (the connector itself is identity).
    let arcs: Vec<(usize, usize, Summary)> = graph
        .connectors()
        .iter()
        .map(|c| (c.src.0 .0, c.dst.0 .0, graph.stage_summary(c.src.0)))
        .collect();

    // Seed with the length-1 paths, then relax to fixpoint.
    let mut changed = false;
    for &(a, b, s) in &arcs {
        changed |= cells[a * n + b].insert(s);
    }
    while changed {
        changed = false;
        for &(a, b, step) in &arcs {
            for l1 in 0..n {
                let from = l1 * n + a;
                if cells[from].is_empty() {
                    continue;
                }
                let candidates: Vec<Summary> = cells[from]
                    .elements()
                    .iter()
                    .map(|s| s.then(&step))
                    .collect();
                let to = l1 * n + b;
                for c in candidates {
                    changed |= cells[to].insert(c);
                }
            }
        }
    }
    cells
}

/// Whether a cycle summary admits a stationary timestamp, i.e. fails to
/// strictly advance any coordinate.
///
/// A canonical summary maps `(e, c₁…c_d)` to `(e, c₁…c_keep + inc, push…)`.
/// If `inc > 0` the last kept coordinate strictly increases for *every*
/// timestamp (timestamps are compared lexicographically), so no stationary
/// time exists. If `inc == 0` the witness `t = (0, 0^keep ++ push)` maps to
/// itself exactly.
fn is_zero_delay(summary: &Summary) -> bool {
    summary.inc() == 0
}

/// The stationary witness timestamp of a zero-delay cycle summary.
fn zero_delay_witness(summary: &Summary) -> Timestamp {
    let mut counters = vec![0u64; summary.keep()];
    counters.extend_from_slice(summary.push());
    let witness = Timestamp::with_counters(0, &counters);
    debug_assert!(summary.apply(&witness).less_equal(&witness));
    witness
}

fn zero_delay_cycles(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    let n = graph.stages().len();
    let plus = plus_matrix(graph);

    // Stages that sit on at least one zero-delay cycle, with the witness.
    let mut offenders: Vec<(StageId, Summary)> = Vec::new();
    for v in 0..n {
        if let Some(s) = plus[v * n + v]
            .elements()
            .iter()
            .find(|s| is_zero_delay(s))
        {
            offenders.push((StageId(v), *s));
        }
    }

    // One diagnostic per cycle, not per member: report a stage only if no
    // earlier-reported offender lies on a common cycle with it (mutual
    // non-empty Ψ⁺ paths).
    let mut reported: Vec<StageId> = Vec::new();
    for &(v, summary) in &offenders {
        let duplicate = reported.iter().any(|&r| {
            !plus[r.0 * n + v.0].is_empty() && !plus[v.0 * n + r.0].is_empty()
        });
        if duplicate {
            continue;
        }
        reported.push(v);
        let members: Vec<&str> = offenders
            .iter()
            .filter(|(u, _)| {
                *u == v || (!plus[v.0 * n + u.0].is_empty() && !plus[u.0 * n + v.0].is_empty())
            })
            .map(|(u, _)| graph.stage_name(*u))
            .collect();
        let witness = zero_delay_witness(&summary);
        out.push(Diagnostic {
            code: Code::ZeroDelayCycle,
            severity: Severity::Error,
            locus: Locus::stage(graph, v),
            message: format!(
                "cycle through {} has a path summary that does not strictly \
                 advance any timestamp coordinate; a record at {witness:?} can \
                 circulate forever and the frontier never passes it",
                join_names(&members),
            ),
            suggestion: "route the cycle through the feedback stage of a loop \
                         context so every trip increments a loop counter \
                         (§2.1); if the cycle is intentional, gate it behind \
                         AnalysisConfig::allow(Code::ZeroDelayCycle)"
                .to_string(),
        });
    }
}

fn join_names(names: &[&str]) -> String {
    const SHOWN: usize = 4;
    let mut quoted: Vec<String> = names.iter().take(SHOWN).map(|n| format!("'{n}'")).collect();
    if names.len() > SHOWN {
        quoted.push(format!("… ({} stages total)", names.len()));
    }
    quoted.join(", ")
}

// ---------------------------------------------------------------------------
// NA0002: dead vertex (§2.1)
// ---------------------------------------------------------------------------

fn dead_vertices(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    let n = graph.stages().len();

    // Roots: externally fed stages. Sinks: stages with no output ports
    // (probes, captures, subscriptions — the graph's observation points).
    let roots: Vec<usize> = graph
        .stages()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == StageKind::Input || s.inputs == 0)
        .map(|(i, _)| i)
        .collect();
    let sinks: Vec<usize> = graph
        .stages()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.outputs == 0)
        .map(|(i, _)| i)
        .collect();

    let forward = reach(graph, &roots, false);
    for (v, reached) in forward.iter().enumerate() {
        if !reached {
            out.push(Diagnostic {
                code: Code::DeadVertex,
                severity: Severity::Warning,
                locus: Locus::stage(graph, StageId(v)),
                message: format!(
                    "stage '{}' is unreachable from any input stage; it can \
                     never receive a record or a notification",
                    graph.stage_name(StageId(v)),
                ),
                suggestion: "connect the stage (transitively) to an input, or \
                             remove it from the dataflow"
                    .to_string(),
            });
        }
    }

    // Only meaningful when the graph observes anything at all.
    if sinks.is_empty() {
        return;
    }
    let backward = reach(graph, &sinks, true);
    for v in 0..n {
        if forward[v] && !backward[v] {
            out.push(Diagnostic {
                code: Code::DeadVertex,
                severity: Severity::Warning,
                locus: Locus::stage(graph, StageId(v)),
                message: format!(
                    "no path from stage '{}' reaches any output, probe, or \
                     capture; records it produces are silently dropped",
                    graph.stage_name(StageId(v)),
                ),
                suggestion: "connect the stage's output toward a probe or \
                             capture, or remove the stage"
                    .to_string(),
            });
        }
    }
}

/// Multi-source BFS over stage adjacency; `backward` follows connectors in
/// reverse.
fn reach(graph: &LogicalGraph, sources: &[usize], backward: bool) -> Vec<bool> {
    let n = graph.stages().len();
    let mut seen = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for &s in sources {
        if !seen[s] {
            seen[s] = true;
            queue.push(s);
        }
    }
    while let Some(v) = queue.pop() {
        for Connector { src, dst } in graph.connectors() {
            let (from, to) = if backward {
                (dst.0 .0, src.0 .0)
            } else {
                (src.0 .0, dst.0 .0)
            };
            if from == v && !seen[to] {
                seen[to] = true;
                queue.push(to);
            }
        }
    }
    seen
}

// ---------------------------------------------------------------------------
// NA0003: unreachable notification (§2.3)
// ---------------------------------------------------------------------------

fn unreachable_notifications(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    for (stage, time) in graph.notification_requests() {
        let expected = graph.stage_input_depth(*stage);
        if time.depth() != expected {
            out.push(Diagnostic {
                code: Code::UnreachableNotification,
                severity: Severity::Error,
                locus: Locus::stage(graph, *stage),
                message: format!(
                    "stage '{}' requests a notification at {time:?} (loop \
                     depth {}), but its input ports carry timestamps of loop \
                     depth {expected}; the requested time is outside the \
                     stage's time domain",
                    graph.stage_name(*stage),
                    time.depth(),
                ),
                suggestion: format!(
                    "request a time of loop depth {expected} (the depth of \
                     the stage's enclosing loop contexts)"
                ),
            });
            continue;
        }

        // Could any input still result in this (time, stage) pointstamp?
        // Inputs start delivering at epoch 0 with all loop counters zero.
        let reachable = graph.input_stages().any(|input| {
            let t0 = Timestamp::with_counters(
                0,
                &vec![0u64; graph.stage_input_depth(input)],
            );
            graph.summaries().could_result_in(
                &t0,
                Location::Vertex(input),
                time,
                Location::Vertex(*stage),
            )
        });
        if !reachable {
            out.push(Diagnostic {
                code: Code::UnreachableNotification,
                severity: Severity::Error,
                locus: Locus::stage(graph, *stage),
                message: format!(
                    "stage '{}' requests a notification at {time:?}, but no \
                     path summary from any input stage could result in that \
                     pointstamp (§2.3); the notification would fire \
                     immediately with no work preceding it",
                    graph.stage_name(*stage),
                ),
                suggestion: "request a time some input can still produce, or \
                             connect the stage to an input whose summaries \
                             reach the requested time"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// NA0004: ingress/egress imbalance (§2.1)
// ---------------------------------------------------------------------------

fn loop_imbalance(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    for (ctx_idx, _ctx) in graph.contexts().iter().enumerate().skip(1) {
        let members = |kind: StageKind| -> Vec<StageId> {
            graph
                .stages()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.kind == kind && s.context.0 == ctx_idx)
                .map(|(i, _)| StageId(i))
                .collect()
        };
        let ingresses = members(StageKind::Ingress);
        let egresses = members(StageKind::Egress);

        if !ingresses.is_empty() && egresses.is_empty() {
            out.push(Diagnostic {
                code: Code::LoopImbalance,
                severity: Severity::Error,
                locus: Locus::stage(graph, ingresses[0]),
                message: format!(
                    "loop context #{ctx_idx} is entered through {} but has no \
                     egress stage; records that enter can never leave and \
                     downstream frontiers never advance past the loop",
                    join_names(
                        &ingresses
                            .iter()
                            .map(|&i| graph.stage_name(i))
                            .collect::<Vec<_>>(),
                    ),
                ),
                suggestion: "add a matching leave()/egress for the context, \
                             or drop the enter() if the loop is unused"
                    .to_string(),
            });
            continue;
        }
        if ingresses.is_empty() && !egresses.is_empty() {
            out.push(Diagnostic {
                code: Code::LoopImbalance,
                severity: Severity::Warning,
                locus: Locus::stage(graph, egresses[0]),
                message: format!(
                    "loop context #{ctx_idx} has egress stage {} but no \
                     ingress; nothing can ever enter the context",
                    join_names(
                        &egresses
                            .iter()
                            .map(|&e| graph.stage_name(e))
                            .collect::<Vec<_>>(),
                    ),
                ),
                suggestion: "add a matching enter()/ingress for the context, \
                             or remove the egress"
                    .to_string(),
            });
            continue;
        }

        // Path-level: every entry point must be able to reach some exit of
        // the same context, else data entering there is trapped.
        for &ingress in &ingresses {
            let escapes = egresses.iter().any(|&egress| {
                !graph
                    .summaries()
                    .between(Location::Vertex(ingress), Location::Vertex(egress))
                    .is_empty()
            });
            if !escapes {
                out.push(Diagnostic {
                    code: Code::LoopImbalance,
                    severity: Severity::Warning,
                    locus: Locus::stage(graph, ingress),
                    message: format!(
                        "records entering loop context #{ctx_idx} through \
                         '{}' cannot reach any of its egress stages; they \
                         are trapped in the loop",
                        graph.stage_name(ingress),
                    ),
                    suggestion: "connect the entered stream (transitively) to \
                                 the stream passed to leave()"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NA0005: re-entrancy hazard (§2.2/§3.2)
// ---------------------------------------------------------------------------

fn reentrancy_hazards(graph: &LogicalGraph, config: &AnalysisConfig, out: &mut Vec<Diagnostic>) {
    let n = graph.stages().len();

    // Pipeline-only stage adjacency: these deliveries stay on the producing
    // worker, so a short cycle re-enters the same operator while an earlier
    // invocation may still be on the stack (or its state mid-update).
    let local_arcs: Vec<(usize, usize)> = graph
        .connectors()
        .iter()
        .enumerate()
        .filter(|(ci, _)| graph.connector_pact(ConnectorId(*ci)) == PactKind::Pipeline)
        .map(|(_, c)| (c.src.0 .0, c.dst.0 .0))
        .collect();

    // Shortest local cycle through each stage, by BFS.
    let mut flagged: Vec<(usize, usize)> = Vec::new(); // (stage, cycle length)
    for v in 0..n {
        if let Some(len) = shortest_cycle(n, &local_arcs, v) {
            if len < config.reentrancy_bound {
                flagged.push((v, len));
            }
        }
    }

    // Report each cycle once, at its lowest-numbered member.
    let mut reported: Vec<usize> = Vec::new();
    for &(v, len) in &flagged {
        let duplicate = reported.iter().any(|&r| {
            local_reachable(n, &local_arcs, r, v) && local_reachable(n, &local_arcs, v, r)
        });
        if duplicate {
            continue;
        }
        reported.push(v);
        out.push(Diagnostic {
            code: Code::ReentrancyHazard,
            severity: Severity::Warning,
            locus: Locus::stage(graph, StageId(v)),
            message: format!(
                "stage '{}' sits on an all-local (pipeline) delivery cycle of \
                 length {len}, below the configured re-entrancy bound of {}; \
                 its handler can be re-entered before a prior invocation's \
                 effects are visible",
                graph.stage_name(StageId(v)),
                config.reentrancy_bound,
            ),
            suggestion: "break the cycle with an exchange contract or route \
                         it through a feedback stage; or raise/lower the \
                         bound with AnalysisConfig::with_reentrancy_bound"
                .to_string(),
        });
    }
}

/// Length (in arcs) of the shortest cycle through `v`, if any.
fn shortest_cycle(n: usize, arcs: &[(usize, usize)], v: usize) -> Option<usize> {
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    // Start from v's successors at distance 1, looking to return to v.
    for &(a, b) in arcs {
        if a == v {
            if b == v {
                return Some(1);
            }
            if dist[b] == usize::MAX {
                dist[b] = 1;
                queue.push_back(b);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        for &(a, b) in arcs {
            if a != u {
                continue;
            }
            if b == v {
                return Some(dist[u] + 1);
            }
            if dist[b] == usize::MAX {
                dist[b] = dist[u] + 1;
                queue.push_back(b);
            }
        }
    }
    None
}

/// Whether `to` is reachable from `from` over the given arcs.
fn local_reachable(n: usize, arcs: &[(usize, usize)], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = vec![from];
    while let Some(u) = queue.pop() {
        for &(a, b) in arcs {
            if a == u && !seen[b] {
                if b == to {
                    return true;
                }
                seen[b] = true;
                queue.push(b);
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// NA0006: exchange-contract violation (§4.2)
// ---------------------------------------------------------------------------

/// Greatest-fixpoint "worker-invariant placement" status per stage:
/// records at a partition-aligned stage sit on a worker determined by
/// the data (or on every worker), not by which worker happened to
/// produce them. Exchange and broadcast connectors (re-)establish
/// alignment; pipeline connectors inherit the source's status; input
/// stages are externally fed, i.e. worker-variant.
fn partition_alignment(graph: &LogicalGraph) -> Vec<bool> {
    let n = graph.stages().len();
    let mut aligned = vec![true; n];
    for (i, s) in graph.stages().iter().enumerate() {
        if s.kind == StageKind::Input || s.inputs == 0 {
            aligned[i] = false;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if !aligned[v] || graph.stages()[v].kind == StageKind::Input {
                continue;
            }
            let ok = incoming(graph, v).all(|(ci, c)| match graph.connector_pact(ci) {
                PactKind::Exchange | PactKind::Broadcast => true,
                PactKind::Pipeline => aligned[c.src.0 .0],
            });
            if !ok {
                aligned[v] = false;
                changed = true;
            }
        }
    }
    aligned
}

fn exchange_contract(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    let n = graph.stages().len();
    let aligned = partition_alignment(graph);

    // Violation: a stage that keys one input by exchange while another
    // input arrives pipelined from a worker-variant source. The exchanged
    // records land on the key's worker; the pipelined records stay wherever
    // they were produced — so whether the two meet depends on the worker
    // count and placement, not on the data.
    for v in 0..n {
        let has_exchange = incoming(graph, v)
            .any(|(ci, _)| graph.connector_pact(ci) == PactKind::Exchange);
        if !has_exchange {
            continue;
        }
        for (ci, c) in incoming(graph, v) {
            if graph.connector_pact(ci) == PactKind::Pipeline && !aligned[c.src.0 .0] {
                out.push(Diagnostic {
                    code: Code::ExchangeContract,
                    severity: Severity::Error,
                    locus: Locus::connector(graph, ci),
                    message: format!(
                        "stage '{}' keys input(s) by an exchange contract, \
                         but input port {} arrives pipelined from '{}' whose \
                         placement is worker-variant; which records meet \
                         depends on worker placement, not on the data",
                        graph.stage_name(c.dst.0),
                        c.dst.1,
                        graph.stage_name(c.src.0),
                    ),
                    suggestion: "exchange (or broadcast) this input by the \
                                 same key as the other inputs, so co-located \
                                 records are determined by the data"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NA0006 (rescale certification): stateful stages must be migratable
// ---------------------------------------------------------------------------

/// Certifies the graph *rescale-safe* (enabled by
/// [`AnalysisConfig::rescale_contracts`]): an elastic rescale snapshots
/// every stage's cross-epoch state at an epoch fence and re-partitions it
/// by key onto a different worker set. That is only meaning-preserving
/// when (a) the state is registered *keyed* — opaque blobs cannot be
/// split across a new partition count — and (b) the stage's placement is
/// worker-invariant, so the records a key's state summarizes are exactly
/// the records the exchange contract routes to that key's worker under
/// *any* worker count.
fn rescale_contracts(graph: &LogicalGraph, out: &mut Vec<Diagnostic>) {
    let aligned = partition_alignment(graph);
    for &(stage, keyed) in graph.stateful_stages() {
        if !keyed {
            out.push(Diagnostic {
                code: Code::ExchangeContract,
                severity: Severity::Error,
                locus: Locus::stage(graph, stage),
                message: format!(
                    "stage '{}' registers opaque (non-keyed) cross-epoch state; \
                     an elastic rescale cannot re-partition it onto a different \
                     worker set",
                    graph.stage_name(stage),
                ),
                suggestion: "register the state with register_keyed_state, \
                             routing by the same key as the stage's exchange \
                             contract; or run with a fixed worker set"
                    .to_string(),
            });
        } else if !aligned[stage.0] {
            out.push(Diagnostic {
                code: Code::ExchangeContract,
                severity: Severity::Error,
                locus: Locus::stage(graph, stage),
                message: format!(
                    "stage '{}' registers keyed state but its placement is \
                     worker-variant; re-partitioning that state by key would \
                     move records the exchange contract never routed by that \
                     key",
                    graph.stage_name(stage),
                ),
                suggestion: "feed every input of this stage through an \
                             exchange (or broadcast) contract so its placement \
                             is determined by the data"
                    .to_string(),
            });
        }
    }
}

/// The incoming connectors of a stage.
fn incoming(
    graph: &LogicalGraph,
    stage: usize,
) -> impl Iterator<Item = (ConnectorId, &Connector)> {
    graph
        .connectors()
        .iter()
        .enumerate()
        .filter(move |(_, c)| c.dst.0 .0 == stage)
        .map(|(i, c)| (ConnectorId(i), c))
}
