//! Path summaries (§2.3).
//!
//! A path through a timely dataflow graph transforms timestamps as it
//! crosses ingress (push a zero counter), egress (pop), and feedback
//! (increment the top counter) vertices. Any such composite reduces to a
//! canonical form: *keep* a prefix of the original counters, *increment*
//! the last kept counter, then *push* a stack of constants:
//!
//! ```text
//! (e, ⟨c₁ … c_d⟩)  ↦  (e, ⟨c₁ … c_{keep} + inc, p₁ … p_m⟩)
//! ```
//!
//! The could-result-in relation asks whether *some* path summary maps one
//! pointstamp at or before another, so for each location pair we keep an
//! [`Antichain`](crate::order::Antichain) of minimal summaries. Summaries
//! with equal `keep` are totally ordered (lexicographically by
//! `(inc, push)`); summaries with different `keep` are treated as
//! incomparable, which may retain a dominated summary but never changes
//! the ∃-summary test — a sound, conservative choice.

use crate::order::PartialOrder;
use crate::time::{CounterStack, Timestamp, MAX_LOOP_DEPTH};

/// The canonical summary of a path between two locations.
///
/// `keep` counts how many of the source timestamp's loop counters survive;
/// `inc` is added to the last surviving counter; `push` is appended. The
/// destination depth is always `keep + push.len()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Summary {
    keep: u8,
    inc: u64,
    push: CounterStack,
}

impl Summary {
    /// The identity summary at loop depth `depth`.
    pub fn identity(depth: usize) -> Self {
        Summary {
            keep: depth as u8,
            inc: 0,
            push: CounterStack::EMPTY,
        }
    }

    /// The summary of an ingress vertex whose input sits at `depth`.
    pub fn ingress(depth: usize) -> Self {
        assert!(
            depth < MAX_LOOP_DEPTH,
            "ingress would exceed MAX_LOOP_DEPTH"
        );
        Summary {
            keep: depth as u8,
            inc: 0,
            push: CounterStack::EMPTY.pushed(0),
        }
    }

    /// The summary of an egress vertex whose input sits at `depth ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero: nothing encloses the streaming context.
    pub fn egress(depth: usize) -> Self {
        assert!(depth >= 1, "egress from the top-level streaming context");
        Summary {
            keep: (depth - 1) as u8,
            inc: 0,
            push: CounterStack::EMPTY,
        }
    }

    /// The summary of a feedback vertex at `depth ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero: feedback requires a loop context.
    pub fn feedback(depth: usize) -> Self {
        assert!(depth >= 1, "feedback outside any loop context");
        Summary {
            keep: depth as u8,
            inc: 1,
            push: CounterStack::EMPTY,
        }
    }

    /// Number of source counters that survive.
    pub fn keep(&self) -> usize {
        usize::from(self.keep)
    }

    /// Increment applied to the last surviving counter.
    pub fn inc(&self) -> u64 {
        self.inc
    }

    /// Constants appended after the surviving counters.
    pub fn push(&self) -> &[u64] {
        self.push.as_slice()
    }

    /// The destination loop depth of timestamps this summary produces.
    pub fn target_depth(&self) -> usize {
        self.keep() + self.push.len()
    }

    /// Whether this summary leaves timestamps unchanged for inputs of
    /// depth `depth`.
    pub fn is_identity_at(&self, depth: usize) -> bool {
        self.keep() == depth && self.inc == 0 && self.push.is_empty()
    }

    /// Applies the summary to a timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the timestamp is shallower than `keep` — summaries are
    /// only ever applied to timestamps at their source location, whose
    /// depth the graph fixes.
    pub fn apply(&self, time: &Timestamp) -> Timestamp {
        let keep = self.keep();
        assert!(
            time.depth() >= keep,
            "summary {self:?} applied to too-shallow timestamp {time:?}"
        );
        let mut counters = CounterStack::from_slice(&time.counters.as_slice()[..keep]);
        if self.inc > 0 {
            counters = counters
                .incremented(self.inc)
                .expect("inc > 0 implies keep > 0 in valid graphs");
        }
        for &p in self.push.as_slice() {
            counters = counters.pushed(p);
        }
        Timestamp {
            epoch: time.epoch,
            counters,
        }
    }

    /// Composes two summaries: `other.compose_after(self)` describes first
    /// traversing `self`'s path, then `other`'s.
    #[must_use]
    pub fn then(&self, other: &Summary) -> Summary {
        let k1 = self.keep();
        let k2 = other.keep();
        if k2 <= k1 {
            // `other` keeps only original counters (possibly fewer).
            let inc = if k2 == k1 {
                self.inc + other.inc
            } else {
                other.inc
            };
            Summary {
                keep: k2 as u8,
                inc,
                push: other.push,
            }
        } else {
            // `other` keeps all of `self`'s surviving counters plus a
            // prefix of `self`'s pushed constants.
            let taken = k2 - k1;
            assert!(
                taken <= self.push.len(),
                "composition deeper than intermediate location: {self:?} then {other:?}"
            );
            let mut push = CounterStack::EMPTY;
            for (i, &p) in self.push.as_slice()[..taken].iter().enumerate() {
                let p = if i == taken - 1 { p + other.inc } else { p };
                push = push.pushed(p);
            }
            for &p in other.push.as_slice() {
                push = push.pushed(p);
            }
            Summary {
                keep: self.keep,
                inc: self.inc,
                push,
            }
        }
    }
}

impl PartialOrder for Summary {
    /// Domination test: `s₁ ≤ s₂` iff `s₁.apply(t) ≤ s₂.apply(t)` for every
    /// timestamp `t`. With equal `keep` this reduces to a lexicographic
    /// comparison of `(inc, push)`; across different `keep` values the test
    /// conservatively reports incomparable (see module docs).
    fn less_equal(&self, other: &Self) -> bool {
        self.keep == other.keep
            && (self.inc, self.push.as_slice()) <= (other.inc, other.push.as_slice())
    }
}

impl std::fmt::Debug for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Summary(keep {}, +{}, push {:?})",
            self.keep,
            self.inc,
            self.push.as_slice()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(epoch: u64, counters: &[u64]) -> Timestamp {
        Timestamp::with_counters(epoch, counters)
    }

    #[test]
    fn system_vertex_summaries_match_the_paper_table() {
        let t = ts(3, &[7, 2]);
        assert_eq!(Summary::ingress(2).apply(&t), ts(3, &[7, 2, 0]));
        assert_eq!(Summary::egress(2).apply(&t), ts(3, &[7]));
        assert_eq!(Summary::feedback(2).apply(&t), ts(3, &[7, 3]));
        assert_eq!(Summary::identity(2).apply(&t), t);
    }

    #[test]
    fn identity_recognized() {
        assert!(Summary::identity(1).is_identity_at(1));
        assert!(!Summary::identity(1).is_identity_at(2));
        assert!(!Summary::feedback(1).is_identity_at(1));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let t = ts(1, &[4]);
        let cases = [
            (Summary::ingress(1), Summary::feedback(2)),
            (Summary::ingress(1), Summary::egress(2)),
            (Summary::feedback(1), Summary::feedback(1)),
            (Summary::egress(1), Summary::ingress(0)),
            (Summary::feedback(1), Summary::ingress(1)),
        ];
        for (a, b) in cases {
            let composed = a.then(&b);
            assert_eq!(
                composed.apply(&t),
                b.apply(&a.apply(&t)),
                "compose {a:?} then {b:?}"
            );
        }
    }

    #[test]
    fn exit_and_reenter_via_outer_feedback() {
        // A cycle that leaves an inner loop, takes the outer feedback, and
        // re-enters: (e, c₁, c₂) → (e, c₁ + 1, 0).
        let s = Summary::egress(2)
            .then(&Summary::feedback(1))
            .then(&Summary::ingress(1));
        assert_eq!(s.apply(&ts(0, &[3, 9])), ts(0, &[4, 0]));
        assert_eq!(s.keep(), 1);
        assert_eq!(s.inc(), 1);
        assert_eq!(s.push(), &[0]);
    }

    #[test]
    fn same_keep_summaries_totally_ordered() {
        let once = Summary::feedback(1);
        let twice = once.then(&once);
        assert!(once.less_equal(&twice));
        assert!(!twice.less_equal(&once));
        assert!(once.less_than(&twice));
        assert!(once.less_equal(&once));
    }

    #[test]
    fn different_keep_summaries_incomparable() {
        let inner_cycle = Summary::feedback(2);
        let outer_cycle = Summary::egress(2)
            .then(&Summary::feedback(1))
            .then(&Summary::ingress(1));
        assert!(!inner_cycle.less_equal(&outer_cycle));
        assert!(!outer_cycle.less_equal(&inner_cycle));
    }

    #[test]
    fn push_constants_compare_lexicographically() {
        // Going around an inner loop before stabilizing pushes a larger
        // constant; the plain entry dominates it.
        let enter = Summary::ingress(1);
        let enter_then_spin = enter.then(&Summary::feedback(2));
        assert_eq!(enter_then_spin.push(), &[1]);
        assert!(enter.less_equal(&enter_then_spin));
        assert!(!enter_then_spin.less_equal(&enter));
    }

    #[test]
    fn antichain_of_summaries_discards_dominated_cycles() {
        use crate::order::Antichain;
        let mut a = Antichain::new();
        let fb = Summary::feedback(1);
        assert!(a.insert(Summary::identity(1)));
        assert!(!a.insert(fb), "one trip around the loop is dominated");
        assert!(!a.insert(fb.then(&fb)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "too-shallow")]
    fn apply_rejects_shallow_timestamps() {
        // egress(2) keeps one counter; a depth-0 timestamp cannot supply it.
        let _ = Summary::egress(2).apply(&ts(0, &[]));
    }

    #[test]
    fn target_depth_is_consistent() {
        assert_eq!(Summary::ingress(1).target_depth(), 2);
        assert_eq!(Summary::egress(2).target_depth(), 1);
        assert_eq!(Summary::feedback(3).target_depth(), 3);
    }
}
