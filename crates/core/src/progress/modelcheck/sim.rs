//! The virtual cluster: N protocol cores over FIFO links, stepped one
//! event at a time, with safety/liveness/FIFO oracles checked as it goes.
//!
//! The cluster mirrors the runtime's shape exactly — per-worker
//! [`WorkerCore`]s, per-process [`GroupCore`] accumulators, an optional
//! central [`GroupCore`] — but replaces the fabric with explicit
//! [`Event`]s: `Act(w)` (worker `w` performs one legal §2.3 step and
//! flushes its journal into the protocol), `Deliver(src, dst)` (the
//! oldest batch on a link reaches its endpoint's router), and `Apply(w)`
//! (worker `w` drains one routed batch into its local table). Which event
//! fires next is the *schedule* — the driver's choice — so every legal
//! interleaving of broadcast, accumulation, and application is reachable.
//!
//! Worker behaviour is schedule-independent by construction: each worker
//! draws its choices from a private [`Xorshift`] stream, so the `k`-th
//! `Act(w)` does the same thing in every schedule of the same seed. That
//! is what makes traces replayable and shrinkable.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use naiad_rng::Xorshift;

use crate::graph::{ConnectorId, Location, LogicalGraph, StageId, StageKind};
use crate::progress::protocol::{CENTRAL_SENDER, PROC_ACC_SENDER_BASE};
use crate::progress::tracker::PointstampTable;
use crate::progress::{
    FifoViolation, GroupCore, Pointstamp, ProgressBatch, ProgressMode, ProgressUpdate, WorkerCore,
};
use crate::time::Timestamp;

use super::topology::Topology;

/// The single dataflow id every model run uses.
const DATAFLOW: u32 = 0;

/// Hard bound on events per schedule; hitting it is reported as a
/// liveness violation (a correct configuration drains far earlier).
pub const MAX_STEPS: usize = 100_000;

/// FNV-1a, used for trace hashing and for replay-stable chaos decisions
/// (never `DefaultHasher`, whose output may change across releases).
pub fn fnv64(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A fabric endpoint in the virtual cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EpId {
    /// Process `p`'s endpoint (serving its workers and accumulator).
    Proc(usize),
    /// The central accumulator's extra endpoint.
    Central,
}

impl std::fmt::Display for EpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpId::Proc(p) => write!(f, "p{p}"),
            EpId::Central => write!(f, "C"),
        }
    }
}

/// One step of a schedule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Event {
    /// Worker `w` performs one legal protocol action and flushes it.
    Act(usize),
    /// The oldest batch on link `src → dst` reaches `dst`'s router.
    Deliver(EpId, EpId),
    /// Worker `w` applies the oldest batch routed to it.
    Apply(usize),
}

impl Event {
    /// Encodes the event as hash words (for trace hashing).
    fn words(&self) -> [u64; 3] {
        fn ep(e: EpId) -> u64 {
            match e {
                EpId::Proc(p) => p as u64,
                EpId::Central => u64::MAX,
            }
        }
        match *self {
            Event::Act(w) => [0, w as u64, 0],
            Event::Deliver(s, d) => [1, ep(s), ep(d)],
            Event::Apply(w) => [2, w as u64, 0],
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Act(w) => write!(f, "A{w}"),
            Event::Deliver(s, d) => write!(f, "D({s}->{d})"),
            Event::Apply(w) => write!(f, "Y{w}"),
        }
    }
}

/// Hashes a trace for distinct-interleaving counting.
pub fn trace_hash(trace: &[Event]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace {
        h = fnv64(&[h, ev.words()[0], ev.words()[1], ev.words()[2]]);
    }
    h
}

/// Fault injection for oracle validation: each knob plants a specific
/// protocol bug so the corresponding oracle can be shown to catch it.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Chaos {
    /// No injected faults; every oracle must stay silent.
    #[default]
    None,
    /// Links sometimes deliver the second-oldest batch first (decided by
    /// a replay-stable hash of the front batch's identity against the
    /// given per-mille rate). Breaks per-sender FIFO → the FIFO oracle
    /// (and possibly safety) must fire.
    ReorderLinks(u32),
    /// Workers flush a pointstamp's retirement *before* its consequences,
    /// in separate batches. Breaks §3.3's consequence-before-retirement
    /// atomicity → the safety oracle must fire.
    RetireBeforeConsequence,
    /// Links silently drop batches (decided by a replay-stable hash of
    /// the batch identity against the given per-mille rate). Counts never
    /// net out → the liveness (or safety) oracle must fire.
    DropBatch(u32),
    /// The data plane's credit returns are withheld entirely: every batch
    /// crossing a link is tallied as one that a credit-bound plane would
    /// have parked forever. Unlike the other knobs this one must be
    /// *invisible*: Progress traffic is exempt from credit-based flow
    /// control (bounding it would deadlock §3.3 — credit returns ride the
    /// control plane, which may itself be waiting on progress), so
    /// delivery proceeds untouched and **every oracle must stay silent**.
    /// The knob exists to lock that plane-exemption invariant: no code
    /// path from [`Cluster::enqueue`] to apply may consult a credit
    /// ledger.
    StarveCredits,
}

/// A model-checking configuration: one point of the
/// topology × mode × chaos matrix.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// The dataflow shape.
    pub topology: Topology,
    /// The accumulation policy under test.
    pub mode: ProgressMode,
    /// Virtual processes.
    pub processes: usize,
    /// Workers per virtual process.
    pub workers_per_process: usize,
    /// Epochs each worker advances through before closing its input.
    pub max_epochs: u64,
    /// Fresh input messages each worker introduces.
    pub messages_per_worker: usize,
    /// Cap on any loop counter a forwarded message may reach.
    pub loop_cap: u64,
    /// Fault injection.
    pub chaos: Chaos,
}

impl McConfig {
    /// The default small-but-nontrivial model: 2 processes × 2 workers,
    /// one epoch advance, two messages per worker, loop counters ≤ 2.
    pub fn new(topology: Topology, mode: ProgressMode) -> Self {
        McConfig {
            topology,
            mode,
            processes: 2,
            workers_per_process: 2,
            max_epochs: 1,
            messages_per_worker: 2,
            loop_cap: 2,
            chaos: Chaos::None,
        }
    }

    /// Total workers.
    pub fn total_workers(&self) -> usize {
        self.processes * self.workers_per_process
    }
}

/// What an oracle caught.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Worker `worker`'s local view believes nothing can reach `stamp`
    /// while `stamp` is outstanding in the omniscient reference.
    Safety { worker: usize, stamp: Pointstamp },
    /// Worker `worker` was handed out-of-order batches.
    Fifo { worker: usize, violation: FifoViolation },
    /// The schedule drained (or exceeded [`MAX_STEPS`]) without reaching
    /// global quiescence.
    Liveness { detail: String },
}

/// Coarse violation class, used to decide whether a shrunk trace still
/// reproduces "the same" failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// See [`Violation::Safety`].
    Safety,
    /// See [`Violation::Fifo`].
    Fifo,
    /// See [`Violation::Liveness`].
    Liveness,
}

impl Violation {
    /// This violation's class.
    pub fn kind(&self) -> ViolationKind {
        match self {
            Violation::Safety { .. } => ViolationKind::Safety,
            Violation::Fifo { .. } => ViolationKind::Fifo,
            Violation::Liveness { .. } => ViolationKind::Liveness,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Safety { worker, stamp } => write!(
                f,
                "safety: worker {worker} believes {:?} @ {:?} is complete while it is \
                 outstanding in the reference",
                stamp.time, stamp.location
            ),
            Violation::Fifo { worker, violation } => {
                write!(f, "fifo: worker {worker}: {violation}")
            }
            Violation::Liveness { detail } => write!(f, "liveness: {detail}"),
        }
    }
}

/// A violation plus the step (0-based index into the trace) at which the
/// oracle fired; `step == trace.len()` means it fired at quiescence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViolationReport {
    /// What was caught.
    pub violation: Violation,
    /// When it was caught.
    pub step: usize,
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}", self.step, self.violation)
    }
}

/// One legal worker step, drawn from the worker's private stream.
enum Choice {
    /// Open the next epoch on input `i`, retiring the current one.
    Advance(usize),
    /// Retire input `i`'s capability for good.
    Close(usize),
    /// Introduce a fresh message from input `i` at its current epoch.
    Emit(usize),
    /// Deliver held pointstamp `j`: consequences first, retirement last.
    Process(usize),
}

/// The schedule-independent obligations of one virtual worker: the
/// pointstamps it owns (and must eventually retire), its input epochs,
/// and its private choice stream.
struct Obligations {
    /// Messages/notifications this worker introduced and must retire.
    held: Vec<Pointstamp>,
    /// Per input stage: the currently open epoch, `None` once closed.
    inputs: Vec<(StageId, Option<u64>)>,
    /// Fresh messages this worker may still introduce.
    msgs_left: usize,
    /// Private choice stream (content depends only on this worker's own
    /// action count, never on the schedule).
    rng: Xorshift,
}

impl Obligations {
    fn new(graph: &LogicalGraph, seed: u64, worker: usize, messages: usize) -> Self {
        Obligations {
            held: Vec::new(),
            inputs: graph.input_stages().map(|s| (s, Some(0))).collect(),
            msgs_left: messages,
            rng: Xorshift::with_salt(seed, 0x57A2 + worker as u64),
        }
    }

    fn has_work(&self) -> bool {
        !self.held.is_empty() || self.inputs.iter().any(|(_, e)| e.is_some())
    }

    /// Performs one step, returning the journal flushes to hand to the
    /// protocol (one flush normally; two under
    /// [`Chaos::RetireBeforeConsequence`]).
    fn act(&mut self, graph: &LogicalGraph, cfg: &McConfig) -> Vec<Vec<ProgressUpdate>> {
        let mut options = Vec::new();
        for (i, (_, epoch)) in self.inputs.iter().enumerate() {
            if let Some(e) = epoch {
                if *e < cfg.max_epochs {
                    options.push(Choice::Advance(i));
                } else if self.msgs_left == 0 {
                    // The workload is budgeted: a worker introduces all of
                    // its messages before sealing its input, so every seed
                    // exercises message traffic (not just epoch bookkeeping).
                    options.push(Choice::Close(i));
                }
                if self.msgs_left > 0 {
                    options.push(Choice::Emit(i));
                }
            }
        }
        for j in 0..self.held.len() {
            options.push(Choice::Process(j));
        }
        debug_assert!(!options.is_empty(), "act called without work");
        let choice = &options[self.rng.below_usize(options.len())];
        match *choice {
            Choice::Advance(i) => {
                let (stage, epoch) = &mut self.inputs[i];
                let e = epoch.expect("advance offered only while open");
                *epoch = Some(e + 1);
                // +1 before −1: the local view's input frontier must never
                // transiently empty.
                vec![vec![
                    (Pointstamp::at_vertex(Timestamp::new(e + 1), *stage), 1),
                    (Pointstamp::at_vertex(Timestamp::new(e), *stage), -1),
                ]]
            }
            Choice::Close(i) => {
                let (stage, epoch) = &mut self.inputs[i];
                let e = epoch.take().expect("close offered only while open");
                vec![vec![(Pointstamp::at_vertex(Timestamp::new(e), *stage), -1)]]
            }
            Choice::Emit(i) => {
                let (stage, epoch) = self.inputs[i];
                let e = epoch.expect("emit offered only while open");
                self.msgs_left -= 1;
                let outs: Vec<ConnectorId> = graph.outgoing(stage).map(|(c, _)| c).collect();
                let c = outs[self.rng.below_usize(outs.len())];
                let stamp = Pointstamp::on_edge(Timestamp::new(e), c);
                self.held.push(stamp);
                vec![vec![(stamp, 1)]]
            }
            Choice::Process(j) => {
                let p = self.held.remove(j);
                let mut consequences = Vec::new();
                let stage = match p.location {
                    Location::Edge(c) => graph.connectors()[c.0].dst.0,
                    Location::Vertex(s) => s,
                };
                let kind = graph.stages()[stage.0].kind;
                let system = matches!(
                    kind,
                    StageKind::Ingress | StageKind::Egress | StageKind::Feedback
                );
                let next = graph.stage_summary(stage).apply(&p.time);
                let within_cap = next.counters.as_slice().iter().all(|&c| c <= cfg.loop_cap);
                // System stages always pass messages through (unless the
                // loop cap retires them); user stages forward by choice.
                let forward = if system { true } else { self.rng.chance(0.7) };
                let outs: Vec<ConnectorId> = graph.outgoing(stage).map(|(c, _)| c).collect();
                if forward && within_cap && !outs.is_empty() {
                    let c = outs[self.rng.below_usize(outs.len())];
                    let stamp = Pointstamp::on_edge(next, c);
                    self.held.push(stamp);
                    consequences.push((stamp, 1));
                }
                // Delivering a message at a user stage may request a
                // notification at the message's time.
                if matches!(p.location, Location::Edge(_))
                    && kind == StageKind::Regular
                    && self.rng.chance(0.25)
                {
                    let stamp = Pointstamp::at_vertex(p.time, stage);
                    self.held.push(stamp);
                    consequences.push((stamp, 1));
                }
                let retirement = (p, -1);
                if cfg.chaos == Chaos::RetireBeforeConsequence {
                    // The planted bug: retirement leaves in its own batch,
                    // before the consequences.
                    if consequences.is_empty() {
                        vec![vec![retirement]]
                    } else {
                        vec![vec![retirement], consequences]
                    }
                } else {
                    consequences.push(retirement);
                    vec![consequences]
                }
            }
        }
    }
}

/// One virtual worker: protocol core + obligations + routed-batch queue.
struct VirtualWorker {
    core: WorkerCore,
    obligations: Obligations,
    /// Batches the router has handed this worker, not yet applied.
    pending: VecDeque<ProgressBatch>,
    /// Cumulative applied deltas, for the policy-equivalence check.
    applied: HashMap<Pointstamp, i64>,
    /// Every update this worker journaled, in order. Schedule- and
    /// mode-independent by construction (worker choices depend only on
    /// the seed), which the policy-equivalence test asserts.
    journal: Vec<ProgressUpdate>,
}

/// The virtual cluster: the pure protocol cores of a full deployment,
/// wired over explicit FIFO links instead of the fabric.
pub struct Cluster {
    cfg: McConfig,
    graph: Arc<LogicalGraph>,
    workers: Vec<VirtualWorker>,
    /// Per-process accumulator cores (local modes only).
    accs: Vec<GroupCore>,
    /// The cluster-level accumulator core (global modes only).
    central: Option<GroupCore>,
    /// FIFO links between endpoints.
    links: BTreeMap<(EpId, EpId), VecDeque<ProgressBatch>>,
    /// The omniscient reference: every journal applied atomically the
    /// instant it is produced. Ground truth for "outstanding".
    reference: PointstampTable,
    seed: u64,
    /// Events executed so far.
    step: usize,
    /// Batches dropped by [`Chaos::DropBatch`].
    dropped: usize,
    /// Batches that crossed a link while [`Chaos::StarveCredits`] held
    /// the data plane's credits at zero — delivered anyway, because
    /// progress traffic never consults the credit ledger.
    starved: usize,
}

impl Cluster {
    /// A fresh cluster for one seed of one configuration.
    pub fn new(cfg: &McConfig, seed: u64) -> Self {
        let graph = cfg.topology.graph();
        let total = cfg.total_workers();
        let workers = (0..total)
            .map(|w| VirtualWorker {
                core: WorkerCore::new(graph.clone(), DATAFLOW, w as u32, total),
                obligations: Obligations::new(&graph, seed, w, cfg.messages_per_worker),
                pending: VecDeque::new(),
                applied: HashMap::new(),
                journal: Vec::new(),
            })
            .collect();
        let accs = if cfg.mode.local() {
            (0..cfg.processes)
                .map(|p| {
                    let mut core = GroupCore::new(
                        PROC_ACC_SENDER_BASE + p as u32,
                        cfg.mode == ProgressMode::Local,
                        total,
                    );
                    core.register(DATAFLOW, graph.clone());
                    core
                })
                .collect()
        } else {
            Vec::new()
        };
        let central = cfg.mode.global().then(|| {
            let mut core = GroupCore::new(CENTRAL_SENDER, true, total);
            core.register(DATAFLOW, graph.clone());
            core
        });
        Cluster {
            graph: graph.clone(),
            workers,
            accs,
            central,
            links: BTreeMap::new(),
            reference: PointstampTable::initialized(graph, total),
            cfg: cfg.clone(),
            seed,
            step: 0,
            dropped: 0,
            starved: 0,
        }
    }

    fn process_of(&self, worker: usize) -> usize {
        worker / self.cfg.workers_per_process
    }

    /// The events currently legal, in canonical order (acts, applies,
    /// deliveries by link key). The schedule picks among these.
    pub fn eligible(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for (w, vw) in self.workers.iter().enumerate() {
            if vw.obligations.has_work() {
                out.push(Event::Act(w));
            }
        }
        for (w, vw) in self.workers.iter().enumerate() {
            if !vw.pending.is_empty() {
                out.push(Event::Apply(w));
            }
        }
        for (&(src, dst), q) in &self.links {
            if !q.is_empty() {
                out.push(Event::Deliver(src, dst));
            }
        }
        out
    }

    /// Whether `event` is currently legal (used by trace replay, which
    /// skips steps that shrinking made moot).
    pub fn is_eligible(&self, event: Event) -> bool {
        match event {
            Event::Act(w) => self
                .workers
                .get(w)
                .is_some_and(|vw| vw.obligations.has_work()),
            Event::Apply(w) => self.workers.get(w).is_some_and(|vw| !vw.pending.is_empty()),
            Event::Deliver(src, dst) => self
                .links
                .get(&(src, dst))
                .is_some_and(|q| !q.is_empty()),
        }
    }

    fn enqueue(&mut self, src: EpId, dst: EpId, batch: ProgressBatch) {
        if self.cfg.chaos == Chaos::StarveCredits {
            // Tally, never block: progress batches cross links regardless
            // of data-plane credit — the exemption under test.
            self.starved += 1;
        }
        if let Chaos::DropBatch(per_mille) = self.cfg.chaos {
            // Replay-stable: the decision depends only on the batch's
            // identity and the seed, never on the schedule.
            let h = fnv64(&[
                self.seed,
                0xD209,
                u64::from(batch.sender),
                batch.seq,
                match dst {
                    EpId::Proc(p) => p as u64,
                    EpId::Central => u64::MAX,
                },
            ]);
            if h % 1000 < u64::from(per_mille) {
                self.dropped += 1;
                return;
            }
        }
        self.links.entry((src, dst)).or_default().push_back(batch);
    }

    /// Routes a process accumulator's flush according to the mode.
    fn route_acc_flush(&mut self, process: usize, batch: ProgressBatch) {
        match self.cfg.mode {
            ProgressMode::Local => {
                for q in 0..self.cfg.processes {
                    self.enqueue(EpId::Proc(process), EpId::Proc(q), batch.clone());
                }
            }
            ProgressMode::LocalGlobal => {
                self.enqueue(EpId::Proc(process), EpId::Central, batch);
            }
            _ => unreachable!("process accumulators exist only in local modes"),
        }
    }

    /// Executes one event; `Some` if an oracle fired.
    pub fn execute(&mut self, event: Event) -> Option<ViolationReport> {
        debug_assert!(self.is_eligible(event), "schedule picked {event}");
        let violation = match event {
            Event::Act(w) => self.do_act(w),
            Event::Deliver(src, dst) => self.do_deliver(src, dst),
            Event::Apply(w) => self.do_apply(w),
        };
        let report = violation.map(|v| ViolationReport {
            violation: v,
            step: self.step,
        });
        self.step += 1;
        report
    }

    fn do_act(&mut self, w: usize) -> Option<Violation> {
        let flushes = {
            let vw = &mut self.workers[w];
            vw.obligations.act(&self.graph, &self.cfg)
        };
        // Ground truth first: the reference sees each flush atomically.
        for flush in &flushes {
            self.reference.apply(flush.iter().copied());
            self.workers[w].journal.extend_from_slice(flush);
        }
        let created: Vec<Pointstamp> = flushes
            .iter()
            .flatten()
            .filter(|(_, d)| *d > 0)
            .map(|(p, _)| *p)
            .collect();
        // Hand the flushes to the protocol, per the mode under test.
        let process = self.process_of(w);
        for flush in flushes {
            match self.cfg.mode {
                ProgressMode::Broadcast => {
                    // The naive protocol: every update is its own batch,
                    // broadcast to every process (our own included).
                    for update in flush {
                        let batch = self.workers[w].core.emit(vec![update]);
                        for q in 0..self.cfg.processes {
                            self.enqueue(EpId::Proc(process), EpId::Proc(q), batch.clone());
                        }
                    }
                }
                ProgressMode::Global => {
                    let batch = self.workers[w].core.emit(flush);
                    self.enqueue(EpId::Proc(process), EpId::Central, batch);
                }
                ProgressMode::Local | ProgressMode::LocalGlobal => {
                    if let Some(batch) = self.accs[process].deposit(DATAFLOW, flush) {
                        self.route_acc_flush(process, batch);
                    }
                }
            }
        }
        // Safety oracle, creation side: a newly outstanding pointstamp
        // must not already be believed complete anywhere.
        self.safety_check_stamps(&created)
    }

    fn do_deliver(&mut self, src: EpId, dst: EpId) -> Option<Violation> {
        let batch = {
            let queue = self
                .links
                .get_mut(&(src, dst))
                .expect("eligibility checked");
            let mut index = 0;
            if let Chaos::ReorderLinks(per_mille) = self.cfg.chaos {
                if queue.len() >= 2 {
                    let front = &queue[0];
                    let h = fnv64(&[self.seed, 0x2E02, u64::from(front.sender), front.seq]);
                    if h % 1000 < u64::from(per_mille) {
                        index = 1;
                    }
                }
            }
            queue.remove(index).expect("eligibility checked")
        };
        match dst {
            EpId::Central => {
                let central = self.central.as_mut().expect("central link implies mode");
                if let Some(out) = central.deposit(batch.dataflow, batch.updates) {
                    for q in 0..self.cfg.processes {
                        self.enqueue(EpId::Central, EpId::Proc(q), out.clone());
                    }
                }
                None
            }
            EpId::Proc(p) => {
                // The router fans the batch out to every local worker's
                // queue and tees it into the process accumulator — exactly
                // the runtime's `run_router`.
                let lo = p * self.cfg.workers_per_process;
                for w in lo..lo + self.cfg.workers_per_process {
                    self.workers[w].pending.push_back(batch.clone());
                }
                if self.cfg.mode.local() && batch.sender != self.accs[p].sender() {
                    if let Some(out) = self.accs[p].observe(DATAFLOW, &batch.updates) {
                        self.route_acc_flush(p, out);
                    }
                }
                None
            }
        }
    }

    fn do_apply(&mut self, w: usize) -> Option<Violation> {
        let batch = self.workers[w].pending.pop_front().expect("eligibility");
        let retired = batch.updates.iter().any(|(_, d)| *d < 0);
        for &(p, d) in &batch.updates {
            let e = self.workers[w].applied.entry(p).or_insert(0);
            *e += d;
            if *e == 0 {
                self.workers[w].applied.remove(&p);
            }
        }
        if let Err(violation) = self.workers[w].core.apply(&batch) {
            return Some(Violation::Fifo {
                worker: w,
                violation,
            });
        }
        // Safety oracle, retirement side: removing entries from `w`'s view
        // is the only way `w` can newly believe a pointstamp complete, so
        // re-check the reference frontier against `w`. Checking frontier
        // stamps only is exhaustive: `done_through` propagates down
        // could-result-in chains, so any violated stamp implicates a
        // violated frontier stamp.
        if retired {
            for stamp in self.reference.frontier() {
                if self.workers[w]
                    .core
                    .table()
                    .done_through(&stamp.time, stamp.location)
                {
                    return Some(Violation::Safety { worker: w, stamp });
                }
            }
        }
        None
    }

    /// Safety check for freshly created stamps against every worker.
    fn safety_check_stamps(&self, stamps: &[Pointstamp]) -> Option<Violation> {
        for &stamp in stamps {
            for (w, vw) in self.workers.iter().enumerate() {
                if vw.core.table().done_through(&stamp.time, stamp.location) {
                    return Some(Violation::Safety { worker: w, stamp });
                }
            }
        }
        None
    }

    /// The liveness oracle, run when no events remain: the computation
    /// has ended, so every view must agree it has ended.
    pub fn check_quiescent(&self) -> Option<ViolationReport> {
        debug_assert!(self.eligible().is_empty(), "quiescence check while live");
        let mut stuck = Vec::new();
        if !self.reference.is_empty() {
            stuck.push(format!(
                "reference still holds {} pointstamp entries",
                self.reference.active_count().max(1)
            ));
        }
        for (w, vw) in self.workers.iter().enumerate() {
            if !vw.core.table().is_empty() {
                stuck.push(format!("worker {w}'s view is non-empty"));
            }
        }
        for (p, acc) in self.accs.iter().enumerate() {
            if acc.has_buffered() {
                stuck.push(format!("process {p}'s accumulator still buffers updates"));
            }
        }
        if let Some(central) = &self.central {
            if central.has_buffered() {
                stuck.push("the central accumulator still buffers updates".to_string());
            }
        }
        if stuck.is_empty() {
            None
        } else {
            if self.dropped > 0 {
                stuck.push(format!("({} batches dropped by chaos)", self.dropped));
            }
            Some(ViolationReport {
                violation: Violation::Liveness {
                    detail: stuck.join("; "),
                },
                step: self.step,
            })
        }
    }

    /// Events executed so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Batches that crossed a link while [`Chaos::StarveCredits`] was
    /// withholding every data-plane credit (all were delivered anyway).
    pub fn starved(&self) -> usize {
        self.starved
    }

    /// Each worker's cumulative net applied deltas (zero entries elided):
    /// the quantity the accumulation policies must agree on.
    pub fn applied_deltas(&self) -> Vec<HashMap<Pointstamp, i64>> {
        self.workers.iter().map(|w| w.applied.clone()).collect()
    }

    /// Each worker's full journal, in emission order. Depends only on the
    /// seed — never on the schedule or the accumulation policy.
    pub fn journals(&self) -> Vec<Vec<ProgressUpdate>> {
        self.workers.iter().map(|w| w.journal.clone()).collect()
    }
}
