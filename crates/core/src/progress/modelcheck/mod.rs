//! Deterministic model-checker for the distributed progress protocol
//! (§3.3).
//!
//! The thread-based runtime only ever samples the interleavings the OS
//! scheduler happens to produce; this harness *enumerates* them. It
//! drives the pure protocol cores ([`crate::progress::protocol`]) of a
//! virtual cluster — N workers over P processes, per-process and central
//! accumulators per the [`ProgressMode`] — across seeded schedules of
//! three event types (worker actions, link deliveries, batch
//! applications), checking two oracles at every step:
//!
//! * **Safety** — no worker's local view may ever believe a pointstamp
//!   complete ([`done_through`](crate::progress::PointstampTable::done_through))
//!   while that pointstamp is
//!   outstanding in an omniscient reference tracker that sees every
//!   journal the instant it is produced. A violated view could deliver a
//!   notification early, which is the §2.3 correctness property.
//! * **Liveness** — once inputs close, every schedule drains to
//!   quiescence: all views empty, the reference empty, no accumulator
//!   holding buffered updates.
//!
//! Per-sender FIFO violations surface as a third, structural oracle.
//!
//! Failures are *replayable*: worker behaviour depends only on
//! `(seed, worker, action-index)` — never on the schedule — so a failing
//! trace (the event sequence) reproduces bit-identically via
//! [`replay`], and a greedy event-deletion shrinker ([`shrink`])
//! minimizes it first. [`Failure`]'s `Display` prints everything needed:
//! seed, schedule salt, configuration, and the minimized trace.
//!
//! ```
//! use naiad::progress::modelcheck::{explore, McConfig, Topology};
//! use naiad::progress::ProgressMode;
//!
//! let cfg = McConfig::new(Topology::Chain, ProgressMode::Local);
//! let report = explore(&cfg, 0xC0FFEE, 25);
//! assert!(report.failures.is_empty(), "{}", report.failures[0]);
//! assert!(report.distinct_interleavings > 0);
//! ```

mod sim;
mod topology;

pub use sim::{
    trace_hash, Chaos, Cluster, EpId, Event, McConfig, Violation, ViolationKind, ViolationReport,
    MAX_STEPS,
};
pub use topology::Topology;

use naiad_rng::Xorshift;

use std::collections::HashMap;
use std::collections::HashSet;

use super::{Pointstamp, ProgressMode};

/// The outcome of one scheduled run (or replay).
#[derive(Debug)]
pub struct RunOutcome {
    /// The events executed, in order.
    pub trace: Vec<Event>,
    /// What an oracle caught, if anything.
    pub violation: Option<ViolationReport>,
    /// Each worker's cumulative net applied deltas at the end of the run
    /// (the quantity all accumulation policies must agree on).
    pub applied: Vec<HashMap<Pointstamp, i64>>,
    /// Each worker's emitted-update journal, in emission order. Depends
    /// only on the seed, never on the schedule or accumulation policy —
    /// the policy-equivalence oracle compares these across modes.
    pub journals: Vec<Vec<super::ProgressUpdate>>,
}

impl RunOutcome {
    fn finish(cluster: &Cluster, trace: Vec<Event>, violation: Option<ViolationReport>) -> Self {
        RunOutcome {
            trace,
            violation,
            applied: cluster.applied_deltas(),
            journals: cluster.journals(),
        }
    }
}

/// Runs one schedule: events are picked uniformly among the eligible set
/// by `Xorshift::with_salt(seed, salt)`. Distinct salts give distinct
/// interleavings of the *same* worker behaviour (fixed by `seed`).
pub fn run_schedule(cfg: &McConfig, seed: u64, salt: u64) -> RunOutcome {
    let mut cluster = Cluster::new(cfg, seed);
    let mut rng = Xorshift::with_salt(seed, 0x5C4E_D000 ^ salt);
    let mut trace = Vec::new();
    loop {
        let eligible = cluster.eligible();
        if eligible.is_empty() {
            let violation = cluster.check_quiescent();
            return RunOutcome::finish(&cluster, trace, violation);
        }
        let event = eligible[rng.below_usize(eligible.len())];
        trace.push(event);
        let violation = cluster.execute(event).or_else(|| {
            (trace.len() >= MAX_STEPS).then(|| ViolationReport {
                violation: Violation::Liveness {
                    detail: format!("schedule exceeded {MAX_STEPS} steps without quiescing"),
                },
                step: trace.len(),
            })
        });
        if violation.is_some() {
            return RunOutcome::finish(&cluster, trace, violation);
        }
    }
}

/// Replays a trace against a fresh cluster: listed events run in order
/// (steps a shrink made ineligible are skipped), then the run drains
/// deterministically (always the first eligible event) so liveness is
/// still meaningfully evaluated on truncated traces. Fully deterministic
/// given `(cfg, seed, trace)`.
pub fn replay(cfg: &McConfig, seed: u64, trace: &[Event]) -> RunOutcome {
    let mut cluster = Cluster::new(cfg, seed);
    let mut executed = Vec::new();
    let run = |cluster: &mut Cluster, executed: &mut Vec<Event>, event| {
        executed.push(event);
        cluster.execute(event).or_else(|| {
            (executed.len() >= MAX_STEPS).then(|| ViolationReport {
                violation: Violation::Liveness {
                    detail: format!("replay exceeded {MAX_STEPS} steps without quiescing"),
                },
                step: executed.len(),
            })
        })
    };
    for &event in trace {
        if !cluster.is_eligible(event) {
            continue;
        }
        if let Some(violation) = run(&mut cluster, &mut executed, event) {
            return RunOutcome::finish(&cluster, executed, Some(violation));
        }
    }
    loop {
        let eligible = cluster.eligible();
        let Some(&event) = eligible.first() else {
            let violation = cluster.check_quiescent();
            return RunOutcome::finish(&cluster, executed, violation);
        };
        if let Some(violation) = run(&mut cluster, &mut executed, event) {
            return RunOutcome::finish(&cluster, executed, Some(violation));
        }
    }
}

/// Greedy event-deletion shrinking: repeatedly delete chunks (halving
/// from `len/2` down to single events) while the replay still reproduces
/// the same [`ViolationKind`]. Returns the minimized trace; replaying it
/// reproduces the violation bit-identically.
pub fn shrink(cfg: &McConfig, seed: u64, trace: &[Event]) -> Vec<Event> {
    let Some(target) = replay(cfg, seed, trace)
        .violation
        .map(|r| r.violation.kind())
    else {
        return trace.to_vec();
    };
    let reproduces = |candidate: &[Event]| {
        replay(cfg, seed, candidate)
            .violation
            .map(|r| r.violation.kind())
            == Some(target)
    };
    let mut current = trace.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if reproduces(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-test the same start: the window now holds new events.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            return current;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// A failing schedule, minimized and ready to reproduce.
#[derive(Debug)]
pub struct Failure {
    /// The configuration under which it failed.
    pub cfg: McConfig,
    /// The behaviour seed.
    pub seed: u64,
    /// The schedule salt that first exposed it.
    pub salt: u64,
    /// What the oracle caught on the *minimized* trace.
    pub violation: ViolationReport,
    /// The minimized trace; [`replay`] with `(cfg, seed, trace)`
    /// reproduces `violation` exactly.
    pub trace: Vec<Event>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model-check failure: topology={} mode={} chaos={:?} seed={:#x} salt={}",
            self.cfg.topology.label(),
            self.cfg.mode.figure_label(),
            self.cfg.chaos,
            self.seed,
            self.salt,
        )?;
        writeln!(f, "  {}", self.violation)?;
        write!(f, "  minimized trace ({} steps): [", self.trace.len())?;
        for (i, event) in self.trace.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{event}")?;
        }
        write!(
            f,
            "]\n  replay: modelcheck::replay(&cfg, {:#x}, &trace)",
            self.seed
        )
    }
}

/// The result of exploring many schedules of one configuration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Schedules run.
    pub schedules: usize,
    /// Distinct interleavings among them (traces deduplicated by FNV
    /// hash).
    pub distinct_interleavings: usize,
    /// Total events executed across all schedules.
    pub total_events: usize,
    /// Every failing schedule, minimized (shrinking is capped at the
    /// first [`ExploreReport::SHRINK_LIMIT`] failures; later ones keep
    /// their raw traces, which still replay).
    pub failures: Vec<Failure>,
}

impl ExploreReport {
    /// How many failures per exploration get the full shrink treatment.
    pub const SHRINK_LIMIT: usize = 2;
}

/// Explores `schedules` seeded interleavings of one configuration,
/// checking the oracles at every step of every run.
pub fn explore(cfg: &McConfig, seed: u64, schedules: usize) -> ExploreReport {
    let mut seen = HashSet::new();
    let mut total_events = 0;
    let mut failures = Vec::new();
    for salt in 0..schedules as u64 {
        let outcome = run_schedule(cfg, seed, salt);
        seen.insert(trace_hash(&outcome.trace));
        total_events += outcome.trace.len();
        if let Some(found) = outcome.violation {
            let (trace, violation) = if failures.len() < ExploreReport::SHRINK_LIMIT {
                let minimized = shrink(cfg, seed, &outcome.trace);
                let confirmed = replay(cfg, seed, &minimized)
                    .violation
                    .expect("shrink preserves reproduction");
                (minimized, confirmed)
            } else {
                (outcome.trace, found)
            };
            failures.push(Failure {
                cfg: cfg.clone(),
                seed,
                salt,
                violation,
                trace,
            });
        }
    }
    ExploreReport {
        schedules,
        distinct_interleavings: seen.len(),
        total_events,
        failures,
    }
}

/// The full acceptance matrix: every topology × every accumulation
/// policy, `schedules` interleavings each. Returns the per-config
/// reports keyed by `(topology, mode)`.
pub fn explore_matrix(
    seed: u64,
    schedules: usize,
) -> Vec<((Topology, ProgressMode), ExploreReport)> {
    let modes = [
        ProgressMode::Broadcast,
        ProgressMode::Local,
        ProgressMode::Global,
        ProgressMode::LocalGlobal,
    ];
    let mut out = Vec::new();
    for topology in Topology::ALL {
        for mode in modes {
            let cfg = McConfig::new(topology, mode);
            out.push(((topology, mode), explore(&cfg, seed, schedules)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_chain_schedules_quiesce() {
        let cfg = McConfig::new(Topology::Chain, ProgressMode::Broadcast);
        let report = explore(&cfg, 7, 20);
        assert!(
            report.failures.is_empty(),
            "unexpected failure:\n{}",
            report.failures[0]
        );
        assert!(report.distinct_interleavings > 1);
    }

    #[test]
    fn runs_replay_bit_identically() {
        let cfg = McConfig::new(Topology::Diamond, ProgressMode::Local);
        let outcome = run_schedule(&cfg, 11, 3);
        assert!(outcome.violation.is_none());
        let replayed = replay(&cfg, 11, &outcome.trace);
        assert_eq!(replayed.trace, outcome.trace);
        assert_eq!(replayed.violation, outcome.violation);
        assert_eq!(replayed.applied, outcome.applied);
    }

    #[test]
    fn reorder_chaos_trips_the_fifo_oracle() {
        let cfg = McConfig {
            chaos: Chaos::ReorderLinks(500),
            ..McConfig::new(Topology::Chain, ProgressMode::Broadcast)
        };
        let report = explore(&cfg, 3, 40);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.violation.violation.kind() == ViolationKind::Fifo),
            "reordered links must violate per-sender FIFO"
        );
    }

    #[test]
    fn starved_credits_leave_every_oracle_silent() {
        // Progress traffic is exempt from credit-based flow control
        // (bounding it would deadlock §3.3), so a fully starved data
        // plane must be invisible to the protocol: every schedule stays
        // violation-free and bit-identical to the same schedule without
        // chaos.
        for topology in Topology::ALL {
            for mode in [ProgressMode::Broadcast, ProgressMode::LocalGlobal] {
                let clean = McConfig::new(topology, mode);
                let starved = McConfig {
                    chaos: Chaos::StarveCredits,
                    ..clean.clone()
                };
                let report = explore(&starved, 13, 10);
                assert!(
                    report.failures.is_empty(),
                    "starved credits must be invisible:\n{}",
                    report.failures[0]
                );
                let a = run_schedule(&clean, 13, 4);
                let b = run_schedule(&starved, 13, 4);
                assert_eq!(a.trace, b.trace);
                assert_eq!(a.applied, b.applied);
                assert_eq!(a.journals, b.journals);
            }
        }
    }

    #[test]
    fn starved_credits_are_tallied_but_never_block_delivery() {
        let cfg = McConfig {
            chaos: Chaos::StarveCredits,
            ..McConfig::new(Topology::Chain, ProgressMode::Broadcast)
        };
        let mut cluster = Cluster::new(&cfg, 7);
        while let Some(&event) = cluster.eligible().first() {
            assert!(
                cluster.execute(event).is_none(),
                "oracle fired under starved credits"
            );
            assert!(cluster.steps() <= MAX_STEPS);
        }
        assert!(cluster.starved() > 0, "chaos must observe link traffic");
        assert!(cluster.check_quiescent().is_none());
    }

    #[test]
    fn drop_chaos_trips_the_liveness_oracle() {
        let cfg = McConfig {
            chaos: Chaos::DropBatch(300),
            ..McConfig::new(Topology::Chain, ProgressMode::Broadcast)
        };
        let report = explore(&cfg, 5, 20);
        assert!(
            report
                .failures
                .iter()
                .any(|f| matches!(f.violation.violation.kind(), ViolationKind::Liveness)),
            "dropped batches must leave counts outstanding"
        );
    }
}
