//! The model-checker's dataflow topologies.
//!
//! Three shapes stress different corners of the could-result-in relation:
//! a straight [`Topology::Chain`] (pure pipeline ordering), a
//! [`Topology::Diamond`] (fan-out plus a two-input fan-in stage, where a
//! frontier must wait for the *slower* branch), and a
//! [`Topology::NestedLoop`] (two loop contexts deep, exercising
//! ingress/egress/feedback summaries and lexicographic counter order).

use std::sync::Arc;

use crate::graph::{ContextId, GraphBuilder, LogicalGraph, StageKind};

/// A model topology (ISSUE 4's minimum matrix: chain, diamond, nested loop).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topology {
    /// `input → a → b → out`.
    Chain,
    /// `input → split → {left, right} → join(2 inputs) → out`.
    Diamond,
    /// `input → I₁ → outer(2in) → I₂ → inner(2in) ⇄ F₂; inner → E₂ →
    /// back(1in) → {F₁ → outer, E₁ → out}`: a loop nested inside a loop.
    NestedLoop,
}

impl Topology {
    /// All topologies, for matrix drivers.
    pub const ALL: [Topology; 3] = [Topology::Chain, Topology::Diamond, Topology::NestedLoop];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Diamond => "diamond",
            Topology::NestedLoop => "nested-loop",
        }
    }

    /// Builds the logical graph.
    pub fn graph(&self) -> Arc<LogicalGraph> {
        let mut g = GraphBuilder::new();
        match self {
            Topology::Chain => {
                let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
                let a = g.add_stage("a", StageKind::Regular, ContextId::ROOT, 1, 1);
                let b = g.add_stage("b", StageKind::Regular, ContextId::ROOT, 1, 1);
                let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
                g.connect(input, 0, a, 0);
                g.connect(a, 0, b, 0);
                g.connect(b, 0, out, 0);
            }
            Topology::Diamond => {
                let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
                let split = g.add_stage("split", StageKind::Regular, ContextId::ROOT, 1, 2);
                let left = g.add_stage("left", StageKind::Regular, ContextId::ROOT, 1, 1);
                let right = g.add_stage("right", StageKind::Regular, ContextId::ROOT, 1, 1);
                let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
                let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
                g.connect(input, 0, split, 0);
                g.connect(split, 0, left, 0);
                g.connect(split, 1, right, 0);
                g.connect(left, 0, join, 0);
                g.connect(right, 0, join, 1);
                g.connect(join, 0, out, 0);
            }
            Topology::NestedLoop => {
                let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
                let outer_ctx = g.add_context(ContextId::ROOT);
                let i1 = g.add_ingress("I1", outer_ctx);
                let f1 = g.add_feedback("F1", outer_ctx);
                let outer = g.add_stage("outer", StageKind::Regular, outer_ctx, 2, 1);
                let inner_ctx = g.add_context(outer_ctx);
                let i2 = g.add_ingress("I2", inner_ctx);
                let f2 = g.add_feedback("F2", inner_ctx);
                let inner = g.add_stage("inner", StageKind::Regular, inner_ctx, 2, 1);
                let e2 = g.add_egress("E2", inner_ctx);
                let back = g.add_stage("back", StageKind::Regular, outer_ctx, 1, 1);
                let e1 = g.add_egress("E1", outer_ctx);
                let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
                g.connect(input, 0, i1, 0);
                g.connect(i1, 0, outer, 0);
                g.connect(f1, 0, outer, 1);
                g.connect(outer, 0, i2, 0);
                g.connect(i2, 0, inner, 0);
                g.connect(f2, 0, inner, 1);
                g.connect(inner, 0, f2, 0);
                g.connect(inner, 0, e2, 0);
                g.connect(e2, 0, back, 0);
                g.connect(back, 0, f1, 0);
                g.connect(back, 0, e1, 0);
                g.connect(e1, 0, out, 0);
            }
        }
        Arc::new(g.build().expect("model topologies are well formed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_build() {
        for t in Topology::ALL {
            let graph = t.graph();
            assert_eq!(graph.input_stages().count(), 1, "{}", t.label());
        }
    }

    #[test]
    fn nested_loop_is_two_deep() {
        let graph = Topology::NestedLoop.graph();
        let max_depth = graph.contexts().iter().map(|c| c.depth).max().unwrap();
        assert_eq!(max_depth, 2);
    }
}
