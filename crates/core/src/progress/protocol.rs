//! The distributed progress-tracking protocol (§3.3).
//!
//! Workers never mutate their pointstamp tables directly: every occurrence
//! change is broadcast as a `(Pointstamp, δ)` update, FIFO per sender, and
//! applied on receipt — including by the sender itself. A naive
//! implementation broadcasts every update; the paper's two optimizations
//! are (1) projecting pointstamps to the logical graph, which this entire
//! reproduction does throughout, and (2) *accumulating* updates in buffers
//! before broadcasting.
//!
//! [`Accumulator`] implements the buffering rule: a buffered update at
//! pointstamp `p` may be held as long as
//!
//! * some *other* pointstamp that is active in the accumulator's local
//!   view (flushed or observed updates — §3.3's "local frontier", by
//!   transitivity and minimality) could-result-in `p`, or
//! * the update is positive and `p` itself is active in the view (§3.3's
//!   strictly-positive net count: the creation cannot move any frontier).
//!
//! Covers are drawn from the *view* only, never from other buffered
//! updates: a buffer must not justify itself, or the initial input
//! pointstamps would never be broadcast and no notification could ever be
//! delivered. Self-cover is restricted to positive deltas for the same
//! reason — the retirement of a minimal active pointstamp must flush, or
//! the global frontier would never advance.
//!
//! When a deposit or observation violates the rule the whole buffer
//! flushes, positive deltas before negative ones. Flushing everything
//! atomically preserves each sender's causal order (a message's
//! consequences are deposited before its retirement), which is what makes
//! any holding policy safe.

use std::collections::HashMap;
use std::sync::Arc;

use naiad_wire::{Wire, WireError};

use crate::graph::LogicalGraph;

use super::{Pointstamp, ProgressUpdate};

/// Which accumulation topology the runtime uses (Figure 6c's four lines).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProgressMode {
    /// No accumulation: every worker broadcast goes to every worker
    /// directly ("None" in Figure 6c).
    Broadcast,
    /// A per-process accumulator combines its workers' updates before
    /// broadcasting ("LocalAcc"). The paper's default, together with
    /// [`ProgressMode::LocalGlobal`].
    #[default]
    Local,
    /// A cluster-level central accumulator combines all processes' updates
    /// and broadcasts their net effect ("GlobalAcc").
    Global,
    /// Both levels: process accumulators feed the central accumulator
    /// ("Local+GlobalAcc").
    LocalGlobal,
}

impl ProgressMode {
    /// Whether a per-process accumulator is interposed.
    pub fn local(&self) -> bool {
        matches!(self, ProgressMode::Local | ProgressMode::LocalGlobal)
    }

    /// Whether the cluster-level accumulator is interposed.
    pub fn global(&self) -> bool {
        matches!(self, ProgressMode::Global | ProgressMode::LocalGlobal)
    }

    /// The label Figure 6c uses for this mode.
    pub fn figure_label(&self) -> &'static str {
        match self {
            ProgressMode::Broadcast => "None",
            ProgressMode::Local => "LocalAcc",
            ProgressMode::Global => "GlobalAcc",
            ProgressMode::LocalGlobal => "Local+GlobalAcc",
        }
    }
}

/// A batch of progress updates from one sender.
///
/// The sequence number makes per-sender FIFO delivery checkable downstream
/// (the fabric already guarantees it; the runtime asserts it in debug
/// builds, mirroring Naiad's idempotent sequenced delivery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressBatch {
    /// Identifier of the sending worker or accumulator.
    pub sender: u32,
    /// Per-sender sequence number, starting at zero.
    pub seq: u64,
    /// The dataflow whose tracker these updates feed.
    pub dataflow: u32,
    /// The updates, applied atomically by receivers.
    pub updates: Vec<ProgressUpdate>,
}

impl Wire for ProgressBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.sender.encode(buf);
        self.seq.encode(buf);
        self.dataflow.encode(buf);
        self.updates.len().encode(buf);
        for (p, delta) in &self.updates {
            p.encode(buf);
            delta.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let sender = u32::decode(input)?;
        let seq = u64::decode(input)?;
        let dataflow = u32::decode(input)?;
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        let mut updates = Vec::with_capacity(len);
        for _ in 0..len {
            let p = Pointstamp::decode(input)?;
            let delta = i64::decode(input)?;
            updates.push((p, delta));
        }
        Ok(ProgressBatch {
            sender,
            seq,
            dataflow,
            updates,
        })
    }

    fn encoded_len(&self) -> usize {
        self.sender.encoded_len()
            + self.seq.encoded_len()
            + self.dataflow.encoded_len()
            + self.updates.len().encoded_len()
            + self
                .updates
                .iter()
                .map(|(p, d)| p.encoded_len() + d.encoded_len())
                .sum::<usize>()
    }
}

/// A buffering accumulator for progress updates (§3.3, optimization 2).
///
/// One instance serves a *group* of senders — a process's workers, or all
/// processes at the cluster level. Deposits combine by pointstamp; the
/// buffer drains when the safety condition in the module docs would be
/// violated, or on an explicit [`Accumulator::flush`].
#[derive(Debug)]
pub struct Accumulator {
    graph: Arc<LogicalGraph>,
    /// The accumulator's view of global occurrence counts: everything it
    /// has flushed (in flight or delivered) plus everything observed from
    /// other groups.
    view: HashMap<Pointstamp, i64>,
    /// Combined, not-yet-forwarded updates.
    buffer: HashMap<Pointstamp, i64>,
    /// Whether flushed updates fold into the local view (true unless an
    /// upstream accumulator echoes this group's own updates back, in which
    /// case folding would double count — see the runtime's Local+Global
    /// topology).
    fold_on_flush: bool,
}

impl Accumulator {
    /// An accumulator reasoning over `graph`, with its view initialized to
    /// the a-priori state of §2.3: one active pointstamp per input vertex
    /// instance at the first epoch. Initialization is *not* broadcast —
    /// every participant derives it from the graph — which is what keeps
    /// early views from being vacuously complete.
    pub fn new(graph: Arc<LogicalGraph>, total_workers: usize) -> Self {
        let mut view = HashMap::new();
        for stage in graph.input_stages() {
            view.insert(
                Pointstamp::at_vertex(crate::time::Timestamp::new(0), stage),
                total_workers as i64,
            );
        }
        Accumulator {
            graph,
            view,
            buffer: HashMap::new(),
            fold_on_flush: true,
        }
    }

    /// Configures whether flushes fold into the local view (see the field
    /// documentation); defaults to `true`.
    pub fn set_fold_on_flush(&mut self, fold: bool) {
        self.fold_on_flush = fold;
    }

    fn bump(map: &mut HashMap<Pointstamp, i64>, p: Pointstamp, delta: i64) {
        let e = map.entry(p).or_insert(0);
        *e += delta;
        if *e == 0 {
            map.remove(&p);
        }
    }

    /// Records updates that bypassed this accumulator (broadcasts from
    /// other groups), refining the local view. Per §3.3, receiving new
    /// updates re-tests the buffering condition; the drained buffer is
    /// returned if it no longer holds.
    pub fn observe<'a, I: IntoIterator<Item = &'a ProgressUpdate>>(
        &mut self,
        updates: I,
    ) -> Option<Vec<ProgressUpdate>> {
        for &(p, delta) in updates {
            Self::bump(&mut self.view, p, delta);
        }
        if self.buffer.is_empty() || self.buffer_is_safe() {
            None
        } else {
            Some(self.flush())
        }
    }

    /// Deposits updates for forwarding. Returns the drained buffer if the
    /// safety condition forces a broadcast, otherwise `None`.
    pub fn deposit<I: IntoIterator<Item = ProgressUpdate>>(
        &mut self,
        updates: I,
    ) -> Option<Vec<ProgressUpdate>> {
        for (p, delta) in updates {
            Self::bump(&mut self.buffer, p, delta);
        }
        if self.buffer_is_safe() {
            None
        } else {
            Some(self.flush())
        }
    }

    fn buffer_is_safe(&self) -> bool {
        let summaries = self.graph.summaries();
        self.buffer.iter().all(|(p, &delta)| {
            // Self-cover: a creation at a pointstamp everyone already
            // counts as active changes no frontier.
            if delta > 0 && self.view.get(p).copied().unwrap_or(0) > 0 {
                return true;
            }
            // Other-cover: a visible-active pointstamp precedes p, so no
            // frontier can reach p until that cover retires — and its
            // retirement will re-test this condition.
            self.view.iter().any(|(q, &c)| {
                c > 0
                    && q != p
                    && summaries.could_result_in(&q.time, q.location, &p.time, p.location)
            })
        })
    }

    /// Drains the buffer: positive deltas first, then negatives (§3.3),
    /// and folds the drained updates into the local view (they are now in
    /// flight).
    pub fn flush(&mut self) -> Vec<ProgressUpdate> {
        let mut updates: Vec<ProgressUpdate> = self.buffer.drain().collect();
        updates.sort_by_key(|&(p, delta)| {
            let mut counters = [0u64; crate::time::MAX_LOOP_DEPTH];
            counters[..p.time.depth()].copy_from_slice(p.time.counters.as_slice());
            (delta < 0, p.location, p.time.epoch, counters)
        });
        if self.fold_on_flush {
            for &(p, delta) in &updates {
                Self::bump(&mut self.view, p, delta);
            }
        }
        updates
    }

    /// Whether any updates are buffered.
    pub fn has_buffered(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Number of distinct buffered pointstamps.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ContextId, GraphBuilder, StageId, StageKind};
    use crate::time::Timestamp;

    fn ts(epoch: u64) -> Timestamp {
        Timestamp::new(epoch)
    }

    /// input(0) → a(1) → b(2), all in the root context.
    fn chain_graph() -> Arc<LogicalGraph> {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let a = g.add_stage("a", StageKind::Regular, ContextId::ROOT, 1, 1);
        let b = g.add_stage("b", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, a, 0);
        g.connect(a, 0, b, 0);
        Arc::new(g.build().unwrap())
    }

    const INPUT: StageId = StageId(0);
    const B: StageId = StageId(2);

    #[test]
    fn batches_roundtrip_on_the_wire() {
        let batch = ProgressBatch {
            sender: 3,
            seq: 17,
            dataflow: 1,
            updates: vec![
                (Pointstamp::at_vertex(ts(0), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), B), -2),
            ],
        };
        let bytes = naiad_wire::encode_to_vec(&batch);
        assert_eq!(bytes.len(), batch.encoded_len());
        assert_eq!(
            naiad_wire::decode_from_slice::<ProgressBatch>(&bytes).unwrap(),
            batch
        );
    }

    #[test]
    fn covered_updates_are_held() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // The view starts with the a-priori epoch-0 input pointstamp, so
        // downstream activity at B, epoch 0, is covered: +1/−1 churn
        // accumulates silently.
        for _ in 0..100 {
            assert!(acc
                .deposit([
                    (Pointstamp::at_vertex(ts(0), B), 1),
                    (Pointstamp::at_vertex(ts(0), B), -1),
                ])
                .is_none());
        }
        assert_eq!(acc.buffered_len(), 0, "churn combined to nothing");
        // Uncancelled covered activity is also held.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 1);
    }

    #[test]
    fn retiring_a_frontier_pointstamp_forces_a_flush() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Epoch 0 completes: the +1 at epoch 1 is covered by the a-priori
        // epoch-0 input pointstamp, but the −1 at epoch 0 has only a
        // self-cover, which negatives may not use — the whole buffer
        // flushes, positives first.
        let flushed = acc
            .deposit([
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), INPUT), -1),
            ])
            .expect("retirement must flush");
        assert_eq!(
            flushed,
            vec![
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), INPUT), -1),
            ]
        );
        assert!(!acc.has_buffered());
    }

    #[test]
    fn unbroadcast_churn_cancels_without_a_flush() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // With an external cover in place, local churn cancels silently.
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 0, "churn cancelled in the buffer");
    }

    #[test]
    fn positives_flush_before_negatives() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        // Deposit a covered mix, then flush explicitly.
        assert!(acc
            .deposit([
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), B), 1),
            ])
            .is_none());
        let maybe = acc.deposit([(Pointstamp::at_vertex(ts(0), B), -2)]);
        let flushed = maybe.unwrap_or_else(|| acc.flush());
        let first_negative = flushed
            .iter()
            .position(|&(_, d)| d < 0)
            .unwrap_or(flushed.len());
        assert!(
            flushed[first_negative..].iter().all(|&(_, d)| d < 0),
            "positives must precede negatives: {flushed:?}"
        );
    }

    #[test]
    fn observation_keeps_buffering_safe_across_groups() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Another process's broadcast holds epoch 0 open at the input.
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        // Local churn at B stays buffered because the *observed* pointstamp
        // covers it.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 0, "churn combined away");
    }

    #[test]
    fn uncovered_negative_flushes_immediately() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Retire the a-priori input pointstamp (input closed at epoch 0).
        let flushed = acc.deposit([(Pointstamp::at_vertex(ts(0), INPUT), -1)]);
        assert_eq!(
            flushed,
            Some(vec![(Pointstamp::at_vertex(ts(0), INPUT), -1)])
        );
        // With the cover gone from the view, a bare retirement at B can no
        // longer be held either.
        let flushed = acc.deposit([(Pointstamp::at_vertex(ts(0), B), -1)]);
        assert_eq!(flushed, Some(vec![(Pointstamp::at_vertex(ts(0), B), -1)]));
    }

    #[test]
    fn in_flight_flushes_count_as_visible_covers() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Flushed updates fold into the view, so they cover later churn
        // even before the broadcast lands anywhere.
        let _ = acc.deposit([(Pointstamp::at_vertex(ts(0), INPUT), 1)]);
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        // A creation whose only justification is itself (in the buffer)
        // does not count: it must flush.
        assert!(
            acc.deposit([(Pointstamp::at_vertex(ts(1), B), 1)])
                .is_none(),
            "covered by the epoch-0 input pointstamp"
        );
    }

    #[test]
    fn observing_a_retirement_flushes_dependent_buffered_updates() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // The a-priori input pointstamp covers our churn at B.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        // The covering pointstamp retires via an external broadcast (the
        // input's owner closed it): the held update must flush now (§3.3:
        // re-test on receipt).
        let flushed = acc.observe(&[(Pointstamp::at_vertex(ts(0), INPUT), -1)]);
        assert_eq!(flushed, Some(vec![(Pointstamp::at_vertex(ts(0), B), -1)]));
    }

    #[test]
    fn mode_flags_match_topologies() {
        assert!(!ProgressMode::Broadcast.local() && !ProgressMode::Broadcast.global());
        assert!(ProgressMode::Local.local() && !ProgressMode::Local.global());
        assert!(!ProgressMode::Global.local() && ProgressMode::Global.global());
        assert!(ProgressMode::LocalGlobal.local() && ProgressMode::LocalGlobal.global());
        assert_eq!(ProgressMode::LocalGlobal.figure_label(), "Local+GlobalAcc");
    }
}
