//! The distributed progress-tracking protocol (§3.3).
//!
//! Workers never mutate their pointstamp tables directly: every occurrence
//! change is broadcast as a `(Pointstamp, δ)` update, FIFO per sender, and
//! applied on receipt — including by the sender itself. A naive
//! implementation broadcasts every update; the paper's two optimizations
//! are (1) projecting pointstamps to the logical graph, which this entire
//! reproduction does throughout, and (2) *accumulating* updates in buffers
//! before broadcasting.
//!
//! [`Accumulator`] implements the buffering rule: a buffered update at
//! pointstamp `p` may be held as long as
//!
//! * some *other* pointstamp that is active in the accumulator's local
//!   view (flushed or observed updates — §3.3's "local frontier", by
//!   transitivity and minimality) could-result-in `p`, or
//! * the update is positive and `p` itself is active in the view (§3.3's
//!   strictly-positive net count: the creation cannot move any frontier).
//!
//! Covers are drawn from the *view* only, never from other buffered
//! updates: a buffer must not justify itself, or the initial input
//! pointstamps would never be broadcast and no notification could ever be
//! delivered. Self-cover is restricted to positive deltas for the same
//! reason — the retirement of a minimal active pointstamp must flush, or
//! the global frontier would never advance.
//!
//! When a deposit or observation violates the rule the whole buffer
//! flushes, positive deltas before negative ones. Flushing everything
//! atomically preserves each sender's causal order (a message's
//! consequences are deposited before its retirement), which is what makes
//! any holding policy safe.

use std::collections::HashMap;
use std::sync::Arc;

use naiad_wire::{Wire, WireError};

use crate::graph::LogicalGraph;

use super::tracker::PointstampTable;
use super::{Pointstamp, ProgressUpdate};

/// Sender-id base for process-level accumulators (workers use their own
/// worker index as sender id).
pub const PROC_ACC_SENDER_BASE: u32 = 1 << 24;
/// Sender id of the cluster-level accumulator.
pub const CENTRAL_SENDER: u32 = 1 << 25;

/// Which accumulation topology the runtime uses (Figure 6c's four lines).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProgressMode {
    /// No accumulation: every worker broadcast goes to every worker
    /// directly ("None" in Figure 6c).
    Broadcast,
    /// A per-process accumulator combines its workers' updates before
    /// broadcasting ("LocalAcc"). The paper's default, together with
    /// [`ProgressMode::LocalGlobal`].
    #[default]
    Local,
    /// A cluster-level central accumulator combines all processes' updates
    /// and broadcasts their net effect ("GlobalAcc").
    Global,
    /// Both levels: process accumulators feed the central accumulator
    /// ("Local+GlobalAcc").
    LocalGlobal,
}

impl ProgressMode {
    /// Whether a per-process accumulator is interposed.
    pub fn local(&self) -> bool {
        matches!(self, ProgressMode::Local | ProgressMode::LocalGlobal)
    }

    /// Whether the cluster-level accumulator is interposed.
    pub fn global(&self) -> bool {
        matches!(self, ProgressMode::Global | ProgressMode::LocalGlobal)
    }

    /// The label Figure 6c uses for this mode.
    pub fn figure_label(&self) -> &'static str {
        match self {
            ProgressMode::Broadcast => "None",
            ProgressMode::Local => "LocalAcc",
            ProgressMode::Global => "GlobalAcc",
            ProgressMode::LocalGlobal => "Local+GlobalAcc",
        }
    }
}

/// A batch of progress updates from one sender.
///
/// The sequence number makes per-sender FIFO delivery checkable downstream
/// (the fabric already guarantees it; the runtime asserts it in debug
/// builds, mirroring Naiad's idempotent sequenced delivery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressBatch {
    /// Identifier of the sending worker or accumulator.
    pub sender: u32,
    /// Per-sender sequence number, starting at zero.
    pub seq: u64,
    /// The dataflow whose tracker these updates feed.
    pub dataflow: u32,
    /// The updates, applied atomically by receivers.
    pub updates: Vec<ProgressUpdate>,
}

impl Wire for ProgressBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.sender.encode(buf);
        self.seq.encode(buf);
        self.dataflow.encode(buf);
        self.updates.len().encode(buf);
        for (p, delta) in &self.updates {
            p.encode(buf);
            delta.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let sender = u32::decode(input)?;
        let seq = u64::decode(input)?;
        let dataflow = u32::decode(input)?;
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        let mut updates = Vec::with_capacity(len);
        for _ in 0..len {
            let p = Pointstamp::decode(input)?;
            let delta = i64::decode(input)?;
            updates.push((p, delta));
        }
        Ok(ProgressBatch {
            sender,
            seq,
            dataflow,
            updates,
        })
    }

    fn encoded_len(&self) -> usize {
        self.sender.encoded_len()
            + self.seq.encoded_len()
            + self.dataflow.encoded_len()
            + self.updates.len().encoded_len()
            + self
                .updates
                .iter()
                .map(|(p, d)| p.encoded_len() + d.encoded_len())
                .sum::<usize>()
    }
}

/// A buffering accumulator for progress updates (§3.3, optimization 2).
///
/// One instance serves a *group* of senders — a process's workers, or all
/// processes at the cluster level. Deposits combine by pointstamp; the
/// buffer drains when the safety condition in the module docs would be
/// violated, or on an explicit [`Accumulator::flush`].
#[derive(Debug)]
pub struct Accumulator {
    graph: Arc<LogicalGraph>,
    /// The accumulator's view of global occurrence counts: everything it
    /// has flushed (in flight or delivered) plus everything observed from
    /// other groups.
    view: HashMap<Pointstamp, i64>,
    /// Combined, not-yet-forwarded updates.
    buffer: HashMap<Pointstamp, i64>,
    /// Whether flushed updates fold into the local view (true unless an
    /// upstream accumulator echoes this group's own updates back, in which
    /// case folding would double count — see the runtime's Local+Global
    /// topology).
    fold_on_flush: bool,
}

impl Accumulator {
    /// An accumulator reasoning over `graph`, with its view initialized to
    /// the a-priori state of §2.3: one active pointstamp per input vertex
    /// instance at the first epoch. Initialization is *not* broadcast —
    /// every participant derives it from the graph — which is what keeps
    /// early views from being vacuously complete.
    pub fn new(graph: Arc<LogicalGraph>, total_workers: usize) -> Self {
        let mut view = HashMap::new();
        for stage in graph.input_stages() {
            view.insert(
                Pointstamp::at_vertex(crate::time::Timestamp::new(0), stage),
                total_workers as i64,
            );
        }
        Accumulator {
            graph,
            view,
            buffer: HashMap::new(),
            fold_on_flush: true,
        }
    }

    /// Configures whether flushes fold into the local view (see the field
    /// documentation); defaults to `true`.
    pub fn set_fold_on_flush(&mut self, fold: bool) {
        self.fold_on_flush = fold;
    }

    fn bump(map: &mut HashMap<Pointstamp, i64>, p: Pointstamp, delta: i64) {
        let e = map.entry(p).or_insert(0);
        *e += delta;
        if *e == 0 {
            map.remove(&p);
        }
    }

    /// Records updates that bypassed this accumulator (broadcasts from
    /// other groups), refining the local view. Per §3.3, receiving new
    /// updates re-tests the buffering condition; the drained buffer is
    /// returned if it no longer holds.
    pub fn observe<'a, I: IntoIterator<Item = &'a ProgressUpdate>>(
        &mut self,
        updates: I,
    ) -> Option<Vec<ProgressUpdate>> {
        for &(p, delta) in updates {
            Self::bump(&mut self.view, p, delta);
        }
        if self.buffer.is_empty() || self.buffer_is_safe() {
            None
        } else {
            Some(self.flush())
        }
    }

    /// Deposits updates for forwarding. Returns the drained buffer if the
    /// safety condition forces a broadcast, otherwise `None`.
    pub fn deposit<I: IntoIterator<Item = ProgressUpdate>>(
        &mut self,
        updates: I,
    ) -> Option<Vec<ProgressUpdate>> {
        for (p, delta) in updates {
            Self::bump(&mut self.buffer, p, delta);
        }
        if self.buffer_is_safe() {
            None
        } else {
            Some(self.flush())
        }
    }

    fn buffer_is_safe(&self) -> bool {
        let summaries = self.graph.summaries();
        // lint-allow(NS0003): `all` is order-insensitive; no iteration
        // order escapes this predicate.
        self.buffer.iter().all(|(p, &delta)| {
            // Self-cover: a creation at a pointstamp everyone already
            // counts as active changes no frontier.
            if delta > 0 && self.view.get(p).copied().unwrap_or(0) > 0 {
                return true;
            }
            // Other-cover: a visible-active pointstamp precedes p, so no
            // frontier can reach p until that cover retires — and its
            // retirement will re-test this condition.
            // lint-allow(NS0003): `any` is order-insensitive.
            self.view.iter().any(|(q, &c)| {
                c > 0
                    && q != p
                    && summaries.could_result_in(&q.time, q.location, &p.time, p.location)
            })
        })
    }

    /// Drains the buffer: positive deltas first, then negatives (§3.3),
    /// and folds the drained updates into the local view (they are now in
    /// flight).
    pub fn flush(&mut self) -> Vec<ProgressUpdate> {
        // lint-allow(NS0003): the drain is sorted into the canonical
        // positive-first order on the very next statement, so hash order
        // never reaches the wire.
        let mut updates: Vec<ProgressUpdate> = self.buffer.drain().collect();
        updates.sort_by_key(|&(p, delta)| {
            let mut counters = [0u64; crate::time::MAX_LOOP_DEPTH];
            counters[..p.time.depth()].copy_from_slice(p.time.counters.as_slice());
            (delta < 0, p.location, p.time.epoch, counters)
        });
        if self.fold_on_flush {
            for &(p, delta) in &updates {
                Self::bump(&mut self.view, p, delta);
            }
        }
        updates
    }

    /// Whether any updates are buffered.
    pub fn has_buffered(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Number of distinct buffered pointstamps.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }
}

/// Monotone per-sender sequence numbering for outgoing progress batches.
///
/// Every protocol participant (worker, process accumulator, central
/// accumulator) stamps its batches from its own counter; receivers use
/// [`FifoChecker`] to assert the fabric preserved the order. Pure state —
/// no transport.
#[derive(Debug, Clone)]
pub struct BatchEmitter {
    sender: u32,
    seq: u64,
}

impl BatchEmitter {
    /// An emitter for the given sender identity, starting at sequence 0.
    pub fn new(sender: u32) -> Self {
        BatchEmitter { sender, seq: 0 }
    }

    /// This emitter's sender id.
    pub fn sender(&self) -> u32 {
        self.sender
    }

    /// Wraps `updates` in the next batch for `dataflow`.
    pub fn batch(&mut self, dataflow: u32, updates: Vec<ProgressUpdate>) -> ProgressBatch {
        let seq = self.seq;
        self.seq += 1;
        ProgressBatch {
            sender: self.sender,
            seq,
            dataflow,
            updates,
        }
    }
}

/// A violated per-sender FIFO expectation on incoming progress batches.
///
/// The §3.3 protocol is only sound over per-sender FIFO links: a batch
/// applied out of order can retire a pointstamp before its consequences
/// are known, silently corrupting frontiers. The runtime asserts on this;
/// the model-checker reports it as a first-class oracle failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoViolation {
    /// The offending sender.
    pub sender: u32,
    /// The sequence number that arrived.
    pub seq: u64,
    /// The highest sequence number previously admitted from `sender`.
    pub last: u64,
}

impl std::fmt::Display for FifoViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "progress batches from sender {} out of order: seq {} after {}",
            self.sender, self.seq, self.last
        )
    }
}

/// Per-sender FIFO admission check for incoming progress batches.
///
/// Duplicate or reordered batches are reported as [`FifoViolation`]s;
/// gaps are legal (an accumulated batch may supersede several smaller
/// ones upstream, and senders share no sequence space).
#[derive(Debug, Clone, Default)]
pub struct FifoChecker {
    last: HashMap<u32, u64>,
}

impl FifoChecker {
    /// An empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits `(sender, seq)`, recording it as the sender's high-water
    /// mark; errors if the sequence does not strictly increase.
    pub fn admit(&mut self, sender: u32, seq: u64) -> Result<(), FifoViolation> {
        match self.last.insert(sender, seq) {
            Some(last) if seq <= last => Err(FifoViolation { sender, seq, last }),
            _ => Ok(()),
        }
    }
}

/// The pure core of an accumulation group (§3.3): a process-level or
/// cluster-level [`Accumulator`] per dataflow behind one sender identity
/// and one outgoing sequence.
///
/// Deltas go in via [`GroupCore::deposit`] (this group's own senders) or
/// [`GroupCore::observe`] (broadcasts from other groups); when the
/// buffering rule forces a flush the drained updates come back out as a
/// ready-to-send [`ProgressBatch`]. The struct is side-effect-free — the
/// runtime's progress hub is a transport shell around it, and the
/// model-checker drives it over virtual links.
#[derive(Debug)]
pub struct GroupCore {
    emitter: BatchEmitter,
    fold_on_flush: bool,
    total_workers: usize,
    /// Per-dataflow accumulators, created on registration.
    accs: HashMap<u32, Accumulator>,
    /// Observations that arrived before the dataflow's graph was known
    /// (a peer group can broadcast first); replayed in arrival order on
    /// registration.
    stashed: HashMap<u32, Vec<ProgressUpdate>>,
}

impl GroupCore {
    /// A group core for `sender`, serving `total_workers` workers
    /// cluster-wide. `fold_on_flush` is false only when an upstream
    /// accumulator echoes this group's own flushes back (the
    /// Local+Global topology), where folding would double count.
    pub fn new(sender: u32, fold_on_flush: bool, total_workers: usize) -> Self {
        GroupCore {
            emitter: BatchEmitter::new(sender),
            fold_on_flush,
            total_workers,
            accs: HashMap::new(),
            stashed: HashMap::new(),
        }
    }

    /// This group's sender id.
    pub fn sender(&self) -> u32 {
        self.emitter.sender()
    }

    /// Whether `dataflow`'s accumulator exists yet.
    pub fn is_registered(&self, dataflow: u32) -> bool {
        self.accs.contains_key(&dataflow)
    }

    /// Registers `dataflow`'s graph, creating its accumulator and
    /// replaying any stashed pre-registration observations (view
    /// refinements only: the buffer is empty, so nothing can flush).
    pub fn register(&mut self, dataflow: u32, graph: Arc<LogicalGraph>) {
        if self.accs.contains_key(&dataflow) {
            return;
        }
        let mut acc = Accumulator::new(graph, self.total_workers);
        acc.set_fold_on_flush(self.fold_on_flush);
        if let Some(buffered) = self.stashed.remove(&dataflow) {
            let flushed = acc.observe(buffered.iter());
            debug_assert!(flushed.is_none(), "empty buffer cannot flush");
        }
        self.accs.insert(dataflow, acc);
    }

    /// Deposits updates from this group's own senders; returns the
    /// batch to broadcast if the §3.3 condition forces a flush.
    ///
    /// # Panics
    ///
    /// Panics if `dataflow` was never [`register`](GroupCore::register)ed
    /// — local deposits always follow construction.
    pub fn deposit(
        &mut self,
        dataflow: u32,
        updates: Vec<ProgressUpdate>,
    ) -> Option<ProgressBatch> {
        let acc = self
            .accs
            .get_mut(&dataflow)
            .expect("local deposits follow dataflow registration");
        let flushed = acc.deposit(updates)?;
        Some(self.emitter.batch(dataflow, flushed))
    }

    /// Observes an external broadcast, stashing it if the dataflow is
    /// not registered yet; returns the batch to broadcast if the
    /// buffered updates are no longer safe to hold.
    pub fn observe(&mut self, dataflow: u32, updates: &[ProgressUpdate]) -> Option<ProgressBatch> {
        match self.accs.get_mut(&dataflow) {
            Some(acc) => {
                let flushed = acc.observe(updates.iter())?;
                Some(self.emitter.batch(dataflow, flushed))
            }
            None => {
                self.stashed
                    .entry(dataflow)
                    .or_default()
                    .extend_from_slice(updates);
                None
            }
        }
    }

    /// Whether any registered dataflow still holds buffered updates
    /// (the liveness oracle's quiescence test).
    pub fn has_buffered(&self) -> bool {
        // lint-allow(NS0003): `any` is order-insensitive.
        self.accs.values().any(|a| a.has_buffered())
    }
}

/// The pure per-worker protocol core for one dataflow: pointstamp deltas
/// in (local journal), broadcast batches out, received batches applied to
/// a local [`PointstampTable`] fed *exclusively* by the protocol (§3.3).
///
/// No transport, no clock, no threads: a driver — the runtime worker or
/// the deterministic model-checker — steps it explicitly.
#[derive(Debug)]
pub struct WorkerCore {
    dataflow: u32,
    emitter: BatchEmitter,
    fifo: FifoChecker,
    table: PointstampTable,
}

impl WorkerCore {
    /// A core for worker `index` of `total_workers`, with the table
    /// initialized to §2.3's a-priori state.
    pub fn new(graph: Arc<LogicalGraph>, dataflow: u32, index: u32, total_workers: usize) -> Self {
        WorkerCore {
            dataflow,
            emitter: BatchEmitter::new(index),
            fifo: FifoChecker::new(),
            table: PointstampTable::initialized(graph, total_workers),
        }
    }

    /// This worker's index (its sender id).
    pub fn index(&self) -> u32 {
        self.emitter.sender()
    }

    /// Wraps a journal flush in the next outgoing batch. Workers never
    /// buffer — accumulation happens at the group level, per the mode.
    pub fn emit(&mut self, updates: Vec<ProgressUpdate>) -> ProgressBatch {
        self.emitter.batch(self.dataflow, updates)
    }

    /// Applies a received batch atomically, enforcing per-sender FIFO.
    pub fn apply(&mut self, batch: &ProgressBatch) -> Result<(), FifoViolation> {
        self.fifo.admit(batch.sender, batch.seq)?;
        self.table.apply(batch.updates.iter().copied());
        Ok(())
    }

    /// The local view (read-only; all mutation flows through
    /// [`WorkerCore::apply`]).
    pub fn table(&self) -> &PointstampTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ContextId, GraphBuilder, StageId, StageKind};
    use crate::time::Timestamp;

    fn ts(epoch: u64) -> Timestamp {
        Timestamp::new(epoch)
    }

    /// input(0) → a(1) → b(2), all in the root context.
    fn chain_graph() -> Arc<LogicalGraph> {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let a = g.add_stage("a", StageKind::Regular, ContextId::ROOT, 1, 1);
        let b = g.add_stage("b", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, a, 0);
        g.connect(a, 0, b, 0);
        Arc::new(g.build().unwrap())
    }

    const INPUT: StageId = StageId(0);
    const B: StageId = StageId(2);

    #[test]
    fn batches_roundtrip_on_the_wire() {
        let batch = ProgressBatch {
            sender: 3,
            seq: 17,
            dataflow: 1,
            updates: vec![
                (Pointstamp::at_vertex(ts(0), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), B), -2),
            ],
        };
        let bytes = naiad_wire::encode_to_vec(&batch);
        assert_eq!(bytes.len(), batch.encoded_len());
        assert_eq!(
            naiad_wire::decode_from_slice::<ProgressBatch>(&bytes).unwrap(),
            batch
        );
    }

    #[test]
    fn covered_updates_are_held() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // The view starts with the a-priori epoch-0 input pointstamp, so
        // downstream activity at B, epoch 0, is covered: +1/−1 churn
        // accumulates silently.
        for _ in 0..100 {
            assert!(acc
                .deposit([
                    (Pointstamp::at_vertex(ts(0), B), 1),
                    (Pointstamp::at_vertex(ts(0), B), -1),
                ])
                .is_none());
        }
        assert_eq!(acc.buffered_len(), 0, "churn combined to nothing");
        // Uncancelled covered activity is also held.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 1);
    }

    #[test]
    fn retiring_a_frontier_pointstamp_forces_a_flush() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Epoch 0 completes: the +1 at epoch 1 is covered by the a-priori
        // epoch-0 input pointstamp, but the −1 at epoch 0 has only a
        // self-cover, which negatives may not use — the whole buffer
        // flushes, positives first.
        let flushed = acc
            .deposit([
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), INPUT), -1),
            ])
            .expect("retirement must flush");
        assert_eq!(
            flushed,
            vec![
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), INPUT), -1),
            ]
        );
        assert!(!acc.has_buffered());
    }

    #[test]
    fn unbroadcast_churn_cancels_without_a_flush() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // With an external cover in place, local churn cancels silently.
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 0, "churn cancelled in the buffer");
    }

    #[test]
    fn positives_flush_before_negatives() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        // Deposit a covered mix, then flush explicitly.
        assert!(acc
            .deposit([
                (Pointstamp::at_vertex(ts(1), INPUT), 1),
                (Pointstamp::at_vertex(ts(0), B), 1),
            ])
            .is_none());
        let maybe = acc.deposit([(Pointstamp::at_vertex(ts(0), B), -2)]);
        let flushed = maybe.unwrap_or_else(|| acc.flush());
        let first_negative = flushed
            .iter()
            .position(|&(_, d)| d < 0)
            .unwrap_or(flushed.len());
        assert!(
            flushed[first_negative..].iter().all(|&(_, d)| d < 0),
            "positives must precede negatives: {flushed:?}"
        );
    }

    #[test]
    fn observation_keeps_buffering_safe_across_groups() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Another process's broadcast holds epoch 0 open at the input.
        assert!(acc
            .observe(&[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        // Local churn at B stays buffered because the *observed* pointstamp
        // covers it.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        assert_eq!(acc.buffered_len(), 0, "churn combined away");
    }

    #[test]
    fn uncovered_negative_flushes_immediately() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Retire the a-priori input pointstamp (input closed at epoch 0).
        let flushed = acc.deposit([(Pointstamp::at_vertex(ts(0), INPUT), -1)]);
        assert_eq!(
            flushed,
            Some(vec![(Pointstamp::at_vertex(ts(0), INPUT), -1)])
        );
        // With the cover gone from the view, a bare retirement at B can no
        // longer be held either.
        let flushed = acc.deposit([(Pointstamp::at_vertex(ts(0), B), -1)]);
        assert_eq!(flushed, Some(vec![(Pointstamp::at_vertex(ts(0), B), -1)]));
    }

    #[test]
    fn in_flight_flushes_count_as_visible_covers() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // Flushed updates fold into the view, so they cover later churn
        // even before the broadcast lands anywhere.
        let _ = acc.deposit([(Pointstamp::at_vertex(ts(0), INPUT), 1)]);
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        // A creation whose only justification is itself (in the buffer)
        // does not count: it must flush.
        assert!(
            acc.deposit([(Pointstamp::at_vertex(ts(1), B), 1)])
                .is_none(),
            "covered by the epoch-0 input pointstamp"
        );
    }

    #[test]
    fn observing_a_retirement_flushes_dependent_buffered_updates() {
        let mut acc = Accumulator::new(chain_graph(), 1);
        // The a-priori input pointstamp covers our churn at B.
        assert!(acc
            .deposit([(Pointstamp::at_vertex(ts(0), B), -1)])
            .is_none());
        // The covering pointstamp retires via an external broadcast (the
        // input's owner closed it): the held update must flush now (§3.3:
        // re-test on receipt).
        let flushed = acc.observe(&[(Pointstamp::at_vertex(ts(0), INPUT), -1)]);
        assert_eq!(flushed, Some(vec![(Pointstamp::at_vertex(ts(0), B), -1)]));
    }

    #[test]
    fn emitter_sequences_and_fifo_checker_agree() {
        let mut em = BatchEmitter::new(7);
        let b0 = em.batch(0, vec![(Pointstamp::at_vertex(ts(0), INPUT), 1)]);
        let b1 = em.batch(0, vec![(Pointstamp::at_vertex(ts(0), INPUT), -1)]);
        assert_eq!((b0.sender, b0.seq), (7, 0));
        assert_eq!((b1.sender, b1.seq), (7, 1));
        let mut fifo = FifoChecker::new();
        assert!(fifo.admit(b0.sender, b0.seq).is_ok());
        assert!(fifo.admit(b1.sender, b1.seq).is_ok());
        // Replays and reorders are rejected; other senders are independent.
        assert_eq!(
            fifo.admit(7, 1),
            Err(FifoViolation {
                sender: 7,
                seq: 1,
                last: 1
            })
        );
        assert!(fifo.admit(8, 0).is_ok());
    }

    #[test]
    fn group_core_stashes_until_registration() {
        let mut core = GroupCore::new(PROC_ACC_SENDER_BASE, true, 1);
        // Pre-registration broadcasts stash rather than flush.
        assert!(core
            .observe(0, &[(Pointstamp::at_vertex(ts(0), INPUT), 1)])
            .is_none());
        assert!(!core.is_registered(0));
        core.register(0, chain_graph());
        assert!(core.is_registered(0));
        // The stashed observation refined the view: churn at B is covered
        // and buffers silently.
        assert!(core
            .deposit(0, vec![(Pointstamp::at_vertex(ts(0), B), 1)])
            .is_none());
        assert!(core.has_buffered());
        // Retiring the a-priori input stamp forces a flush, sequenced
        // under the group's sender id.
        let batch = core
            .deposit(0, vec![(Pointstamp::at_vertex(ts(0), INPUT), -1)])
            .expect("uncovered negative flushes");
        assert_eq!(batch.sender, PROC_ACC_SENDER_BASE);
        assert_eq!(batch.seq, 0);
        assert_eq!(batch.dataflow, 0);
    }

    #[test]
    fn worker_core_round_trips_batches() {
        let graph = chain_graph();
        let mut a = WorkerCore::new(graph.clone(), 0, 0, 2);
        let mut b = WorkerCore::new(graph, 0, 1, 2);
        // Worker a advances its input to epoch 1; both apply the batch.
        let batch = a.emit(vec![
            (Pointstamp::at_vertex(ts(1), INPUT), 1),
            (Pointstamp::at_vertex(ts(0), INPUT), -1),
        ]);
        a.apply(&batch).unwrap();
        b.apply(&batch).unwrap();
        // Worker b still holds epoch 0 a-priori, so the input frontier
        // stays at 0 in both views.
        assert_eq!(a.table().input_frontier_epoch(), Some(0));
        assert_eq!(b.table().input_frontier_epoch(), Some(0));
        // Replaying the batch is a FIFO violation.
        assert!(a.apply(&batch).is_err());
    }

    #[test]
    fn mode_flags_match_topologies() {
        assert!(!ProgressMode::Broadcast.local() && !ProgressMode::Broadcast.global());
        assert!(ProgressMode::Local.local() && !ProgressMode::Local.global());
        assert!(!ProgressMode::Global.local() && ProgressMode::Global.global());
        assert!(ProgressMode::LocalGlobal.local() && ProgressMode::LocalGlobal.global());
        assert_eq!(ProgressMode::LocalGlobal.figure_label(), "Local+GlobalAcc");
    }
}
