//! The pointstamp table: occurrence counts, precursor counts, frontier
//! (§2.3), tolerant of the transiently negative counts that arise in the
//! distributed protocol (§3.3).

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::{Location, LogicalGraph};
use crate::order::PartialOrder;
use crate::time::Timestamp;

use super::{Pointstamp, ProgressUpdate};

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// Net occurrence count. May be negative while a creation update from
    /// one worker races a retirement update from another; a non-positive
    /// entry is simply not *active*.
    occurrence: i64,
    /// Number of *other* active pointstamps that could-result-in this one.
    /// Maintained only while active.
    precursor: usize,
}

/// Tracks active pointstamps and their frontier.
///
/// All mutation flows through [`PointstampTable::apply`], which applies the
/// §2.3 update rules: `SendBy`/`NotifyAt` contribute `+1`, delivered
/// `OnRecv`/`OnNotify` contribute `−1`. The *frontier* is the set of
/// active pointstamps with zero precursor count; a notification may be
/// delivered exactly when its pointstamp is in the frontier.
#[derive(Debug, Clone)]
pub struct PointstampTable {
    graph: Arc<LogicalGraph>,
    entries: HashMap<Pointstamp, Entry>,
}

impl PointstampTable {
    /// An empty table reasoning over `graph`'s could-result-in relation,
    /// with no a-priori input state. Prefer
    /// [`PointstampTable::initialized`] for live views.
    pub fn new(graph: Arc<LogicalGraph>) -> Self {
        PointstampTable {
            graph,
            entries: HashMap::new(),
        }
    }

    /// A table holding §2.3's initial state: one active pointstamp per
    /// input vertex instance at the first epoch, for `total_workers`
    /// instances per stage. Derived from the graph by every worker at
    /// startup rather than broadcast, so no local view is ever vacuously
    /// complete.
    pub fn initialized(graph: Arc<LogicalGraph>, total_workers: usize) -> Self {
        let mut table = PointstampTable::new(graph);
        let inputs: Vec<_> = table.graph.input_stages().collect();
        for stage in inputs {
            table.update(
                Pointstamp::at_vertex(Timestamp::new(0), stage),
                total_workers as i64,
            );
        }
        table
    }

    /// The graph this table reasons over.
    pub fn graph(&self) -> &Arc<LogicalGraph> {
        &self.graph
    }

    fn could_result_in(&self, a: &Pointstamp, b: &Pointstamp) -> bool {
        self.graph
            .summaries()
            .could_result_in(&a.time, a.location, &b.time, b.location)
    }

    /// Applies one occurrence-count update.
    pub fn update(&mut self, pointstamp: Pointstamp, delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.entries.entry(pointstamp).or_default();
        let was_active = entry.occurrence > 0;
        entry.occurrence += delta;
        let now_active = entry.occurrence > 0;
        let occurrence = entry.occurrence;

        match (was_active, now_active) {
            (false, true) => self.activate(pointstamp),
            (true, false) => self.deactivate(pointstamp),
            _ => {}
        }
        if occurrence == 0 {
            self.entries.remove(&pointstamp);
        }
    }

    /// Applies a batch of updates.
    pub fn apply<I: IntoIterator<Item = ProgressUpdate>>(&mut self, updates: I) {
        for (p, delta) in updates {
            self.update(p, delta);
        }
    }

    fn activate(&mut self, p: Pointstamp) {
        let mut precursor = 0;
        let others: Vec<Pointstamp> = self
            .entries
            .iter()
            .filter(|(q, e)| **q != p && e.occurrence > 0)
            .map(|(q, _)| *q)
            .collect();
        for q in others {
            if self.could_result_in(&q, &p) {
                precursor += 1;
            }
            if self.could_result_in(&p, &q) {
                self.entries
                    .get_mut(&q)
                    .expect("q was just enumerated")
                    .precursor += 1;
            }
        }
        self.entries
            .get_mut(&p)
            .expect("p was just inserted")
            .precursor = precursor;
    }

    fn deactivate(&mut self, p: Pointstamp) {
        let others: Vec<Pointstamp> = self
            .entries
            .iter()
            .filter(|(q, e)| **q != p && e.occurrence > 0)
            .map(|(q, _)| *q)
            .collect();
        for q in others {
            if self.could_result_in(&p, &q) {
                let e = self.entries.get_mut(&q).expect("q was just enumerated");
                debug_assert!(e.precursor > 0, "precursor underflow at {q:?}");
                e.precursor = e.precursor.saturating_sub(1);
            }
        }
    }

    /// Net occurrence count for a pointstamp (zero if absent).
    pub fn occurrence(&self, p: &Pointstamp) -> i64 {
        self.entries.get(p).map_or(0, |e| e.occurrence)
    }

    /// Whether `p` is active (positive occurrence count).
    pub fn is_active(&self, p: &Pointstamp) -> bool {
        self.entries.get(p).is_some_and(|e| e.occurrence > 0)
    }

    /// Whether `p` is in the frontier: active with no active precursor.
    pub fn in_frontier(&self, p: &Pointstamp) -> bool {
        self.entries
            .get(p)
            .is_some_and(|e| e.occurrence > 0 && e.precursor == 0)
    }

    /// The frontier, sorted canonically for deterministic delivery order.
    pub fn frontier(&self) -> Vec<Pointstamp> {
        let mut out: Vec<Pointstamp> = self
            .entries
            .iter()
            .filter(|(_, e)| e.occurrence > 0 && e.precursor == 0)
            .map(|(p, _)| *p)
            .collect();
        out.sort_by_key(|p| {
            let mut counters = [0u64; crate::time::MAX_LOOP_DEPTH];
            counters[..p.time.depth()].copy_from_slice(p.time.counters.as_slice());
            (p.location, p.time.epoch, counters)
        });
        out
    }

    /// Whether no active pointstamp could-result-in `(time, location)`:
    /// the completeness test used by probes and purge notifications.
    ///
    /// Note this is stricter than frontier membership: an active
    /// pointstamp *at* `(time, location)` itself also blocks completion.
    pub fn done_through(&self, time: &Timestamp, location: Location) -> bool {
        let target = Pointstamp {
            time: *time,
            location,
        };
        !self
            .entries
            .iter()
            .any(|(q, e)| e.occurrence > 0 && self.could_result_in(q, &target))
    }

    /// Whether a notification guaranteed not before `time` at `location`
    /// may fire: no *other* active pointstamp could-result-in it. This is
    /// the frontier test for a notification the table already counts.
    pub fn notification_ready(&self, p: &Pointstamp) -> bool {
        self.in_frontier(p)
    }

    /// The lower bound on future times at `location`: timestamps `t` such
    /// that events may still occur at `(t, location)`. Empty means no
    /// future events are possible there.
    pub fn lower_bound(&self, location: Location) -> Vec<Timestamp> {
        let mut bounds: Vec<Timestamp> = Vec::new();
        for (q, e) in &self.entries {
            if e.occurrence <= 0 {
                continue;
            }
            for s in self
                .graph
                .summaries()
                .between(q.location, location)
                .elements()
            {
                let t = s.apply(&q.time);
                if !bounds.iter().any(|b| b.less_equal(&t)) {
                    bounds.retain(|b| !t.less_equal(b));
                    bounds.push(t);
                }
            }
        }
        bounds
    }

    /// True when no entries remain: every occurrence has been matched by a
    /// retirement and the computation has quiesced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of active pointstamps.
    pub fn active_count(&self) -> usize {
        self.entries.values().filter(|e| e.occurrence > 0).count()
    }

    /// Iterates the active pointstamps (positive occurrence), in no
    /// particular order. The model-checker's safety oracle enumerates the
    /// omniscient reference table through this.
    pub fn active(&self) -> impl Iterator<Item = Pointstamp> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| e.occurrence > 0)
            .map(|(p, _)| *p)
    }

    /// The smallest epoch among *all* active pointstamps — messages and
    /// notifications at any location, not just input vertices. This is
    /// the epoch of the oldest work the dataflow can still perform, and
    /// it is monotone per worker for the same §3.3 reasons as
    /// [`PointstampTable::input_frontier_epoch`]. Telemetry schedule
    /// events attribute scheduling slices to this epoch.
    pub fn min_epoch(&self) -> Option<u64> {
        self.active().map(|p| p.time.epoch).min()
    }

    /// The minimum open input epoch: the smallest epoch among active
    /// pointstamps held at input vertices, or `None` once every input
    /// has closed. Per worker this value is monotone — `advance_to`
    /// journals the new epoch's `+1` before the old epoch's `−1`, and
    /// progress batches apply atomically — which is the §3.3 guarantee
    /// that a local view never moves backwards. The telemetry frontier
    /// probe samples exactly this quantity.
    /// The migration frontier barrier: `true` when no active pointstamp —
    /// message or notification, at any location — carries an epoch at or
    /// below `epoch`. A rescale may only move state once this holds for
    /// the fence's predecessor: every epoch the old membership owned is
    /// then fully drained, so the sharded snapshot is consistent and the
    /// new membership's pointstamp accounting starts from a clean slate
    /// (its fresh [`PointstampTable::initialized`] seeds input stamps at
    /// the fence, not behind it).
    pub fn closed_through(&self, epoch: u64) -> bool {
        self.active().all(|p| p.time.epoch > epoch)
    }

    pub fn input_frontier_epoch(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        for (p, e) in &self.entries {
            if e.occurrence <= 0 {
                continue;
            }
            let Location::Vertex(stage) = p.location else {
                continue;
            };
            if !self.graph.input_stages().any(|s| s == stage) {
                continue;
            }
            min = Some(match min {
                Some(m) => m.min(p.time.epoch),
                None => p.time.epoch,
            });
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConnectorId, ContextId, GraphBuilder, StageId, StageKind};

    fn ts(epoch: u64, counters: &[u64]) -> Timestamp {
        Timestamp::with_counters(epoch, counters)
    }

    /// input(0) → ingress(1) → body(3) ⇄ feedback(2); body → egress(4) → out(5).
    fn loop_graph() -> Arc<LogicalGraph> {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let ctx = g.add_context(ContextId::ROOT);
        let ingress = g.add_ingress("I", ctx);
        let feedback = g.add_feedback("F", ctx);
        let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
        let egress = g.add_egress("E", ctx);
        let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, ingress, 0);
        g.connect(ingress, 0, body, 0);
        g.connect(feedback, 0, body, 1);
        g.connect(body, 0, feedback, 0);
        g.connect(body, 0, egress, 0);
        g.connect(egress, 0, out, 0);
        Arc::new(g.build().unwrap())
    }

    const INPUT: StageId = StageId(0);
    const BODY: StageId = StageId(3);
    const OUT: StageId = StageId(5);

    #[test]
    fn input_epoch_blocks_downstream_notifications() {
        let mut t = PointstampTable::new(loop_graph());
        // The input vertex holds epoch 0 open (§2.3 initialization).
        let input0 = Pointstamp::at_vertex(ts(0, &[]), INPUT);
        t.update(input0, 1);
        // A notification request at the output for epoch 0.
        let out0 = Pointstamp::at_vertex(ts(0, &[]), OUT);
        t.update(out0, 1);
        assert!(t.in_frontier(&input0));
        assert!(!t.in_frontier(&out0), "input could still produce epoch 0");
        assert!(!t.notification_ready(&out0));

        // Epoch 0 completes: +1 at epoch 1, then −1 at epoch 0.
        t.update(Pointstamp::at_vertex(ts(1, &[]), INPUT), 1);
        t.update(input0, -1);
        assert!(t.notification_ready(&out0), "epoch 0 is now complete");
    }

    #[test]
    fn loop_iterations_order_notifications() {
        let mut t = PointstampTable::new(loop_graph());
        let n3 = Pointstamp::at_vertex(ts(0, &[3]), BODY);
        let n4 = Pointstamp::at_vertex(ts(0, &[4]), BODY);
        t.update(n3, 1);
        t.update(n4, 1);
        assert!(t.in_frontier(&n3));
        assert!(!t.in_frontier(&n4), "iteration 3 could feed iteration 4");
        t.update(n3, -1);
        assert!(t.in_frontier(&n4));
    }

    #[test]
    fn messages_block_notifications_at_same_time() {
        let mut t = PointstampTable::new(loop_graph());
        // A message on the ingress→body connector (id 1) at iteration 0.
        let msg = Pointstamp::on_edge(ts(0, &[0]), ConnectorId(1));
        let note = Pointstamp::at_vertex(ts(0, &[0]), BODY);
        t.update(msg, 1);
        t.update(note, 1);
        assert!(!t.notification_ready(&note));
        t.update(msg, -1);
        assert!(t.notification_ready(&note));
    }

    #[test]
    fn transient_negative_counts_are_tolerated() {
        let mut t = PointstampTable::new(loop_graph());
        let p = Pointstamp::on_edge(ts(0, &[]), ConnectorId(0));
        // Retirement arrives before creation (different senders, §3.3).
        t.update(p, -1);
        assert!(!t.is_active(&p));
        assert!(!t.is_empty(), "negative entries keep the table non-empty");
        t.update(p, 1);
        assert!(t.is_empty(), "counts net out to quiescence");
    }

    #[test]
    fn frontier_is_sorted_and_minimal() {
        let mut t = PointstampTable::new(loop_graph());
        t.update(Pointstamp::at_vertex(ts(1, &[]), OUT), 1);
        t.update(Pointstamp::at_vertex(ts(0, &[]), OUT), 1);
        let f = t.frontier();
        assert_eq!(f.len(), 1, "epoch 0 at OUT precedes epoch 1 at OUT");
        assert_eq!(f[0].time.epoch, 0);
    }

    #[test]
    fn done_through_is_stricter_than_frontier() {
        let mut t = PointstampTable::new(loop_graph());
        let out0 = Pointstamp::at_vertex(ts(0, &[]), OUT);
        t.update(out0, 1);
        assert!(t.in_frontier(&out0));
        // The pointstamp itself is still outstanding.
        assert!(!t.done_through(&ts(0, &[]), Location::Vertex(OUT)));
        // But a *later* time is unaffected by nothing upstream... the
        // active pointstamp at epoch 0 could-result-in epoch 1? At the same
        // location: (0) ≤ (1), identity path, so no.
        assert!(!t.done_through(&ts(1, &[]), Location::Vertex(OUT)));
        t.update(out0, -1);
        assert!(t.done_through(&ts(0, &[]), Location::Vertex(OUT)));
    }

    #[test]
    fn lower_bound_projects_through_the_graph() {
        let mut t = PointstampTable::new(loop_graph());
        t.update(Pointstamp::at_vertex(ts(2, &[]), INPUT), 1);
        let lb = t.lower_bound(Location::Vertex(OUT));
        assert_eq!(lb, vec![ts(2, &[])]);
        let lb_body = t.lower_bound(Location::Vertex(BODY));
        assert_eq!(lb_body, vec![ts(2, &[0])]);
    }

    #[test]
    fn active_count_and_updates_batch() {
        let mut t = PointstampTable::new(loop_graph());
        let a = Pointstamp::at_vertex(ts(0, &[]), INPUT);
        let b = Pointstamp::at_vertex(ts(0, &[]), OUT);
        t.apply([(a, 2), (b, 1), (a, -1)]);
        assert_eq!(t.active_count(), 2);
        assert_eq!(t.occurrence(&a), 1);
        t.apply([(a, -1), (b, -1)]);
        assert!(t.is_empty());
    }

    #[test]
    fn input_frontier_epoch_tracks_open_inputs() {
        let mut t = PointstampTable::initialized(loop_graph(), 2);
        assert_eq!(t.input_frontier_epoch(), Some(0));
        // One worker advances to epoch 1: +1 before −1, min stays 0 while
        // the other worker's epoch-0 stamp is open.
        t.update(Pointstamp::at_vertex(ts(1, &[]), INPUT), 1);
        t.update(Pointstamp::at_vertex(ts(0, &[]), INPUT), -1);
        assert_eq!(t.input_frontier_epoch(), Some(0));
        t.update(Pointstamp::at_vertex(ts(1, &[]), INPUT), 1);
        t.update(Pointstamp::at_vertex(ts(0, &[]), INPUT), -1);
        assert_eq!(t.input_frontier_epoch(), Some(1));
        // Non-input pointstamps never count.
        t.update(Pointstamp::at_vertex(ts(0, &[]), OUT), 1);
        assert_eq!(t.input_frontier_epoch(), Some(1));
        t.update(Pointstamp::at_vertex(ts(1, &[]), INPUT), -2);
        assert_eq!(t.input_frontier_epoch(), None, "all inputs closed");
    }

    #[test]
    fn precursor_counts_update_symmetrically() {
        let mut t = PointstampTable::new(loop_graph());
        let early = Pointstamp::at_vertex(ts(0, &[1]), BODY);
        let late = Pointstamp::at_vertex(ts(0, &[5]), BODY);
        // Insert the late one first; activating the earlier one must bump
        // the later one's precursor count.
        t.update(late, 1);
        assert!(t.in_frontier(&late));
        t.update(early, 1);
        assert!(!t.in_frontier(&late));
        assert!(t.in_frontier(&early));
        t.update(early, -1);
        assert!(t.in_frontier(&late));
    }
}
