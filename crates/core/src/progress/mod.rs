//! Progress tracking (§2.3) and the distributed progress protocol (§3.3).
//!
//! Every unprocessed event — a message on a connector or a requested
//! notification at a stage — carries a [`Pointstamp`]. The
//! [`tracker::PointstampTable`] maintains occurrence and precursor counts
//! over active pointstamps and exposes the *frontier*: pointstamps no other
//! active pointstamp could-result-in, whose notifications are safe to
//! deliver.
//!
//! In the distributed runtime each worker holds a local table fed
//! exclusively by broadcast [`ProgressUpdate`]s (§3.3); the
//! [`protocol`] module implements the update encoding and the buffering
//! accumulators whose traffic Figure 6c measures.

pub mod modelcheck;
pub mod protocol;
pub mod tracker;

pub use protocol::{
    Accumulator, BatchEmitter, FifoChecker, FifoViolation, GroupCore, ProgressBatch, ProgressMode,
    WorkerCore,
};
pub use tracker::PointstampTable;

use naiad_wire::{Wire, WireError};

use crate::graph::{ConnectorId, Location, StageId};
use crate::time::Timestamp;

/// A timestamp at a location: the coordinate of an unprocessed event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pointstamp {
    /// The event's logical timestamp.
    pub time: Timestamp,
    /// The (projected) location: a stage for notifications, a connector
    /// for messages.
    pub location: Location,
}

impl Pointstamp {
    /// A message pointstamp on a connector.
    pub fn on_edge(time: Timestamp, connector: ConnectorId) -> Self {
        Pointstamp {
            time,
            location: Location::Edge(connector),
        }
    }

    /// A notification pointstamp at a stage.
    pub fn at_vertex(time: Timestamp, stage: StageId) -> Self {
        Pointstamp {
            time,
            location: Location::Vertex(stage),
        }
    }
}

impl Wire for Pointstamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self.location {
            Location::Vertex(s) => {
                buf.push(0);
                s.0.encode(buf);
            }
            Location::Edge(c) => {
                buf.push(1);
                c.0.encode(buf);
            }
        }
        self.time.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        let location = match tag {
            0 => Location::Vertex(StageId(usize::decode(input)?)),
            1 => Location::Edge(ConnectorId(usize::decode(input)?)),
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(Pointstamp {
            time: Timestamp::decode(input)?,
            location,
        })
    }

    fn encoded_len(&self) -> usize {
        let loc = match self.location {
            Location::Vertex(s) => s.0.encoded_len(),
            Location::Edge(c) => c.0.encoded_len(),
        };
        1 + loc + self.time.encoded_len()
    }
}

/// A signed change to a pointstamp's occurrence count (§3.3).
pub type ProgressUpdate = (Pointstamp, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointstamps_roundtrip() {
        let ps = [
            Pointstamp::at_vertex(Timestamp::new(3), StageId(7)),
            Pointstamp::on_edge(Timestamp::with_counters(1, &[4, 2]), ConnectorId(0)),
        ];
        for p in ps {
            let bytes = naiad_wire::encode_to_vec(&p);
            assert_eq!(bytes.len(), p.encoded_len());
            assert_eq!(
                naiad_wire::decode_from_slice::<Pointstamp>(&bytes).unwrap(),
                p
            );
        }
    }

    #[test]
    fn pointstamp_rejects_bad_location_tag() {
        assert!(naiad_wire::decode_from_slice::<Pointstamp>(&[2, 0, 0, 0]).is_err());
    }

    #[test]
    fn small_pointstamps_encode_compactly() {
        // Stage 3, epoch 5, no counters: tag + stage + epoch + len = 4 bytes.
        let p = Pointstamp::at_vertex(Timestamp::new(5), StageId(3));
        assert_eq!(p.encoded_len(), 4);
    }
}
