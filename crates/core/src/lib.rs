//! Naiad: a timely dataflow system, reproduced in Rust.
//!
//! This crate implements the computational model and distributed runtime of
//! *Naiad: A Timely Dataflow System* (Murray et al., SOSP 2013):
//!
//! * [`time`] — logical timestamps `(epoch, ⟨loop counters⟩)` (§2.1),
//! * [`order`] — partial orders, antichains, frontiers,
//! * [`summary`] — canonical path summaries (§2.3),
//! * [`graph`] — logical graphs, loop contexts, structural validation, and
//!   the could-result-in relation (§2.1, §2.3),
//! * [`progress`] — the pointstamp tracker (occurrence and precursor
//!   counts, §2.3) and the distributed progress protocol with update
//!   accumulation (§3.3),
//! * [`runtime`] — workers, exchange channels, fault tolerance (§3),
//! * [`dataflow`] — the typed graph-assembly interface (§4.3),
//! * [`telemetry`] — per-worker event logs, the unified metrics
//!   registry, and frontier probes (§5–§6 measurement substrate),
//! * [`introspect`] — self-hosted critical-path analysis: the telemetry
//!   stream fed into a second dataflow on the same runtime, straggler
//!   attribution, and the autotuning loop (§5.3, Fig 6a).
//!
//! # Examples
//!
//! A two-worker computation that routes records by parity and reports
//! each epoch's records as the epoch completes:
//!
//! ```
//! use naiad::dataflow::{InputPort, OutputPort};
//! use naiad::runtime::Pact;
//! use naiad::{execute, Config};
//!
//! let results = execute(Config::single_process(2), |worker| {
//!     let (mut input, captured) = worker.dataflow(|scope| {
//!         let (input, stream) = scope.new_input::<u64>();
//!         let doubled = stream.unary(
//!             Pact::exchange(|x: &u64| *x),
//!             "Double",
//!             |_info| {
//!                 |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
//!                     input.for_each(|time, data| {
//!                         output
//!                             .session(time)
//!                             .give_iterator(data.into_iter().map(|x| x * 2));
//!                     });
//!                 }
//!             },
//!         );
//!         (input, doubled.capture())
//!     });
//!     if worker.index() == 0 {
//!         input.send_batch([1, 2, 3]);
//!     }
//!     input.close();
//!     worker.step_until_done();
//!     let result = captured.borrow().clone();
//!     result
//! })
//! .unwrap();
//! let mut all: Vec<u64> = results
//!     .into_iter()
//!     .flatten()
//!     .flat_map(|(_, data)| data)
//!     .collect();
//! all.sort_unstable();
//! assert_eq!(all, vec![2, 4, 6]);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod dataflow;
pub mod graph;
pub mod introspect;
pub mod order;
pub mod progress;
pub mod runtime;
pub mod summary;
pub mod telemetry;
pub mod time;

pub use dataflow::{InputHandle, ProbeHandle, Scope, Stream};
pub use introspect::{
    execute_with_introspection, Autotuner, CriticalPathSummary, IntrospectOptions,
    IntrospectReport, TuningDecision,
};
pub use order::{Antichain, MutableAntichain, PartialOrder};
pub use runtime::execute::{execute, execute_with_metrics, execute_with_telemetry, ExecuteError};
pub use telemetry::TelemetrySnapshot;
pub use runtime::recovery::{execute_resilient, Recovery, RecoveryOptions, ResilientReport};
pub use runtime::rescale::{
    execute_elastic, ElasticOptions, ElasticPlan, ElasticReport, ElasticSession, PhaseReport,
    RescaleError, RescaleOutcome, RescaleStep,
};
pub use runtime::{Config, FlowConfig, OverloadState, Pact, ShedPolicy, Worker};
pub use time::Timestamp;

/// Re-export of the wire codec used for exchanged records.
pub use naiad_wire as wire;
pub use naiad_wire::ExchangeData;
