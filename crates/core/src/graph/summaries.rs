//! All-pairs path summaries Ψ and the could-result-in relation (§2.3).

use super::{Connector, Location, LogicalGraph, StageId};
use crate::order::Antichain;
use crate::summary::Summary;
use crate::time::Timestamp;

/// The minimal path summaries between every pair of locations.
///
/// `could-result-in((t₁, l₁), (t₂, l₂))` holds iff some summary
/// `s ∈ Ψ[l₁, l₂]` satisfies `s(t₁) ≤ t₂`. The matrix is dense over
/// locations (stages then connectors), which is affordable because it is
/// built for the *logical* graph (§3.1): its size is independent of the
/// number of workers.
#[derive(Debug, Clone)]
pub struct SummaryMatrix {
    stages: usize,
    locations: usize,
    cells: Vec<Antichain<Summary>>,
}

impl SummaryMatrix {
    pub(crate) fn empty() -> Self {
        SummaryMatrix {
            stages: 0,
            locations: 0,
            cells: Vec::new(),
        }
    }

    /// Index of a location in the matrix.
    fn index(&self, location: Location) -> usize {
        match location {
            Location::Vertex(s) => s.0,
            Location::Edge(c) => self.stages + c.0,
        }
    }

    /// Computes the matrix by relaxation over the location graph: each
    /// connector contributes an identity arc from its edge location to the
    /// destination vertex, and each stage contributes its timestamp-action
    /// arc from its vertex location to every outgoing edge location.
    pub(crate) fn compute(graph: &LogicalGraph) -> Self {
        let stages = graph.stages.len();
        let locations = stages + graph.connectors.len();
        let mut matrix = SummaryMatrix {
            stages,
            locations,
            cells: vec![Antichain::new(); locations * locations],
        };

        // Arcs of the location graph, each with its summary.
        let mut arcs: Vec<(usize, usize, Summary)> = Vec::new();
        for (ci, Connector { src, dst }) in graph.connectors.iter().enumerate() {
            let edge_loc = stages + ci;
            // Message delivery: edge → destination vertex, identity.
            arcs.push((
                edge_loc,
                dst.0 .0,
                Summary::identity(graph.connector_depth(super::ConnectorId(ci))),
            ));
            // Stage action: source vertex → this edge.
            arcs.push((src.0 .0, edge_loc, graph.stage_summary(src.0)));
        }

        // Seed the diagonal with identities.
        for loc in 0..locations {
            let depth = matrix.location_depth(graph, loc);
            let idx = loc * locations + loc;
            matrix.cells[idx].insert(Summary::identity(depth));
        }

        // Relax until fixpoint. Dominated summaries are discarded by the
        // antichains, which bounds the iteration (see summary module docs).
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b, step) in &arcs {
                for l1 in 0..locations {
                    let from = l1 * locations + a;
                    if matrix.cells[from].is_empty() {
                        continue;
                    }
                    let candidates: Vec<Summary> = matrix.cells[from]
                        .elements()
                        .iter()
                        .map(|s| s.then(&step))
                        .collect();
                    let to = l1 * locations + b;
                    for c in candidates {
                        if matrix.cells[to].insert(c) {
                            changed = true;
                        }
                    }
                }
            }
        }
        matrix
    }

    fn location_depth(&self, graph: &LogicalGraph, loc: usize) -> usize {
        if loc < self.stages {
            graph.stage_input_depth(StageId(loc))
        } else {
            graph.connector_depth(super::ConnectorId(loc - self.stages))
        }
    }

    /// The minimal summaries from `from` to `to`; empty if no path exists.
    pub fn between(&self, from: Location, to: Location) -> &Antichain<Summary> {
        &self.cells[self.index(from) * self.locations + self.index(to)]
    }

    /// Whether an event at `(t1, l1)` could result in an event at
    /// `(t2, l2)` (§2.3): some path summary maps `t1` to a timestamp at or
    /// before `t2`.
    pub fn could_result_in(
        &self,
        t1: &Timestamp,
        l1: Location,
        t2: &Timestamp,
        l2: Location,
    ) -> bool {
        self.between(l1, l2).elements().iter().any(|s| {
            use crate::order::PartialOrder;
            s.apply(t1).less_equal(t2)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ContextId, GraphBuilder, StageKind};

    fn ts(epoch: u64, counters: &[u64]) -> Timestamp {
        Timestamp::with_counters(epoch, counters)
    }

    /// input(0) → ingress(1) → body(3) ⇄ feedback(2); body → egress(4) → out(5).
    fn loop_graph() -> LogicalGraph {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let ctx = g.add_context(ContextId::ROOT);
        let ingress = g.add_ingress("I", ctx);
        let feedback = g.add_feedback("F", ctx);
        let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
        let egress = g.add_egress("E", ctx);
        let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, ingress, 0);
        g.connect(ingress, 0, body, 0);
        g.connect(feedback, 0, body, 1);
        g.connect(body, 0, feedback, 0);
        g.connect(body, 0, egress, 0);
        g.connect(egress, 0, out, 0);
        g.build().unwrap()
    }

    const INPUT: Location = Location::Vertex(StageId(0));
    const BODY: Location = Location::Vertex(StageId(3));
    const OUT: Location = Location::Vertex(StageId(5));

    #[test]
    fn forward_paths_exist() {
        let g = loop_graph();
        let m = g.summaries();
        // Input at epoch 0 could result in body work at iteration 0.
        assert!(m.could_result_in(&ts(0, &[]), INPUT, &ts(0, &[0]), BODY));
        // ... and at any later iteration.
        assert!(m.could_result_in(&ts(0, &[]), INPUT, &ts(0, &[7]), BODY));
        // ... and at downstream output.
        assert!(m.could_result_in(&ts(0, &[]), INPUT, &ts(0, &[]), OUT));
        // But not at an earlier epoch.
        assert!(!m.could_result_in(&ts(1, &[]), INPUT, &ts(0, &[5]), BODY));
    }

    #[test]
    fn feedback_advances_iterations() {
        let g = loop_graph();
        let m = g.summaries();
        // Body work at iteration 3 could cause body work at iteration 4
        // (via feedback) but not at iteration 3 again or earlier.
        assert!(m.could_result_in(&ts(0, &[3]), BODY, &ts(0, &[4]), BODY));
        assert!(m.could_result_in(&ts(0, &[3]), BODY, &ts(0, &[3]), BODY));
        assert!(!m.could_result_in(&ts(0, &[4]), BODY, &ts(0, &[3]), BODY));
    }

    #[test]
    fn self_summary_is_identity_plus_cycle() {
        let g = loop_graph();
        let m = g.summaries();
        let around = m.between(BODY, BODY);
        // The feedback cycle's summary (inc 1) is dominated by the
        // identity — could-result-in only needs the minimal summary — so
        // the antichain holds exactly the identity.
        assert_eq!(around.len(), 1);
        assert!(around.elements()[0].is_identity_at(1));
    }

    #[test]
    fn no_backward_paths() {
        let g = loop_graph();
        let m = g.summaries();
        assert!(m.between(OUT, INPUT).is_empty());
        assert!(m.between(BODY, INPUT).is_empty());
        assert!(!m.could_result_in(&ts(0, &[]), OUT, &ts(9, &[]), INPUT));
    }

    #[test]
    fn egress_projects_iterations_away() {
        let g = loop_graph();
        let m = g.summaries();
        // Work inside the loop at any iteration could reach the output at
        // the same epoch.
        assert!(m.could_result_in(&ts(2, &[9]), BODY, &ts(2, &[]), OUT));
        assert!(!m.could_result_in(&ts(2, &[9]), BODY, &ts(1, &[]), OUT));
    }

    #[test]
    fn edge_locations_participate() {
        let g = loop_graph();
        let m = g.summaries();
        // Connector 0 is input→ingress at depth 0.
        let edge = Location::Edge(crate::graph::ConnectorId(0));
        assert!(m.could_result_in(&ts(0, &[]), edge, &ts(0, &[0]), BODY));
        assert!(!m.could_result_in(&ts(1, &[]), edge, &ts(0, &[0]), BODY));
    }

    #[test]
    fn nested_loop_summaries() {
        // Two nested loops; check that inner iterations project to outer.
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let outer = g.add_context(ContextId::ROOT);
        let inner = g.add_context(outer);
        let i1 = g.add_ingress("I1", outer);
        let i2 = g.add_ingress("I2", inner);
        let f1 = g.add_feedback("F1", outer);
        let f2 = g.add_feedback("F2", inner);
        let ob = g.add_stage("outer_body", StageKind::Regular, outer, 2, 1);
        let ib = g.add_stage("inner_body", StageKind::Regular, inner, 2, 1);
        let e2 = g.add_egress("E2", inner);
        let e1 = g.add_egress("E1", outer);
        let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, i1, 0);
        g.connect(i1, 0, ob, 0);
        g.connect(f1, 0, ob, 1);
        g.connect(ob, 0, i2, 0);
        g.connect(i2, 0, ib, 0);
        g.connect(f2, 0, ib, 1);
        g.connect(ib, 0, f2, 0);
        g.connect(ib, 0, e2, 0);
        g.connect(e2, 0, f1, 0);
        g.connect(e2, 0, e1, 0);
        g.connect(e1, 0, out, 0);
        let graph = g.build().unwrap();
        let m = graph.summaries();
        let ib_loc = Location::Vertex(ib);
        // Inner work at (outer 2, inner 5) can reach (outer 2, inner 6)
        // and (outer 3, inner 0), but not (outer 2, inner 4).
        assert!(m.could_result_in(&ts(0, &[2, 5]), ib_loc, &ts(0, &[2, 6]), ib_loc));
        assert!(m.could_result_in(&ts(0, &[2, 5]), ib_loc, &ts(0, &[3, 0]), ib_loc));
        assert!(!m.could_result_in(&ts(0, &[2, 5]), ib_loc, &ts(0, &[2, 4]), ib_loc));
        // And it can exit entirely.
        assert!(m.could_result_in(&ts(0, &[2, 5]), ib_loc, &ts(0, &[]), Location::Vertex(out)));
    }
}
