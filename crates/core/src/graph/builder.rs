//! Graph construction and structural validation (§4.3).

use super::summaries::SummaryMatrix;
use super::{
    Connector, ConnectorId, Context, ContextId, LogicalGraph, PactKind, Stage, StageId, StageKind,
};
use crate::analysis::{self, AnalysisConfig, AnalysisReport, Diagnostic};
use crate::time::{Timestamp, MAX_LOOP_DEPTH};

/// Errors detected while assembling or validating a logical graph.
///
/// Every variant carries the human-readable stage *name* (as passed to
/// [`GraphBuilder::add_stage`] and friends) alongside the numeric id, so
/// error messages point at the user's own vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A port index was out of range for its stage.
    PortOutOfRange {
        stage: StageId,
        name: String,
        port: usize,
        output: bool,
    },
    /// A connector joins ports in different loop contexts.
    ContextMismatch {
        src: StageId,
        src_name: String,
        dst: StageId,
        dst_name: String,
    },
    /// An input port has no connector (every stage input must be fed).
    UnconnectedInput {
        stage: StageId,
        name: String,
        port: usize,
    },
    /// An input port has more than one incoming connector.
    MultiplyConnectedInput {
        stage: StageId,
        name: String,
        port: usize,
    },
    /// A cycle does not pass through a feedback stage of its context
    /// (§2.1's structural constraint), so progress could never be made.
    InvalidCycle { stage: StageId, name: String },
    /// Loop contexts nest deeper than [`MAX_LOOP_DEPTH`].
    TooDeep,
    /// The static analyzer ([`crate::analysis`]) denied the graph: the
    /// first deny-severity diagnostic, with the full report attached.
    /// Boxed so the error stays pointer-sized next to the structural
    /// variants (clippy: `result_large_err`).
    Analysis {
        /// The denying diagnostic.
        diagnostic: Box<Diagnostic>,
        /// Every diagnostic the analyzer produced.
        report: Box<AnalysisReport>,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::PortOutOfRange {
                stage,
                name,
                port,
                output,
            } => {
                let dir = if *output { "output" } else { "input" };
                write!(
                    f,
                    "{dir} port {port} out of range for stage '{name}' ({stage:?})"
                )
            }
            GraphError::ContextMismatch {
                src,
                src_name,
                dst,
                dst_name,
            } => write!(
                f,
                "connector from '{src_name}' ({src:?}) to '{dst_name}' ({dst:?}) \
                 crosses loop contexts without ingress/egress"
            ),
            GraphError::UnconnectedInput { stage, name, port } => {
                write!(
                    f,
                    "input port {port} of stage '{name}' ({stage:?}) is not connected"
                )
            }
            GraphError::MultiplyConnectedInput { stage, name, port } => {
                write!(
                    f,
                    "input port {port} of stage '{name}' ({stage:?}) has multiple connectors"
                )
            }
            GraphError::InvalidCycle { stage, name } => write!(
                f,
                "cycle through stage '{name}' ({stage:?}) does not pass a feedback \
                 stage of its context"
            ),
            GraphError::TooDeep => {
                write!(
                    f,
                    "loop contexts nest deeper than MAX_LOOP_DEPTH ({MAX_LOOP_DEPTH})"
                )
            }
            GraphError::Analysis { diagnostic, report } => {
                write!(
                    f,
                    "static analysis denied the dataflow: {diagnostic} \
                     ({} error(s), {} warning(s) in total)",
                    report.error_count(),
                    report.warning_count()
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Assembles a logical graph: stages, connectors, and loop contexts.
///
/// # Examples
///
/// ```
/// use naiad::graph::{GraphBuilder, ContextId, StageKind};
///
/// let mut g = GraphBuilder::new();
/// let input = g.add_stage("input", StageKind::Input, ContextId::ROOT, 0, 1);
/// let ctx = g.add_context(ContextId::ROOT);
/// let ingress = g.add_ingress("enter", ctx);
/// let feedback = g.add_feedback("loop", ctx);
/// let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
/// let egress = g.add_egress("leave", ctx);
/// g.connect(input, 0, ingress, 0);
/// g.connect(ingress, 0, body, 0);
/// g.connect(feedback, 0, body, 1);
/// g.connect(body, 0, feedback, 0);
/// g.connect(body, 0, egress, 0);
/// let graph = g.build().unwrap();
/// assert_eq!(graph.stages().len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    stages: Vec<Stage>,
    connectors: Vec<Connector>,
    /// Per-connector partitioning contract, parallel to `connectors`.
    pacts: Vec<PactKind>,
    contexts: Vec<Context>,
    /// Notification interests declared during construction, handed to the
    /// static analyzer.
    notification_requests: Vec<(StageId, Timestamp)>,
    /// Stages that registered checkpointable state, with whether the state
    /// is keyed (partitionable across a worker-count change). Handed to
    /// NA0006's rescale-contracts mode.
    stateful: Vec<(StageId, bool)>,
}

impl GraphBuilder {
    /// A builder holding only the root streaming context.
    pub fn new() -> Self {
        GraphBuilder {
            stages: Vec::new(),
            connectors: Vec::new(),
            pacts: Vec::new(),
            contexts: vec![Context {
                parent: None,
                depth: 0,
            }],
            notification_requests: Vec::new(),
            stateful: Vec::new(),
        }
    }

    /// The parent of a context (`None` for the root).
    pub fn context_parent(&self, context: ContextId) -> Option<ContextId> {
        self.contexts[context.0].parent
    }

    /// Adds a loop context nested within `parent`.
    pub fn add_context(&mut self, parent: ContextId) -> ContextId {
        assert!(parent.0 < self.contexts.len(), "unknown parent context");
        let depth = self.contexts[parent.0].depth + 1;
        self.contexts.push(Context {
            parent: Some(parent),
            depth,
        });
        ContextId(self.contexts.len() - 1)
    }

    /// Adds a stage with the given port counts.
    ///
    /// # Panics
    ///
    /// Panics if `context` is unknown, or if `kind` is a system kind —
    /// use [`GraphBuilder::add_ingress`] and friends for those.
    pub fn add_stage(
        &mut self,
        name: &str,
        kind: StageKind,
        context: ContextId,
        inputs: usize,
        outputs: usize,
    ) -> StageId {
        assert!(context.0 < self.contexts.len(), "unknown context");
        assert!(
            matches!(kind, StageKind::Regular | StageKind::Input),
            "system stages are added via add_ingress/add_egress/add_feedback"
        );
        assert!(
            kind != StageKind::Input || inputs == 0,
            "input stages take no dataflow inputs"
        );
        self.push_stage(name, kind, context, inputs, outputs)
    }

    /// Adds the ingress stage entering `context`.
    pub fn add_ingress(&mut self, name: &str, context: ContextId) -> StageId {
        assert!(
            self.contexts[context.0].parent.is_some(),
            "cannot ingress into the root context"
        );
        self.push_stage(name, StageKind::Ingress, context, 1, 1)
    }

    /// Adds the egress stage leaving `context`.
    pub fn add_egress(&mut self, name: &str, context: ContextId) -> StageId {
        assert!(
            self.contexts[context.0].parent.is_some(),
            "cannot egress from the root context"
        );
        self.push_stage(name, StageKind::Egress, context, 1, 1)
    }

    /// Adds the feedback stage of `context`.
    pub fn add_feedback(&mut self, name: &str, context: ContextId) -> StageId {
        assert!(
            self.contexts[context.0].parent.is_some(),
            "feedback requires a loop context"
        );
        self.push_stage(name, StageKind::Feedback, context, 1, 1)
    }

    fn push_stage(
        &mut self,
        name: &str,
        kind: StageKind,
        context: ContextId,
        inputs: usize,
        outputs: usize,
    ) -> StageId {
        self.stages.push(Stage {
            name: name.to_string(),
            kind,
            context,
            inputs,
            outputs,
        });
        StageId(self.stages.len() - 1)
    }

    /// Adds one input port to a regular stage, returning its index.
    ///
    /// Used by the generic operator builder, which discovers its port
    /// count as inputs are attached.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not a regular stage.
    pub fn add_input_port(&mut self, stage: StageId) -> usize {
        let s = &mut self.stages[stage.0];
        assert_eq!(
            s.kind,
            StageKind::Regular,
            "ports grow on regular stages only"
        );
        s.inputs += 1;
        s.inputs - 1
    }

    /// Adds one output port to a regular stage, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not a regular stage.
    pub fn add_output_port(&mut self, stage: StageId) -> usize {
        let s = &mut self.stages[stage.0];
        assert_eq!(
            s.kind,
            StageKind::Regular,
            "ports grow on regular stages only"
        );
        s.outputs += 1;
        s.outputs - 1
    }

    /// The context in which an output port's records are observed.
    fn output_context(&self, stage: StageId) -> ContextId {
        let s = &self.stages[stage.0];
        match s.kind {
            StageKind::Egress => self.contexts[s.context.0]
                .parent
                .expect("egress stages require a parent context"),
            _ => s.context,
        }
    }

    /// The context in which an input port's records are produced.
    fn input_context(&self, stage: StageId) -> ContextId {
        let s = &self.stages[stage.0];
        match s.kind {
            StageKind::Ingress => self.contexts[s.context.0]
                .parent
                .expect("ingress stages require a parent context"),
            _ => s.context,
        }
    }

    /// Connects `src`'s output port to `dst`'s input port with a
    /// [`PactKind::Pipeline`] contract.
    ///
    /// Errors are deferred to [`GraphBuilder::build`] so construction code
    /// can stay straight-line; this method only records the connector.
    pub fn connect(
        &mut self,
        src: StageId,
        src_port: usize,
        dst: StageId,
        dst_port: usize,
    ) -> ConnectorId {
        self.connect_with(src, src_port, dst, dst_port, PactKind::Pipeline)
    }

    /// Connects `src`'s output port to `dst`'s input port, recording the
    /// partitioning contract for the static analyzer.
    pub fn connect_with(
        &mut self,
        src: StageId,
        src_port: usize,
        dst: StageId,
        dst_port: usize,
        pact: PactKind,
    ) -> ConnectorId {
        self.connectors.push(Connector {
            src: (src, src_port),
            dst: (dst, dst_port),
        });
        self.pacts.push(pact);
        ConnectorId(self.connectors.len() - 1)
    }

    /// Declares that `stage` will request a notification at `time` once
    /// running. The runtime records construction-time `notify_at` calls
    /// here automatically; hand-built graphs may declare interests
    /// directly so the analyzer's `NA0003` rule can check them.
    pub fn declare_notification(&mut self, stage: StageId, time: Timestamp) {
        self.notification_requests.push((stage, time));
    }

    /// Declares that `stage` holds checkpointable state; `keyed` records
    /// whether the state is partitioned by the operator's exchange key
    /// (and can therefore migrate across a worker-count change). The
    /// runtime records `register_state`/`register_keyed_state` calls here
    /// automatically; NA0006's rescale-contracts mode consumes the facts.
    pub fn declare_stateful(&mut self, stage: StageId, keyed: bool) {
        self.stateful.push((stage, keyed));
    }

    /// The debug name of a stage added so far (diagnostics).
    pub(crate) fn stage_name(&self, stage: StageId) -> &str {
        &self.stages[stage.0].name
    }

    /// Validates the structure and computes all-pairs path summaries.
    pub fn build(self) -> Result<LogicalGraph, GraphError> {
        self.validate_ports()?;
        self.validate_contexts()?;
        self.validate_inputs()?;
        self.validate_cycles()?;
        if self.contexts.iter().any(|c| c.depth > MAX_LOOP_DEPTH) {
            return Err(GraphError::TooDeep);
        }
        let mut graph = LogicalGraph {
            stages: self.stages,
            connectors: self.connectors,
            contexts: self.contexts,
            summaries: SummaryMatrix::empty(),
            pacts: self.pacts,
            notification_requests: self.notification_requests,
            stateful: self.stateful,
        };
        graph.summaries = SummaryMatrix::compute(&graph);
        Ok(graph)
    }

    /// Like [`GraphBuilder::build`], then runs the static analyzer
    /// ([`crate::analysis`]) over the validated graph and its all-pairs
    /// path summaries. Diagnostics at or above
    /// [`AnalysisConfig::deny`](crate::analysis::AnalysisConfig) severity
    /// reject the graph with [`GraphError::Analysis`]; the full
    /// [`AnalysisReport`] is returned alongside the graph otherwise.
    pub fn build_checked(
        self,
        config: &AnalysisConfig,
    ) -> Result<(LogicalGraph, AnalysisReport), GraphError> {
        let graph = self.build()?;
        let report = analysis::analyze(&graph, config);
        if let Some(diagnostic) = report.first_denied(config) {
            return Err(GraphError::Analysis {
                diagnostic: Box::new(diagnostic.clone()),
                report: Box::new(report),
            });
        }
        Ok((graph, report))
    }

    fn validate_ports(&self) -> Result<(), GraphError> {
        for c in &self.connectors {
            let (src, sp) = c.src;
            let (dst, dp) = c.dst;
            if sp >= self.stages[src.0].outputs {
                return Err(GraphError::PortOutOfRange {
                    stage: src,
                    name: self.stage_name(src).to_string(),
                    port: sp,
                    output: true,
                });
            }
            if dp >= self.stages[dst.0].inputs {
                return Err(GraphError::PortOutOfRange {
                    stage: dst,
                    name: self.stage_name(dst).to_string(),
                    port: dp,
                    output: false,
                });
            }
        }
        Ok(())
    }

    fn validate_contexts(&self) -> Result<(), GraphError> {
        for c in &self.connectors {
            if self.output_context(c.src.0) != self.input_context(c.dst.0) {
                return Err(GraphError::ContextMismatch {
                    src: c.src.0,
                    src_name: self.stage_name(c.src.0).to_string(),
                    dst: c.dst.0,
                    dst_name: self.stage_name(c.dst.0).to_string(),
                });
            }
        }
        Ok(())
    }

    fn validate_inputs(&self) -> Result<(), GraphError> {
        for (i, stage) in self.stages.iter().enumerate() {
            for port in 0..stage.inputs {
                let count = self
                    .connectors
                    .iter()
                    .filter(|c| c.dst == (StageId(i), port))
                    .count();
                if count == 0 {
                    return Err(GraphError::UnconnectedInput {
                        stage: StageId(i),
                        name: stage.name.clone(),
                        port,
                    });
                }
                if count > 1 {
                    return Err(GraphError::MultiplyConnectedInput {
                        stage: StageId(i),
                        name: stage.name.clone(),
                        port,
                    });
                }
            }
        }
        Ok(())
    }

    /// With feedback stages' internal input→output path removed, the stage
    /// graph must be acyclic: then every cycle in the full graph passes a
    /// feedback stage, and (because connectors cannot cross contexts) that
    /// feedback belongs to the cycle's own innermost context — §2.1's
    /// requirement.
    fn validate_cycles(&self) -> Result<(), GraphError> {
        let n = self.stages.len();
        let mut adj = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for c in &self.connectors {
            if self.stages[c.dst.0 .0].kind == StageKind::Feedback {
                continue; // Cut the graph at feedback inputs.
            }
            adj[c.src.0 .0].push(c.dst.0 .0);
            indeg[c.dst.0 .0] += 1;
        }
        // Kahn's algorithm; any residue is an invalid cycle.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            let stage = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(StageId)
                .expect("residue implies a positive in-degree stage");
            Err(GraphError::InvalidCycle {
                stage,
                name: self.stage_name(stage).to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_graph() -> GraphBuilder {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let ctx = g.add_context(ContextId::ROOT);
        let ingress = g.add_ingress("I", ctx);
        let feedback = g.add_feedback("F", ctx);
        let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
        let egress = g.add_egress("E", ctx);
        let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, ingress, 0);
        g.connect(ingress, 0, body, 0);
        g.connect(feedback, 0, body, 1);
        g.connect(body, 0, feedback, 0);
        g.connect(body, 0, egress, 0);
        g.connect(egress, 0, out, 0);
        g
    }

    #[test]
    fn valid_loop_builds() {
        let graph = loop_graph().build().unwrap();
        assert_eq!(graph.stages().len(), 6);
        assert_eq!(graph.connectors().len(), 6);
        assert_eq!(graph.contexts().len(), 2);
    }

    #[test]
    fn depths_follow_contexts() {
        let graph = loop_graph().build().unwrap();
        // Stage ids in construction order: input=0, ingress=1,
        // feedback=2, body=3, egress=4, out=5.
        assert_eq!(graph.stage_input_depth(StageId(1)), 0, "ingress input");
        assert_eq!(graph.stage_output_depth(StageId(1)), 1, "ingress output");
        assert_eq!(graph.stage_input_depth(StageId(4)), 1, "egress input");
        assert_eq!(graph.stage_output_depth(StageId(4)), 0, "egress output");
        assert_eq!(graph.stage_input_depth(StageId(3)), 1, "body");
        assert_eq!(graph.stage_input_depth(StageId(0)), 0, "input");
    }

    #[test]
    fn cycle_without_feedback_is_rejected() {
        let mut g = GraphBuilder::new();
        let ctx = g.add_context(ContextId::ROOT);
        let a = g.add_stage("a", StageKind::Regular, ctx, 1, 1);
        let b = g.add_stage("b", StageKind::Regular, ctx, 1, 1);
        g.connect(a, 0, b, 0);
        g.connect(b, 0, a, 0);
        assert!(matches!(g.build(), Err(GraphError::InvalidCycle { .. })));
    }

    #[test]
    fn cross_context_connector_is_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.add_stage("a", StageKind::Input, ContextId::ROOT, 0, 1);
        let ctx = g.add_context(ContextId::ROOT);
        let b = g.add_stage("b", StageKind::Regular, ctx, 1, 0);
        g.connect(a, 0, b, 0);
        assert!(matches!(g.build(), Err(GraphError::ContextMismatch { .. })));
    }

    #[test]
    fn sibling_contexts_do_not_connect() {
        let mut g = GraphBuilder::new();
        let ctx_a = g.add_context(ContextId::ROOT);
        let ctx_b = g.add_context(ContextId::ROOT);
        let a = g.add_stage("a", StageKind::Regular, ctx_a, 0, 1);
        let b = g.add_stage("b", StageKind::Regular, ctx_b, 1, 0);
        g.connect(a, 0, b, 0);
        assert!(matches!(g.build(), Err(GraphError::ContextMismatch { .. })));
    }

    #[test]
    fn unconnected_input_is_rejected() {
        let mut g = GraphBuilder::new();
        let _a = g.add_stage("a", StageKind::Regular, ContextId::ROOT, 1, 0);
        assert!(matches!(
            g.build(),
            Err(GraphError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn doubly_connected_input_is_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.add_stage("a", StageKind::Input, ContextId::ROOT, 0, 1);
        let b = g.add_stage("b", StageKind::Input, ContextId::ROOT, 0, 1);
        let c = g.add_stage("c", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(a, 0, c, 0);
        g.connect(b, 0, c, 0);
        assert!(matches!(
            g.build(),
            Err(GraphError::MultiplyConnectedInput { .. })
        ));
    }

    #[test]
    fn bad_port_is_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.add_stage("a", StageKind::Input, ContextId::ROOT, 0, 1);
        let b = g.add_stage("b", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(a, 1, b, 0);
        assert!(matches!(
            g.build(),
            Err(GraphError::PortOutOfRange { output: true, .. })
        ));
    }

    #[test]
    fn nested_contexts_build() {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let outer = g.add_context(ContextId::ROOT);
        let inner = g.add_context(outer);
        let i1 = g.add_ingress("I1", outer);
        let i2 = g.add_ingress("I2", inner);
        let f2 = g.add_feedback("F2", inner);
        let body = g.add_stage("body", StageKind::Regular, inner, 2, 1);
        let e2 = g.add_egress("E2", inner);
        let e1 = g.add_egress("E1", outer);
        g.connect(input, 0, i1, 0);
        g.connect(i1, 0, i2, 0);
        g.connect(i2, 0, body, 0);
        g.connect(f2, 0, body, 1);
        g.connect(body, 0, f2, 0);
        g.connect(body, 0, e2, 0);
        g.connect(e2, 0, e1, 0);
        let graph = g.build().unwrap();
        assert_eq!(graph.stage_input_depth(body), 2);
        assert_eq!(graph.stage_output_depth(e1), 0);
    }

    #[test]
    fn too_deep_nesting_is_rejected() {
        let mut g = GraphBuilder::new();
        let mut ctx = ContextId::ROOT;
        for _ in 0..=MAX_LOOP_DEPTH {
            ctx = g.add_context(ctx);
        }
        // A stage so validation has something to traverse.
        let _ = g.add_stage("a", StageKind::Regular, ctx, 0, 0);
        assert_eq!(g.build().unwrap_err(), GraphError::TooDeep);
    }
}
