//! Logical dataflow graphs (§2.1, §3.1).
//!
//! A program describes its computation as a *logical* graph of stages
//! linked by connectors; at execution time every worker instantiates one
//! vertex per stage (the *physical* expansion). Progress tracking operates
//! on the logical graph throughout: pointstamps are projected to stages and
//! connectors (§3.1), which keeps the could-result-in machinery independent
//! of the degree of parallelism.
//!
//! Stages live in possibly nested *loop contexts*. Edges enter a context
//! through an ingress stage, leave through an egress stage, and every cycle
//! must pass through the feedback stage of its innermost context —
//! [`GraphBuilder::build`] validates this structure.

mod builder;
mod summaries;

pub use builder::{GraphBuilder, GraphError};
pub use summaries::SummaryMatrix;

pub use crate::analysis::{AnalysisConfig, AnalysisReport};

use crate::summary::Summary;

/// Identifies a stage in a logical graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StageId(pub usize);

/// Identifies a connector (logical edge) in a logical graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConnectorId(pub usize);

/// Identifies a loop context; context 0 is the top-level streaming context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ContextId(pub usize);

impl ContextId {
    /// The top-level streaming context.
    pub const ROOT: ContextId = ContextId(0);
}

/// What a stage does to timestamps, which determines its path summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// A user stage: timestamps pass through unchanged.
    Regular,
    /// An input stage fed by an external producer (no dataflow inputs).
    Input,
    /// System stage pushing a zero loop counter on entry to a context.
    Ingress,
    /// System stage popping the loop counter on exit from a context.
    Egress,
    /// System stage incrementing the loop counter; the only stage whose
    /// output may be connected before its input.
    Feedback,
}

/// A stage of the logical graph.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Debug name (shown in errors and traces).
    pub name: String,
    /// Timestamp behaviour.
    pub kind: StageKind,
    /// The context the stage belongs to. For ingress this is the *child*
    /// context being entered; for egress, the child being left.
    pub context: ContextId,
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
}

/// A connector between an output port and an input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Connector {
    /// Source stage and output port.
    pub src: (StageId, usize),
    /// Destination stage and input port.
    pub dst: (StageId, usize),
}

/// The partitioning contract of a connector, as far as the static
/// analyzer needs to know it (the data-typed routing function itself
/// lives in the runtime's `Pact`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PactKind {
    /// Records stay on the producing worker.
    #[default]
    Pipeline,
    /// Records are routed by a data-determined partitioning function.
    Exchange,
    /// Every worker receives a copy of every record.
    Broadcast,
}

/// A loop context.
#[derive(Clone, Copy, Debug)]
pub struct Context {
    /// Enclosing context (`None` for the root).
    pub parent: Option<ContextId>,
    /// Loop nesting depth: 0 for the root, 1 for a top-level loop, …
    pub depth: usize,
}

/// A place where an unprocessed event can reside: a notification at a
/// stage or a message on a connector (§2.3, projected to the logical
/// graph per §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Location {
    /// A (projected) vertex location.
    Vertex(StageId),
    /// A (projected) edge location.
    Edge(ConnectorId),
}

/// A validated logical graph with precomputed path summaries.
#[derive(Debug)]
pub struct LogicalGraph {
    pub(crate) stages: Vec<Stage>,
    pub(crate) connectors: Vec<Connector>,
    pub(crate) contexts: Vec<Context>,
    pub(crate) summaries: SummaryMatrix,
    /// Per-connector partitioning contract, parallel to `connectors`.
    pub(crate) pacts: Vec<PactKind>,
    /// Notification interests declared at construction time, consumed by
    /// the static analyzer (`NA0003`).
    pub(crate) notification_requests: Vec<(StageId, crate::time::Timestamp)>,
    /// Stages that registered checkpointable state, with whether the
    /// state is keyed; consumed by NA0006's rescale-contracts mode.
    pub(crate) stateful: Vec<(StageId, bool)>,
}

impl LogicalGraph {
    /// The stages, indexed by [`StageId`].
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The debug name of a stage (shown in diagnostics).
    pub fn stage_name(&self, stage: StageId) -> &str {
        &self.stages[stage.0].name
    }

    /// The partitioning contract recorded for a connector.
    pub fn connector_pact(&self, connector: ConnectorId) -> PactKind {
        self.pacts
            .get(connector.0)
            .copied()
            .unwrap_or(PactKind::Pipeline)
    }

    /// Notification interests declared while the graph was built (via
    /// [`GraphBuilder::declare_notification`] or construction-time
    /// `notify_at` calls).
    pub fn notification_requests(&self) -> &[(StageId, crate::time::Timestamp)] {
        &self.notification_requests
    }

    /// State registrations declared while the graph was built (via
    /// [`GraphBuilder::declare_stateful`] or operator
    /// `register_state`/`register_keyed_state` calls): `(stage, keyed)`.
    pub fn stateful_stages(&self) -> &[(StageId, bool)] {
        &self.stateful
    }

    /// The connectors, indexed by [`ConnectorId`].
    pub fn connectors(&self) -> &[Connector] {
        &self.connectors
    }

    /// The contexts, indexed by [`ContextId`].
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// The loop depth of a stage's *input* ports (notification times at
    /// the stage use this depth).
    pub fn stage_input_depth(&self, stage: StageId) -> usize {
        let s = &self.stages[stage.0];
        let d = self.contexts[s.context.0].depth;
        match s.kind {
            // An ingress's input arrives from the parent context.
            StageKind::Ingress => d - 1,
            _ => d,
        }
    }

    /// The loop depth of a stage's *output* ports.
    pub fn stage_output_depth(&self, stage: StageId) -> usize {
        let s = &self.stages[stage.0];
        let d = self.contexts[s.context.0].depth;
        match s.kind {
            // An egress's output leaves into the parent context.
            StageKind::Egress => d - 1,
            _ => d,
        }
    }

    /// The loop depth of timestamps carried by a connector.
    pub fn connector_depth(&self, connector: ConnectorId) -> usize {
        self.stage_output_depth(self.connectors[connector.0].src.0)
    }

    /// The loop depth of timestamps at a location.
    pub fn location_depth(&self, location: Location) -> usize {
        match location {
            Location::Vertex(s) => self.stage_input_depth(s),
            Location::Edge(c) => self.connector_depth(c),
        }
    }

    /// The timestamp action a stage applies between its input and output
    /// ports, as a path summary.
    pub fn stage_summary(&self, stage: StageId) -> Summary {
        let in_depth = self.stage_input_depth(stage);
        match self.stages[stage.0].kind {
            StageKind::Regular | StageKind::Input => Summary::identity(in_depth),
            StageKind::Ingress => Summary::ingress(in_depth),
            StageKind::Egress => Summary::egress(in_depth),
            StageKind::Feedback => Summary::feedback(in_depth),
        }
    }

    /// The precomputed all-pairs path summaries Ψ.
    pub fn summaries(&self) -> &SummaryMatrix {
        &self.summaries
    }

    /// Connectors leaving any output port of `stage`.
    pub fn outgoing(&self, stage: StageId) -> impl Iterator<Item = (ConnectorId, &Connector)> {
        self.connectors
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.src.0 == stage)
            .map(|(i, c)| (ConnectorId(i), c))
    }

    /// The input stages of the graph.
    pub fn input_stages(&self) -> impl Iterator<Item = StageId> + '_ {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == StageKind::Input)
            .map(|(i, _)| StageId(i))
    }
}
