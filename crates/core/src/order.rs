//! Partial orders and antichains.
//!
//! Progress tracking reasons about *sets* of mutually incomparable
//! timestamps and path summaries. An [`Antichain`] maintains the minimal
//! elements of everything inserted into it; a [`MutableAntichain`] also
//! counts occurrences so elements can be removed again (the shape of a
//! frontier as pointstamps come and go).

/// A reflexive, transitive, antisymmetric comparison.
pub trait PartialOrder {
    /// True iff `self` precedes or equals `other`.
    fn less_equal(&self, other: &Self) -> bool;

    /// True iff `self` strictly precedes `other`.
    fn less_than(&self, other: &Self) -> bool {
        self.less_equal(other) && !other.less_equal(self)
    }
}

impl PartialOrder for u64 {
    fn less_equal(&self, other: &Self) -> bool {
        self <= other
    }
}

/// A set of mutually incomparable elements: inserting an element strictly
/// dominated by an existing one is a no-op, and inserting a new minimal
/// element evicts everything it dominates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Antichain<T> {
    elements: Vec<T>,
}

impl<T> Default for Antichain<T> {
    fn default() -> Self {
        Antichain {
            elements: Vec::new(),
        }
    }
}

impl<T: PartialOrder> Antichain<T> {
    /// An empty antichain.
    pub fn new() -> Self {
        Self::default()
    }

    /// An antichain holding a single element.
    pub fn from_elem(elem: T) -> Self {
        Antichain {
            elements: vec![elem],
        }
    }

    /// Inserts `element` unless some existing element already
    /// `less_equal`s it. Returns whether the element was inserted.
    pub fn insert(&mut self, element: T) -> bool {
        if self.elements.iter().any(|e| e.less_equal(&element)) {
            return false;
        }
        self.elements.retain(|e| !element.less_equal(e));
        self.elements.push(element);
        true
    }

    /// True iff some element of the antichain `less_equal`s `time`.
    pub fn less_equal(&self, time: &T) -> bool {
        self.elements.iter().any(|e| e.less_equal(time))
    }

    /// True iff some element of the antichain is strictly less than `time`.
    pub fn less_than(&self, time: &T) -> bool {
        self.elements.iter().any(|e| e.less_than(time))
    }

    /// The elements, in insertion order.
    pub fn elements(&self) -> &[T] {
        &self.elements
    }

    /// Whether the antichain is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }
}

impl<T: PartialOrder> FromIterator<T> for Antichain<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Antichain::new();
        for item in iter {
            out.insert(item);
        }
        out
    }
}

/// An antichain over counted elements.
///
/// Elements are inserted and removed with multiplicities; the *frontier* is
/// the antichain of minimal elements among those with positive net count.
/// Counts may go transiently negative (§3.3: progress updates from
/// different senders interleave), in which case the element simply does not
/// contribute to the frontier until its count turns positive.
#[derive(Clone, Debug)]
pub struct MutableAntichain<T> {
    counts: Vec<(T, i64)>,
}

impl<T> Default for MutableAntichain<T> {
    fn default() -> Self {
        MutableAntichain { counts: Vec::new() }
    }
}

impl<T: PartialOrder + Eq + Clone> MutableAntichain<T> {
    /// An empty mutable antichain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` occurrences of `element`.
    pub fn update(&mut self, element: &T, delta: i64) {
        if delta == 0 {
            return;
        }
        if let Some(entry) = self.counts.iter_mut().find(|(e, _)| e == element) {
            entry.1 += delta;
            if entry.1 == 0 {
                self.counts.retain(|(_, c)| *c != 0);
            }
        } else {
            self.counts.push((element.clone(), delta));
        }
    }

    /// The current frontier: minimal elements with positive count.
    pub fn frontier(&self) -> Antichain<T> {
        self.counts
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(e, _)| e.clone())
            .collect()
    }

    /// True iff no element with positive count is `less_equal` to `time`.
    ///
    /// This is the "completeness" test: once it holds for `time`, no future
    /// occurrence at or before `time` is possible.
    pub fn done_through(&self, time: &T) -> bool {
        !self
            .counts
            .iter()
            .any(|(e, c)| *c > 0 && e.less_equal(time))
    }

    /// Whether any element has a nonzero count.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The net count for `element`.
    pub fn count(&self, element: &T) -> i64 {
        self.counts
            .iter()
            .find(|(e, _)| e == element)
            .map_or(0, |(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn ts(epoch: u64, counters: &[u64]) -> Timestamp {
        Timestamp::with_counters(epoch, counters)
    }

    #[test]
    fn antichain_keeps_minimal_elements() {
        let mut a = Antichain::new();
        assert!(a.insert(ts(3, &[])));
        assert!(!a.insert(ts(5, &[])), "dominated element rejected");
        assert!(a.insert(ts(1, &[])), "smaller element evicts");
        assert_eq!(a.elements(), &[ts(1, &[])]);
    }

    #[test]
    fn antichain_holds_incomparable_elements() {
        let mut a = Antichain::new();
        // Counters move one way, epochs the other at equal depth 1 within
        // a loop: (0,[5]) vs (1,[0]) — by §2.1 epoch dominates, so use true
        // incomparables from summaries later; here use u64 pairs instead.
        let mut b: Antichain<PairMin> = Antichain::new();
        assert!(b.insert(PairMin(0, 5)));
        assert!(b.insert(PairMin(5, 0)));
        assert_eq!(b.len(), 2);
        assert!(b.less_equal(&PairMin(5, 5)));
        assert!(!b.less_equal(&PairMin(4, 4)));
        a.insert(ts(0, &[]));
        assert!(a.less_than(&ts(1, &[])));
        assert!(!a.less_than(&ts(0, &[])));
    }

    /// Product order on pairs: genuinely partial.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct PairMin(u64, u64);
    impl PartialOrder for PairMin {
        fn less_equal(&self, other: &Self) -> bool {
            self.0 <= other.0 && self.1 <= other.1
        }
    }

    #[test]
    fn mutable_antichain_tracks_frontier() {
        let mut m = MutableAntichain::new();
        m.update(&ts(0, &[]), 1);
        m.update(&ts(1, &[]), 2);
        assert_eq!(m.frontier().elements(), &[ts(0, &[])]);
        assert!(!m.done_through(&ts(0, &[])));
        m.update(&ts(0, &[]), -1);
        assert_eq!(m.frontier().elements(), &[ts(1, &[])]);
        assert!(m.done_through(&ts(0, &[])));
        assert!(!m.done_through(&ts(1, &[])));
        m.update(&ts(1, &[]), -2);
        assert!(m.is_empty());
        assert!(m.done_through(&ts(100, &[])));
    }

    #[test]
    fn mutable_antichain_tolerates_transient_negatives() {
        let mut m = MutableAntichain::new();
        m.update(&ts(2, &[]), -1);
        assert!(m.done_through(&ts(5, &[])), "negative counts do not block");
        assert_eq!(m.count(&ts(2, &[])), -1);
        m.update(&ts(2, &[]), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn from_iterator_minimizes() {
        let a: Antichain<Timestamp> = [ts(4, &[]), ts(2, &[]), ts(9, &[])].into_iter().collect();
        assert_eq!(a.elements(), &[ts(2, &[])]);
    }
}
