//! Fault injection: the runtime must stay correct when the fabric delays
//! and stalls messages (§3.5's micro-stragglers), because correctness
//! rests on per-link FIFO plus the progress protocol — never on timing.

use std::collections::HashMap;
use std::time::Duration;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::progress::ProgressMode;
use naiad::runtime::Pact;
use naiad::{execute, Config, Timestamp};
use naiad_netsim::LatencyModel;

fn lossy_config(processes: usize, mode: ProgressMode, seed: u64) -> Config {
    Config::processes_and_workers(processes, 2)
        .progress_mode(mode)
        .latency(LatencyModel::lossy(
            Duration::from_micros(200),
            0.05,
            Duration::from_millis(5),
            seed,
        ))
}

/// A keyed per-epoch sum with notifications, across processes, under
/// heavy injected delay and stalls: results must match exactly.
#[test]
fn notifications_survive_stalls() {
    for (mode, seed) in [
        (ProgressMode::Broadcast, 1),
        (ProgressMode::Local, 2),
        (ProgressMode::LocalGlobal, 3),
    ] {
        let results = execute(lossy_config(2, mode, seed), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let sums = stream.unary_notify(Pact::exchange(|x: &u64| *x % 4), "Sum", |_info| {
                    let acc: std::rc::Rc<std::cell::RefCell<HashMap<u64, u64>>> =
                        std::rc::Rc::new(std::cell::RefCell::new(HashMap::new()));
                    let recv = acc.clone();
                    (
                        move |input: &mut InputPort<u64>,
                              _out: &mut OutputPort<u64>,
                              notify: &Notify| {
                            input.for_each(|time, data| {
                                notify.notify_at(time);
                                *recv.borrow_mut().entry(time.epoch).or_insert(0) +=
                                    data.iter().sum::<u64>();
                            });
                        },
                        move |time: Timestamp, out: &mut OutputPort<u64>, _n: &Notify| {
                            if let Some(sum) = acc.borrow_mut().remove(&time.epoch) {
                                out.session(time).give(sum);
                            }
                        },
                    )
                });
                (input, sums.capture())
            });
            for epoch in 0..3u64 {
                for i in 0..40u64 {
                    input.send(i + 100 * epoch + worker.index() as u64);
                }
                if epoch < 2 {
                    input.advance_to(epoch + 1);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut per_epoch: HashMap<u64, u64> = HashMap::new();
        for (epoch, sums) in results.into_iter().flatten() {
            *per_epoch.entry(epoch).or_insert(0) += sums.iter().sum::<u64>();
        }
        let expected: HashMap<u64, u64> = (0..3u64)
            .map(|e| {
                let total: u64 = (0..4u64)
                    .flat_map(|w| (0..40u64).map(move |i| i + 100 * e + w))
                    .sum();
                (e, total)
            })
            .collect();
        assert_eq!(per_epoch, expected, "mode {mode:?}");
    }
}

/// A loop under injected delay: iteration order and fixpoint results are
/// delay-independent.
#[test]
fn loops_survive_stalls() {
    let results = execute(lossy_config(2, ProgressMode::Local, 7), |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let mut scope2 = stream.scope();
            let lc = scope2.loop_context(naiad::graph::ContextId::ROOT);
            let entered = lc.enter(&stream);
            let (handle, cycle) = lc.feedback::<u64>(Some(64));
            let merged = naiad::dataflow::ops::concatenate(&entered, &cycle);
            let advanced = merged.unary(Pact::exchange(|x: &u64| *x), "Step", |_info| {
                |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                    input.for_each(|time, data| {
                        output
                            .session(time)
                            .give_iterator(data.into_iter().filter(|x| *x < 32).map(|x| x * 2));
                    });
                }
            });
            handle.connect(&advanced);
            let out = lc.leave(&advanced);
            (input, out.filter_final())
        });
        if worker.index() == 0 {
            input.send_batch([1, 3, 5]);
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut finals: Vec<u64> = results
        .into_iter()
        .flatten()
        .flat_map(|(_, d)| d)
        .filter(|&x| x >= 32)
        .collect();
    finals.sort_unstable();
    // 1→32(x2^5), 3→48, 5→40.
    assert_eq!(finals, vec![32, 40, 48]);
}

/// Per-epoch captured output, as returned by `Stream::capture`.
type Captured = std::rc::Rc<std::cell::RefCell<Vec<(u64, Vec<u64>)>>>;

/// Helper: the loop test just captures everything; this keeps the
/// builder chain readable above.
trait FilterFinal {
    fn filter_final(&self) -> Captured;
}

impl FilterFinal for naiad::Stream<u64> {
    fn filter_final(&self) -> Captured {
        self.capture()
    }
}
