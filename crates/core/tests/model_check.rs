//! Acceptance tests for the deterministic progress-protocol
//! model-checker (§3.3): the clean matrix must explore ≥ 1,000 distinct
//! interleavings per seed across every topology × accumulation policy
//! with both oracles silent, every injected fault class must be caught
//! by its oracle, and every failure must reproduce **bit-identically**
//! from its printed seed + minimized trace.
//!
//! CI widens the sweep with `MODEL_CHECK_SEEDS=n` (n extra seeds past
//! the pinned base), mirroring the `CHAOS_SOAK_SEEDS` contract.

use naiad::progress::modelcheck::{
    explore, explore_matrix, replay, Chaos, McConfig, Topology, ViolationKind,
};
use naiad::progress::{Pointstamp, ProgressMode};
use naiad::Timestamp;

const ALL_MODES: [ProgressMode; 4] = [
    ProgressMode::Broadcast,
    ProgressMode::Local,
    ProgressMode::Global,
    ProgressMode::LocalGlobal,
];

/// Schedules per (topology, mode) cell: 12 cells × 90 = 1,080 schedules
/// per seed, comfortably past the 1,000-distinct-interleavings floor.
const SCHEDULES_PER_CELL: usize = 90;

/// The pinned base seeds every run checks. Failures print a `Failure`
/// report with the seed, salt, and minimized trace for exact replay.
const BASE_SEEDS: [u64; 2] = [0xDA7A, 42];

fn assert_matrix_clean(seed: u64) {
    let matrix = explore_matrix(seed, SCHEDULES_PER_CELL);
    assert_eq!(matrix.len(), 12, "3 topologies × 4 policies");
    let mut distinct = 0;
    for ((topology, mode), report) in &matrix {
        assert!(
            report.failures.is_empty(),
            "seed {seed:#x} {}/{} violated an oracle:\n{}",
            topology.label(),
            mode.figure_label(),
            report.failures[0]
        );
        assert_eq!(report.schedules, SCHEDULES_PER_CELL);
        distinct += report.distinct_interleavings;
    }
    assert!(
        distinct >= 1_000,
        "seed {seed:#x}: only {distinct} distinct interleavings across the matrix"
    );
}

/// The clean acceptance matrix: every topology × every policy, oracles
/// asserted at every step of every schedule, no violations, ≥ 1,000
/// distinct interleavings per seed.
#[test]
fn clean_matrix_is_silent_and_diverse() {
    for seed in BASE_SEEDS {
        assert_matrix_clean(seed);
    }
}

/// CI's extended sweep: `MODEL_CHECK_SEEDS=n` checks `n` extra seeds
/// past the pinned base. A no-op when unset, keeping local runs fast.
#[test]
fn extended_matrix_honours_env() {
    let extra: u64 = std::env::var("MODEL_CHECK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for i in 0..extra {
        assert_matrix_clean(0x5EED_0000 + i);
    }
}

/// Replays a failure's minimized trace twice and insists both runs
/// reproduce the recorded violation bit-identically.
fn assert_bit_identical_replay(failure: &naiad::progress::modelcheck::Failure) {
    let first = replay(&failure.cfg, failure.seed, &failure.trace);
    let second = replay(&failure.cfg, failure.seed, &failure.trace);
    assert_eq!(
        first.violation.as_ref(),
        Some(&failure.violation),
        "replay diverged from the recorded violation:\n{failure}"
    );
    assert_eq!(first.violation, second.violation, "replay is nondeterministic");
    assert_eq!(first.trace, second.trace, "replay trace is nondeterministic");
    assert_eq!(first.applied, second.applied);
}

/// Link reordering breaks per-sender FIFO: the FIFO oracle must fire,
/// and the minimized failure must replay exactly.
#[test]
fn reorder_chaos_is_caught_and_replays() {
    let mut cfg = McConfig::new(Topology::Chain, ProgressMode::Broadcast);
    cfg.chaos = Chaos::ReorderLinks(500);
    let report = explore(&cfg, 3, 40);
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.violation.violation.kind() == ViolationKind::Fifo),
        "reordered links never tripped the FIFO oracle"
    );
    for failure in &report.failures {
        assert_bit_identical_replay(failure);
    }
}

/// Flushing a retirement before its consequences violates §3.3's
/// atomic-batch rule: some worker transiently believes a pointstamp
/// complete while work is still outstanding, and the safety oracle
/// (checked against the omniscient reference tracker) must fire.
#[test]
fn premature_retirement_trips_safety_oracle() {
    let mut cfg = McConfig::new(Topology::Chain, ProgressMode::Local);
    cfg.chaos = Chaos::RetireBeforeConsequence;
    let report = explore(&cfg, 1, 10);
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.violation.violation.kind() == ViolationKind::Safety),
        "premature retirement never tripped the safety oracle"
    );
    for failure in &report.failures {
        assert_bit_identical_replay(failure);
    }
}

/// Dropped batches leave occurrence counts stranded: some schedule must
/// fail to drain, and the liveness oracle catches it at quiescence.
#[test]
fn dropped_batches_trip_liveness_oracle() {
    let mut cfg = McConfig::new(Topology::Chain, ProgressMode::Broadcast);
    cfg.chaos = Chaos::DropBatch(300);
    let report = explore(&cfg, 5, 20);
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.violation.violation.kind() == ViolationKind::Liveness),
        "dropped batches never tripped the liveness oracle"
    );
    for failure in &report.failures {
        assert_bit_identical_replay(failure);
    }
}

/// Accumulation-policy equivalence (satellite 2): under a pinned
/// regression seed, every policy — and every schedule permutation of
/// batch delivery — yields the *identical* per-worker update journal,
/// and every worker's net applied occurrence deltas exactly cancel the
/// initial seeded input occurrences at quiescence. Policies may only
/// change batching and routing, never the updates themselves.
#[test]
fn policies_are_equivalent_under_permuted_schedules() {
    const PINNED_SEED: u64 = 0xE9_0A11;
    const SALTS: u64 = 5;
    for topology in Topology::ALL {
        let mut reference_journals = None;
        for mode in ALL_MODES {
            let cfg = McConfig::new(topology, mode);
            // `PointstampTable::initialized` seeds +total_workers at the
            // input's epoch-0 stamp outside the batch stream, so at
            // quiescence (empty tables) every worker's net applied
            // deltas must be exactly the negation of that seed — in
            // every mode, under every schedule.
            let total_workers = (cfg.processes * cfg.workers_per_process) as i64;
            let graph = topology.graph();
            let input = graph.input_stages().next().expect("has an input");
            let seed_stamp = Pointstamp::at_vertex(Timestamp::new(0), input);
            let expected: std::collections::HashMap<_, _> =
                [(seed_stamp, -total_workers)].into_iter().collect();
            for salt in 0..SALTS {
                let outcome =
                    naiad::progress::modelcheck::run_schedule(&cfg, PINNED_SEED, salt);
                assert!(
                    outcome.violation.is_none(),
                    "{}/{} salt {salt}: {:?}",
                    topology.label(),
                    mode.figure_label(),
                    outcome.violation
                );
                for (worker, applied) in outcome.applied.iter().enumerate() {
                    assert_eq!(
                        applied,
                        &expected,
                        "{}/{} salt {salt}: worker {worker} net applied deltas \
                         must cancel the initial input seed",
                        topology.label(),
                        mode.figure_label(),
                    );
                }
                match &reference_journals {
                    None => reference_journals = Some(outcome.journals),
                    Some(reference) => assert_eq!(
                        reference,
                        &outcome.journals,
                        "{}/{} salt {salt}: journal diverged from reference policy",
                        topology.label(),
                        mode.figure_label()
                    ),
                }
            }
        }
    }
}
