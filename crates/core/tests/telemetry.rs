//! Event-log invariants across a real multi-worker run.
//!
//! Runs a 4-worker (2 processes × 2 workers) exchange-and-notify
//! workload with telemetry enabled and checks the structural properties
//! the registry depends on: schedule start/stop pairing, monotone
//! frontier probes, and progress events consistent with the tracker's
//! seeded state.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::progress::ProgressMode;
use naiad::runtime::Pact;
use naiad::telemetry::TelemetryEvent;
use naiad::{execute_with_telemetry, Config, TelemetrySnapshot, Timestamp};

const PROCESSES: usize = 2;
const WORKERS_PER_PROCESS: usize = 2;
const TOTAL_WORKERS: usize = PROCESSES * WORKERS_PER_PROCESS;
const EPOCHS: u64 = 3;
const RECORDS_PER_EPOCH: u64 = 25;

/// Runs the shared workload once and returns its snapshot.
fn run_workload() -> TelemetrySnapshot {
    let config = Config::processes_and_workers(PROCESSES, WORKERS_PER_PROCESS)
        .progress_mode(ProgressMode::Broadcast)
        .telemetry_capacity(1 << 16);
    let (sums, snapshot) = execute_with_telemetry(config, |worker| {
        let (mut input, sums) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let sums: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv = sums.clone();
            let out = sums.clone();
            stream
                .unary_notify(
                    Pact::exchange(|x: &u64| *x),
                    "SumPerEpoch",
                    move |_info| {
                        (
                            move |input: &mut InputPort<u64>,
                                  _output: &mut OutputPort<u64>,
                                  notify: &naiad::dataflow::Notify| {
                                input.for_each(|time, data| {
                                    notify.notify_at(time);
                                    *recv.borrow_mut().entry(time.epoch).or_insert(0) +=
                                        data.iter().sum::<u64>();
                                });
                            },
                            move |time: Timestamp,
                                  output: &mut OutputPort<u64>,
                                  _notify: &naiad::dataflow::Notify| {
                                if let Some(sum) = out.borrow_mut().remove(&time.epoch) {
                                    output.session(time).give(sum);
                                }
                            },
                        )
                    },
                )
                .probe();
            (input, sums)
        });
        let index = worker.index() as u64;
        for epoch in 0..EPOCHS {
            // Keys cover every residue mod TOTAL_WORKERS, so the exchange
            // routes records to all workers — including across processes.
            input.send_batch((0..RECORDS_PER_EPOCH).map(|i| i + index + 1000 * epoch));
            if epoch + 1 < EPOCHS {
                input.advance_to(epoch + 1);
            }
        }
        input.close();
        worker.step_until_done();
        let total: u64 = sums.borrow().values().sum();
        total
    })
    .unwrap();
    // Sanity: the workload itself computed (notifications fired and
    // consumed the per-epoch sums, so remainders are zero).
    assert_eq!(sums.len(), TOTAL_WORKERS);
    assert_eq!(sums.iter().sum::<u64>(), 0, "OnNotify drained every epoch");
    snapshot
}

#[test]
fn event_log_invariants_hold_on_a_four_worker_run() {
    let snap = run_workload();

    // Every worker harvested, in index order, with no dropped events.
    assert_eq!(snap.workers.len(), TOTAL_WORKERS);
    assert_eq!(snap.logs.len(), TOTAL_WORKERS);
    for (i, w) in snap.workers.iter().enumerate() {
        assert_eq!(w.worker, i, "summaries sorted by worker index");
        assert_eq!(w.events_dropped, 0, "buffer sized for the run");
        assert!(w.events_recorded > 0);
        assert!(w.counters.steps > 0);
        assert!(w.counters.schedules > 0);
    }

    // --- Schedule start/stop pairing ---------------------------------
    // Workers are single-threaded: every ScheduleStart must be closed by
    // a ScheduleStop for the same (dataflow, stage) before the next
    // ScheduleStart; other events may interleave inside the slice.
    for log in &snap.logs {
        let mut open: Option<(u32, u32)> = None;
        let mut starts = 0u64;
        let mut stops = 0u64;
        let mut last_nanos = 0u64;
        for record in &log.events {
            assert!(
                record.nanos >= last_nanos,
                "worker {} event timestamps regress",
                log.worker
            );
            last_nanos = record.nanos;
            match record.event {
                TelemetryEvent::ScheduleStart { dataflow, stage, .. } => {
                    assert_eq!(
                        open, None,
                        "worker {}: nested ScheduleStart at ({dataflow},{stage})",
                        log.worker
                    );
                    open = Some((dataflow, stage));
                    starts += 1;
                }
                TelemetryEvent::ScheduleStop {
                    dataflow, stage, ..
                } => {
                    assert_eq!(
                        open,
                        Some((dataflow, stage)),
                        "worker {}: ScheduleStop without matching start",
                        log.worker
                    );
                    open = None;
                    stops += 1;
                }
                _ => {}
            }
        }
        assert_eq!(open, None, "worker {}: unclosed slice", log.worker);
        assert_eq!(starts, stops);
        assert_eq!(
            stops, log.counters.schedules,
            "worker {}: aggregate schedule count matches the event stream",
            log.worker
        );
    }

    // --- Monotone frontier probes ------------------------------------
    // Per (worker, dataflow): the minimum open input epoch never
    // retreats, never resurrects after closing, and ends closed with
    // zero active pointstamps.
    let mut last_probe: HashMap<(usize, u32), &naiad::telemetry::FrontierSample> = HashMap::new();
    for sample in &snap.frontier {
        if let Some(prev) = last_probe.get(&(sample.worker, sample.dataflow)) {
            match (prev.input_epoch, sample.input_epoch) {
                (Some(a), Some(b)) => assert!(
                    b >= a,
                    "worker {} frontier retreated {a} -> {b}",
                    sample.worker
                ),
                (None, Some(_)) => {
                    panic!("worker {} input frontier reopened", sample.worker)
                }
                _ => {}
            }
        }
        last_probe.insert((sample.worker, sample.dataflow), sample);
    }
    assert_eq!(last_probe.len(), TOTAL_WORKERS, "every worker probed");
    for ((worker, _), sample) in &last_probe {
        assert_eq!(
            sample.input_epoch, None,
            "worker {worker}: inputs closed at completion"
        );
        assert_eq!(sample.active, 0, "worker {worker}: tracker drained");
    }

    // --- Progress events consistent with tracker state ---------------
    // Every tracker is seeded with `TOTAL_WORKERS` occurrences per input
    // stage and every later delta flows through the protocol, so each
    // worker's applied net must be exactly the negation of the seed
    // (one input stage here) once its tracker has drained.
    let total_batches_sent: u64 = snap
        .workers
        .iter()
        .map(|w| w.counters.progress_batches_sent)
        .sum();
    assert!(total_batches_sent > 0);
    for w in &snap.workers {
        let c = &w.counters;
        assert_eq!(
            c.net_delta_applied,
            -(TOTAL_WORKERS as i64),
            "worker {}: applied net offsets the seeded input pointstamps",
            w.worker
        );
        // Broadcast mode: every batch reaches every worker exactly once.
        assert_eq!(
            c.progress_batches_applied, total_batches_sent,
            "worker {}: broadcast delivers every batch",
            w.worker
        );
        // Aggregate counters agree with the retained event stream.
        let applied_events = snap.logs[w.worker]
            .events
            .iter()
            .filter(|r| matches!(r.event, TelemetryEvent::ProgressApplied { .. }))
            .count() as u64;
        assert_eq!(c.progress_batches_applied, applied_events);
    }

    // --- Per-operator rows -------------------------------------------
    // The named operator was scheduled, notified once per epoch per
    // worker, and received every record exactly once.
    assert!(!snap.operators.is_empty());
    let sum_op = snap
        .operators
        .iter()
        .find(|o| o.name == "SumPerEpoch")
        .expect("named operator surfaced in the registry");
    assert!(sum_op.schedules > 0);
    assert!(sum_op.worked > 0);
    assert_eq!(
        sum_op.notifications,
        EPOCHS * TOTAL_WORKERS as u64,
        "one notification per epoch per worker"
    );
    assert_eq!(
        sum_op.records_in,
        EPOCHS * RECORDS_PER_EPOCH * TOTAL_WORKERS as u64,
        "every record crossed the exchange exactly once"
    );
    for op in &snap.operators {
        assert!(
            op.schedules > 0 || op.records_out > 0 || op.records_in > 0,
            "operator ({}, {}) '{}' left no trace",
            op.dataflow,
            op.stage,
            op.name
        );
    }

    // --- Traffic ------------------------------------------------------
    // Two processes under Broadcast: both classes crossed the network,
    // and worker-side record counts agree with each other.
    assert!(snap.traffic.progress_network.bytes > 0);
    assert!(snap.data_bytes(false) > 0, "exchange crossed processes");
    assert!(snap.progress_bytes(true) >= snap.progress_bytes(false));
    let sent: u64 = snap.workers.iter().map(|w| w.counters.records_sent).sum();
    let received: u64 = snap
        .workers
        .iter()
        .map(|w| w.counters.records_received)
        .sum();
    assert_eq!(sent, received, "no records lost between push and pull");
    assert_eq!(snap.total_steps(), snap.workers.iter().map(|w| w.counters.steps).sum());

    // --- Exporters ----------------------------------------------------
    let jsonl = snap.events_json_lines();
    let total_events: usize = snap.workers.iter().map(|w| w.events_recorded).sum();
    // One schema-version header line, then one line per event.
    assert_eq!(jsonl.lines().count(), total_events + 1);
    assert!(jsonl.lines().next().unwrap().contains("\"schema\":\"naiad-telemetry\""));
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    let table = snap.summary_table();
    assert!(table.contains("SumPerEpoch"));
    assert!(table.contains("== frontier =="));
}
