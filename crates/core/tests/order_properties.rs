//! Randomized tests for the timestamp order and path-summary algebra: the
//! laws §2.1/§2.3 depend on. Deterministic seeded generation (`naiad-rng`)
//! keeps every run reproducible without an external framework.

use naiad::summary::Summary;
use naiad::{Antichain, PartialOrder, Timestamp};
use naiad_rng::Xorshift;

const CASES: usize = 256;

fn gen_time(rng: &mut Xorshift) -> Timestamp {
    let epoch = rng.below(5);
    let depth = rng.below_usize(3);
    let counters: Vec<u64> = (0..depth).map(|_| rng.below(5)).collect();
    Timestamp::with_counters(epoch, &counters)
}

/// Summaries built from random compositions of the three system actions,
/// starting from the identity at `depth`.
fn gen_summary(rng: &mut Xorshift, depth: usize) -> Summary {
    let mut s = Summary::identity(depth);
    for _ in 0..rng.below_usize(5) {
        let d = s.target_depth();
        s = match rng.below(3) {
            0 if d < 3 => s.then(&Summary::ingress(d)),
            1 if d >= 1 => s.then(&Summary::egress(d)),
            2 if d >= 1 => s.then(&Summary::feedback(d)),
            _ => s,
        };
    }
    s
}

/// Pads/truncates a timestamp's counters to depth 2 so depth-2 summaries
/// apply.
fn pad2(t: Timestamp) -> Timestamp {
    let mut c = t.counters.as_slice().to_vec();
    while c.len() < 2 {
        c.push(0);
    }
    c.truncate(2);
    Timestamp::with_counters(t.epoch, &c)
}

/// The §2.1 order is a partial order on equal-depth timestamps.
#[test]
fn timestamp_order_laws() {
    let mut rng = Xorshift::new(0xA1);
    for _ in 0..CASES {
        let (a, b, c) = (gen_time(&mut rng), gen_time(&mut rng), gen_time(&mut rng));
        // Reflexivity.
        assert!(a.less_equal(&a));
        // Transitivity.
        if a.less_equal(&b) && b.less_equal(&c) {
            assert!(a.less_equal(&c), "transitivity: {a:?} {b:?} {c:?}");
        }
        // Antisymmetry at equal depth.
        if a.depth() == b.depth() && a.less_equal(&b) && b.less_equal(&a) {
            assert_eq!(a, b);
        }
        // less_than is consistent.
        assert_eq!(a.less_than(&b), a.less_equal(&b) && !b.less_equal(&a));
    }
}

/// Summary application is monotone: t1 ≤ t2 ⇒ s(t1) ≤ s(t2) — the
/// property that makes path-summary reasoning sound.
#[test]
fn summaries_are_monotone() {
    let mut rng = Xorshift::new(0xA2);
    for _ in 0..CASES {
        let s = gen_summary(&mut rng, 2);
        let a = pad2(gen_time(&mut rng));
        let b = pad2(gen_time(&mut rng));
        if a.less_equal(&b) {
            assert!(
                s.apply(&a).less_equal(&s.apply(&b)),
                "{s:?} not monotone on {a:?} ≤ {b:?}"
            );
        }
    }
}

/// Composition agrees with sequential application, always.
#[test]
fn composition_is_application() {
    let mut rng = Xorshift::new(0xA3);
    for _ in 0..CASES {
        let s1 = gen_summary(&mut rng, 2);
        let mut s2 = Summary::identity(s1.target_depth());
        for _ in 0..rng.below_usize(4) {
            let d = s2.target_depth();
            s2 = match rng.below(3) {
                0 if d < 3 => s2.then(&Summary::ingress(d)),
                1 if d >= 1 => s2.then(&Summary::egress(d)),
                2 if d >= 1 => s2.then(&Summary::feedback(d)),
                _ => s2,
            };
        }
        let t = pad2(gen_time(&mut rng));
        let composed = s1.then(&s2);
        assert_eq!(composed.apply(&t), s2.apply(&s1.apply(&t)));
    }
}

/// Summary domination (the antichain order) implies pointwise domination
/// of applied timestamps.
#[test]
fn summary_order_is_pointwise() {
    let mut rng = Xorshift::new(0xA4);
    for _ in 0..CASES {
        let s1 = gen_summary(&mut rng, 2);
        let s2 = gen_summary(&mut rng, 2);
        if s1.less_equal(&s2) {
            let t = pad2(gen_time(&mut rng));
            assert!(s1.apply(&t).less_equal(&s2.apply(&t)));
        }
    }
}

/// Antichain membership answers exactly like a linear scan of every
/// inserted element.
#[test]
fn antichain_matches_linear_scan() {
    let mut rng = Xorshift::new(0xA5);
    for _ in 0..CASES {
        // Restrict to equal-depth timestamps so the order is antisymmetric.
        let elems: Vec<Timestamp> = (0..rng.below_usize(12))
            .map(|_| Timestamp::new(rng.below(5)))
            .collect();
        let probe = Timestamp::new(rng.below(5));
        let mut chain = Antichain::new();
        for e in &elems {
            chain.insert(*e);
        }
        let scan = elems.iter().any(|e| e.less_equal(&probe));
        assert_eq!(chain.less_equal(&probe), scan);
    }
}
