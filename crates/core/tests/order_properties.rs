//! Property tests for the timestamp order and path-summary algebra: the
//! laws §2.1/§2.3 depend on.

use naiad::summary::Summary;
use naiad::{Antichain, PartialOrder, Timestamp};
use proptest::prelude::*;

fn arb_time() -> impl Strategy<Value = Timestamp> {
    (0u64..5, proptest::collection::vec(0u64..5, 0..3))
        .prop_map(|(epoch, counters)| Timestamp::with_counters(epoch, &counters))
}

/// Summaries built from random compositions of the three system actions,
/// tracked with a source depth they are valid for.
fn arb_summary(depth: usize) -> impl Strategy<Value = Summary> {
    proptest::collection::vec(0u8..3, 0..5).prop_map(move |ops| {
        let mut s = Summary::identity(depth);
        for op in ops {
            let d = s.target_depth();
            s = match op {
                0 if d < 3 => s.then(&Summary::ingress(d)),
                1 if d >= 1 => s.then(&Summary::egress(d)),
                2 if d >= 1 => s.then(&Summary::feedback(d)),
                _ => s,
            };
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The §2.1 order is a partial order on equal-depth timestamps.
    #[test]
    fn timestamp_order_laws(a in arb_time(), b in arb_time(), c in arb_time()) {
        // Reflexivity.
        prop_assert!(a.less_equal(&a));
        // Transitivity.
        if a.less_equal(&b) && b.less_equal(&c) {
            prop_assert!(a.less_equal(&c));
        }
        // Antisymmetry at equal depth.
        if a.depth() == b.depth() && a.less_equal(&b) && b.less_equal(&a) {
            prop_assert_eq!(a, b);
        }
        // less_than is consistent.
        prop_assert_eq!(a.less_than(&b), a.less_equal(&b) && !b.less_equal(&a));
    }

    /// Summary application is monotone: t1 ≤ t2 ⇒ s(t1) ≤ s(t2) — the
    /// property that makes path-summary reasoning sound.
    #[test]
    fn summaries_are_monotone(
        s in arb_summary(2),
        a in arb_time(),
        b in arb_time(),
    ) {
        // Pad both inputs to depth 2 so the summary applies.
        let pad = |t: Timestamp| {
            let mut c = t.counters.as_slice().to_vec();
            while c.len() < 2 {
                c.push(0);
            }
            c.truncate(2);
            Timestamp::with_counters(t.epoch, &c)
        };
        let (a, b) = (pad(a), pad(b));
        if a.less_equal(&b) {
            prop_assert!(
                s.apply(&a).less_equal(&s.apply(&b)),
                "{s:?} not monotone on {a:?} ≤ {b:?}"
            );
        }
    }

    /// Composition agrees with sequential application, always.
    #[test]
    fn composition_is_application(
        s1 in arb_summary(2),
        ops in proptest::collection::vec(0u8..3, 0..4),
        t in arb_time(),
    ) {
        // Extend s1 by a second random path s2 and compare.
        let mut s2 = Summary::identity(s1.target_depth());
        for op in ops {
            let d = s2.target_depth();
            s2 = match op {
                0 if d < 3 => s2.then(&Summary::ingress(d)),
                1 if d >= 1 => s2.then(&Summary::egress(d)),
                2 if d >= 1 => s2.then(&Summary::feedback(d)),
                _ => s2,
            };
        }
        let mut c = t.counters.as_slice().to_vec();
        while c.len() < 2 {
            c.push(0);
        }
        c.truncate(2);
        let t = Timestamp::with_counters(t.epoch, &c);
        let composed = s1.then(&s2);
        prop_assert_eq!(composed.apply(&t), s2.apply(&s1.apply(&t)));
    }

    /// Summary domination (the antichain order) implies pointwise
    /// domination of applied timestamps.
    #[test]
    fn summary_order_is_pointwise(
        s1 in arb_summary(2),
        s2 in arb_summary(2),
        t in arb_time(),
    ) {
        if s1.less_equal(&s2) {
            let mut c = t.counters.as_slice().to_vec();
            while c.len() < 2 {
                c.push(0);
            }
            c.truncate(2);
            let t = Timestamp::with_counters(t.epoch, &c);
            prop_assert!(s1.apply(&t).less_equal(&s2.apply(&t)));
        }
    }

    /// Antichain membership answers exactly like a linear scan of every
    /// inserted element.
    #[test]
    fn antichain_matches_linear_scan(
        elems in proptest::collection::vec(arb_time(), 0..12),
        probe in arb_time(),
    ) {
        // Restrict to equal-depth timestamps so the order is antisymmetric.
        let elems: Vec<Timestamp> = elems
            .into_iter()
            .map(|t| Timestamp::new(t.epoch))
            .collect();
        let probe = Timestamp::new(probe.epoch);
        let mut chain = Antichain::new();
        for e in &elems {
            chain.insert(*e);
        }
        let scan = elems.iter().any(|e| e.less_equal(&probe));
        prop_assert_eq!(chain.less_equal(&probe), scan);
    }
}
