//! Edge cases of the runtime: empty dataflows, empty epochs, many epochs,
//! multiple inputs, deep operator chains, and misuse panics.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute, Config};
use std::cell::RefCell;
use std::rc::Rc;

/// A dataflow whose input closes without any records still completes and
/// reports its (empty) epochs.
#[test]
fn empty_input_completes() {
    execute(Config::single_process(2), |worker| {
        let (mut input, seen) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let seen = Rc::new(RefCell::new(0u64));
            let sink = seen.clone();
            stream.subscribe(move |_epoch, data| {
                assert!(data.is_empty());
                *sink.borrow_mut() += 1;
            });
            (input, seen)
        });
        input.close();
        worker.step_until_done();
        drop(seen);
    })
    .unwrap();
}

/// Epochs with no records between epochs with records complete in order.
#[test]
fn sparse_epochs_complete_in_order() {
    let results = execute(Config::single_process(1), |worker| {
        let (mut input, order) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let order = Rc::new(RefCell::new(Vec::new()));
            let sink = order.clone();
            stream.subscribe(move |epoch, _| sink.borrow_mut().push(epoch));
            (input, order)
        });
        input.send(1);
        input.advance_to(3); // epochs 1, 2 are empty
        input.send(2);
        input.advance_to(10);
        input.send(3);
        input.close();
        worker.step_until_done();
        let result = order.borrow().clone();
        result
    })
    .unwrap();
    // Epochs complete in nondecreasing order; every data-bearing epoch
    // appears.
    let order = &results[0];
    assert!(order.windows(2).all(|w| w[0] < w[1]), "{order:?}");
    for e in [0, 3, 10] {
        assert!(order.contains(&e), "missing epoch {e} in {order:?}");
    }
}

/// Many epochs stream through without accumulating tracker state.
#[test]
fn hundred_epochs_stream() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let sum = Rc::new(RefCell::new(0u64));
            let sink = sum.clone();
            stream
                .unary(Pact::exchange(|x: &u64| *x), "Sum", move |_info| {
                    move |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            *sink.borrow_mut() += data.iter().sum::<u64>();
                            output.session(time).give_vec(data);
                        });
                    }
                })
                .probe();
            (input, sum)
        });
        for epoch in 0..100u64 {
            if worker.index() == 0 {
                input.send(epoch);
            }
            input.advance_to(epoch + 1);
        }
        input.close();
        worker.step_until_done();
        let result = *captured.borrow();
        result
    })
    .unwrap();
    assert_eq!(results.iter().sum::<u64>(), (0..100).sum::<u64>());
}

/// Three inputs into one ternary-ish dataflow (two binaries) coordinate
/// epoch completion across all of them.
#[test]
fn three_inputs_coordinate() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut a_in, mut b_in, mut c_in, captured) = worker.dataflow(|scope| {
            let (a_in, a) = scope.new_input::<u64>();
            let (b_in, b) = scope.new_input::<u64>();
            let (c_in, c) = scope.new_input::<u64>();
            let ab = naiad::dataflow::ops::concatenate(&a, &b);
            let abc = naiad::dataflow::ops::concatenate(&ab, &c);
            (a_in, b_in, c_in, abc.capture())
        });
        if worker.index() == 0 {
            a_in.send(1);
            b_in.send(2);
            c_in.send(3);
        }
        // Advance inputs to different epochs: completion is gated by the
        // slowest input.
        a_in.advance_to(5);
        b_in.advance_to(2);
        if worker.index() == 0 {
            c_in.send(4);
        }
        c_in.advance_to(3);
        a_in.close();
        b_in.close();
        c_in.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut all: Vec<(u64, u64)> = results
        .into_iter()
        .flatten()
        .flat_map(|(e, d)| d.into_iter().map(move |x| (e, x)))
        .collect();
    all.sort_unstable();
    assert_eq!(all, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
}

/// A 32-stage pipeline pushes records through in one run.
#[test]
fn deep_pipeline() {
    let results = execute(Config::single_process(1), |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, mut stream) = scope.new_input::<u64>();
            for _ in 0..32 {
                stream = stream.unary(Pact::Pipeline, "Inc", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            output
                                .session(time)
                                .give_iterator(data.into_iter().map(|x| x + 1));
                        });
                    }
                });
            }
            (input, stream.capture())
        });
        input.send(0);
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    assert_eq!(results[0][0].1, vec![32]);
}

/// Misuse: sending on a closed input panics on the worker.
#[test]
fn send_after_close_panics() {
    let result = execute(Config::single_process(1), |worker| {
        let (mut input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            (input, stream.probe())
        });
        input.close();
        input.send(1);
    });
    assert!(matches!(
        result,
        Err(naiad::runtime::ExecuteError::WorkerPanic(0))
    ));
}

/// Misuse: advancing backwards panics.
#[test]
fn advance_backwards_panics() {
    let result = execute(Config::single_process(1), |worker| {
        let (mut input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            (input, stream.probe())
        });
        input.advance_to(5);
        input.advance_to(3);
    });
    assert!(matches!(
        result,
        Err(naiad::runtime::ExecuteError::WorkerPanic(0))
    ));
}

/// Misuse: an unconnected feedback input fails graph validation.
#[test]
fn dangling_feedback_panics() {
    let result = execute(Config::single_process(1), |worker| {
        worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let mut scope2 = stream.scope();
            let lc = scope2.loop_context(naiad::graph::ContextId::ROOT);
            let entered = lc.enter(&stream);
            let (_handle, cycle) = lc.feedback::<u64>(None);
            let merged = naiad::dataflow::ops::concatenate(&entered, &cycle);
            let _ = lc.leave(&merged);
            // _handle dropped unconnected: validation must reject.
            input
        });
    });
    assert!(matches!(
        result,
        Err(naiad::runtime::ExecuteError::WorkerPanic(0))
    ));
}

/// Results are identical across repeated runs (single worker determinism).
#[test]
fn single_worker_runs_are_deterministic() {
    let run = || {
        execute(Config::single_process(1), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let out = stream.unary(Pact::Pipeline, "Triple", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            output
                                .session(time)
                                .give_iterator(data.into_iter().map(|x| 3 * x));
                        });
                    }
                });
                (input, out.capture())
            });
            input.send_batch([5, 6, 7]);
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap()
    };
    assert_eq!(run(), run());
}
