//! End-to-end tests for self-hosted critical-path analysis: the golden
//! online-vs-offline equality, straggler attribution and wall-clock
//! accounting, tap/buffer overflow behavior, result transparency, the
//! autotuning loop, and the recorder-overhead regression bound.

use std::time::Instant;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::introspect::{offline_reference, IntrospectOptions};
use naiad::runtime::Pact;
use naiad::telemetry::{Recorder, TelemetryEvent};
use naiad::{execute, execute_with_introspection, execute_with_telemetry, Config, Worker};

/// The shared fixture: records exchange to worker 0 (the deliberate
/// straggler), which folds each into a per-epoch sum emitted when the
/// epoch closes. Returns the per-epoch `(epoch, sums)` capture.
fn skewed_sums(worker: &mut Worker, epochs: u64, records_per_epoch: u64) -> Vec<(u64, Vec<u64>)> {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    let index = worker.index() as u64;
    let (mut input, captured) = worker.dataflow(|scope| {
        let (input, stream) = scope.new_input::<u64>();
        let sums = stream.unary_notify(
            Pact::exchange(|_| 0),
            "SkewedSum",
            |_info| {
                let table: Rc<RefCell<HashMap<u64, u64>>> = Rc::default();
                let flush = Rc::clone(&table);
                (
                    move |input: &mut InputPort<u64>,
                          _output: &mut OutputPort<u64>,
                          notify: &naiad::dataflow::Notify| {
                        input.for_each(|time, data| {
                            notify.notify_at(time);
                            let mut table = table.borrow_mut();
                            for x in data {
                                // A nontrivial per-record cost so worker
                                // 0's busy time visibly dominates.
                                let cost: u64 = (0..x % 97).sum();
                                *table.entry(time.epoch).or_default() += x + cost % 2;
                            }
                        });
                    },
                    move |time: naiad::Timestamp,
                          output: &mut OutputPort<u64>,
                          _notify: &naiad::dataflow::Notify| {
                        if let Some(sum) = flush.borrow_mut().remove(&time.epoch) {
                            output.session(time).give(sum);
                        }
                    },
                )
            },
        );
        (input, sums.capture())
    });

    for epoch in 0..epochs {
        // Worker 0 contributes nothing; the others send a slice each, and
        // everything routes to worker 0.
        if index != 0 {
            input.send_batch((0..records_per_epoch).map(|r| epoch * 1000 + index * 100 + r));
        }
        // Process each epoch while it is the oldest open work, so its
        // schedule slices attribute to it rather than piling onto the
        // first epoch. The final epoch closes via `close` below.
        if epoch + 1 < epochs {
            input.advance_to(epoch + 1);
            worker.step_until_closed_through(epoch);
        }
    }
    input.close();
    worker.step_until_done();
    let result = captured.borrow().clone();
    result
}

/// Golden test: the summaries computed by the observer dataflow *on the
/// runtime itself* equal the offline reference recomputed from the
/// harvested event logs through the same attribution code.
#[test]
fn self_hosted_summaries_match_the_offline_reference() {
    let config = Config::single_process(2).telemetry_capacity(1 << 20);
    let (results, report) = execute_with_introspection(
        config,
        IntrospectOptions::default().tap_capacity(1 << 20),
        |worker| skewed_sums(worker, 4, 64),
    )
    .unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(report.tap_dropped, 0, "golden run must not drop tap events");
    assert_eq!(
        report.snapshot.total_events_dropped(),
        0,
        "golden run must not drop buffer events"
    );

    let reference = offline_reference(&report.snapshot.logs, Some(0));
    assert!(!report.summaries.is_empty());
    assert_eq!(
        report.summaries, reference,
        "self-hosted summaries must be bit-identical to the offline reference"
    );
    assert_eq!(report.snapshot.critical_paths, report.summaries);
}

/// Multi-process, unfenced epochs: workers advance their inputs without
/// waiting for the previous epoch to close, so transit and progress
/// events can be recorded one step after the frontier moved — the case
/// where a lagging attribution epoch could introduce a sample behind the
/// observer frontier and split an epoch into two summaries. The clamp on
/// the observer clock must keep every epoch in exactly one summary, and
/// the result must still equal the offline reference.
#[test]
fn unfenced_multi_process_epochs_get_exactly_one_summary() {
    let config = Config::processes_and_workers(2, 2).telemetry_capacity(1 << 20);
    let (_, report) = execute_with_introspection(
        config,
        IntrospectOptions::default().tap_capacity(1 << 20),
        |worker| {
            let index = worker.index() as u64;
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let probe = stream
                    .unary(Pact::exchange(|_| 0), "HotKey", |_info| {
                        |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                            input.for_each(|time, data| {
                                let folded = data.iter().map(|x| x % 1001).sum();
                                output.session(time).give(folded);
                            });
                        }
                    })
                    .probe();
                (input, probe)
            });
            for epoch in 0..4u64 {
                if worker.index() != 0 {
                    input.send_batch((0..256).map(|r| epoch * 10_000 + index * 1000 + r));
                }
                // No epoch fencing: only wait on the probe, letting the
                // next epoch's sends race the previous epoch's close.
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
            }
            input.close();
            worker.step_until_done();
        },
    )
    .unwrap();

    let mut epochs: Vec<u64> = report.summaries.iter().map(|s| s.epoch).collect();
    let before = epochs.len();
    epochs.dedup();
    assert_eq!(epochs.len(), before, "an epoch was split into two summaries");
    for e in 0..4 {
        assert!(epochs.contains(&e), "epoch {e} has no summary");
    }
    let reference = offline_reference(&report.snapshot.logs, Some(0));
    assert_eq!(report.summaries, reference);
}

/// Four workers, skewed load: every closed epoch yields a summary whose
/// critical path fully accounts for the straggler's wall clock (busy +
/// attributed wait ≥ 95% of the epoch's span), and the straggler is the
/// overloaded worker.
#[test]
fn four_workers_attribute_the_straggler_and_account_the_span() {
    const EPOCHS: u64 = 5;
    let config = Config::single_process(4).telemetry_capacity(1 << 20);
    let (_, report) = execute_with_introspection(
        config,
        IntrospectOptions::default().tap_capacity(1 << 20),
        |worker| skewed_sums(worker, EPOCHS, 256),
    )
    .unwrap();

    let epochs: Vec<u64> = report.summaries.iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, (0..EPOCHS).collect::<Vec<_>>(), "one summary per epoch");

    for summary in &report.summaries {
        assert!(summary.workers >= 1 && summary.workers <= 4);
        assert!(summary.span_ns > 0, "epoch {} has zero span", summary.epoch);
        assert!(summary.critical_path_ns <= summary.span_ns);
        assert!(summary.busy_max_ns > 0, "epoch {} saw no busy time", summary.epoch);
        assert!(summary.busy_max_ns >= summary.busy_min_ns);
        assert!(summary.busy_total_ns >= summary.busy_max_ns);
        assert!(summary.samples > 0);
        // The accounting guarantee: the critical worker's busy time plus
        // the attributed wait residual covers at least 95% of the
        // epoch's measured wall clock.
        let accounted = summary.busy_max_ns + summary.idle_ns;
        assert!(
            accounted * 100 >= summary.span_ns * 95,
            "epoch {}: accounted {} of span {}",
            summary.epoch,
            accounted,
            summary.span_ns
        );
        // Skew: all records route to one worker, so the straggler does
        // more than the mean.
        assert!(summary.skew_milli >= 1000);
    }
    // Straggler attribution: worker 0 receives every record, so it is
    // the critical worker in at least half the epochs (scheduling noise
    // may flip an individual epoch).
    let attributed = report
        .summaries
        .iter()
        .filter(|s| s.critical_worker == 0)
        .count();
    assert!(
        attributed * 2 >= report.summaries.len(),
        "worker 0 attributed in only {attributed} of {} epochs",
        report.summaries.len()
    );
}

/// Recorder-buffer overflow is counted, surfaced in the snapshot and the
/// export header, and never fatal.
#[test]
fn buffer_overflow_is_counted_and_surfaced() {
    let (_, snapshot) = execute_with_telemetry(
        Config::single_process(2).telemetry_capacity(32),
        |worker| skewed_sums(worker, 3, 64),
    )
    .unwrap();
    let dropped = snapshot.total_events_dropped();
    assert!(dropped > 0, "a 32-event buffer must overflow");
    assert!(snapshot.workers.iter().any(|w| w.events_dropped > 0));
    // Recorded + dropped covers every record call; the log holds exactly
    // the recorded prefix.
    for (summary, log) in snapshot.workers.iter().zip(&snapshot.logs) {
        assert_eq!(summary.events_recorded, log.events.len());
    }
    let header = snapshot.events_json_lines();
    let header = header.lines().next().unwrap().to_string();
    assert!(header.contains("\"schema\":\"naiad-telemetry\""));
    assert!(header.contains(&format!("\"dropped\":{dropped}")));
}

/// Tap overflow is counted per worker and never blocks or corrupts the
/// computation.
#[test]
fn tap_overflow_is_counted_not_fatal() {
    let plain = execute(Config::single_process(2), |worker| {
        skewed_sums(worker, 3, 64)
    })
    .unwrap();
    let (observed, report) = execute_with_introspection(
        Config::single_process(2),
        IntrospectOptions::default().tap_capacity(2),
        |worker| skewed_sums(worker, 3, 64),
    )
    .unwrap();
    assert!(report.tap_dropped > 0, "a 2-event tap must overflow");
    assert_eq!(plain, observed, "overflow must not perturb results");
}

/// With autotuning off, introspection is observation only: user results
/// are identical to an uninstrumented run.
#[test]
fn introspection_does_not_perturb_results() {
    let plain = execute(Config::single_process(2), |worker| {
        skewed_sums(worker, 4, 32)
    })
    .unwrap();
    let (observed, report) = execute_with_introspection(
        Config::single_process(2),
        IntrospectOptions::default(),
        |worker| skewed_sums(worker, 4, 32),
    )
    .unwrap();
    assert_eq!(plain, observed);
    assert!(report.decisions.is_empty(), "autotune off makes no decisions");
}

/// The closed loop: with autotuning on, the tuner adjusts the shared
/// knobs within bounds, the decisions surface both in the report and as
/// telemetry events, and results are still correct.
#[test]
fn autotuning_adjusts_knobs_within_bounds() {
    const EPOCHS: u64 = 12;
    let plain = execute(Config::single_process(2), |worker| {
        skewed_sums(worker, EPOCHS, 32)
    })
    .unwrap();
    let config = Config::single_process(2)
        .batch_size(64)
        .telemetry_capacity(1 << 20);
    let (observed, report) = execute_with_introspection(
        config,
        IntrospectOptions::default().autotune(true).tap_capacity(1 << 20),
        |worker| skewed_sums(worker, EPOCHS, 32),
    )
    .unwrap();
    assert_eq!(plain, observed, "tuning batch sizes must not change results");
    assert!(
        !report.decisions.is_empty(),
        "12 epochs give the tuner room for at least one move"
    );
    for decision in &report.decisions {
        assert!(decision.to >= 1 && decision.to <= 65_536);
    }
    // Decisions are logged into the telemetry stream they came from.
    let tuning_events: u64 = report
        .snapshot
        .workers
        .iter()
        .map(|w| w.counters.tuning_decisions)
        .sum();
    assert_eq!(tuning_events, report.decisions.len() as u64);
    let jsonl = report.snapshot.events_json_lines();
    assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"tuning\"") || l.contains("\"knob\":")));
}

/// Overhead regression: a disabled recorder is a single branch per call;
/// an enabled one stays within a generous bound.
#[test]
fn recorder_overhead_is_bounded() {
    const CALLS: u64 = 1_000_000;
    let event = TelemetryEvent::ProgressDeposited {
        dataflow: 1,
        updates: 4,
    };

    let disabled = Recorder::disabled();
    let start = Instant::now();
    for _ in 0..CALLS {
        disabled.record(event);
    }
    let off = start.elapsed();

    let enabled = Recorder::with_capacity(CALLS as usize);
    let start = Instant::now();
    for _ in 0..CALLS {
        enabled.record(event);
    }
    let on = start.elapsed();

    assert!(
        off.as_millis() < 100,
        "disabled recorder took {off:?} for {CALLS} calls"
    );
    assert!(
        on.as_secs() < 2,
        "enabled recorder took {on:?} for {CALLS} calls"
    );
}
