//! End-to-end runtime tests: single worker, multi-worker, multi-process,
//! loops, notifications, and all four progress-protocol modes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::progress::ProgressMode;
use naiad::runtime::Pact;
use naiad::{execute, Config, Timestamp};

/// Doubles every record on one worker; checks epoch grouping.
#[test]
fn single_worker_map_and_capture() {
    let results = execute(Config::single_process(1), |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let doubled = stream.unary(Pact::Pipeline, "Double", |_info| {
                |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                    input.for_each(|time, data| {
                        output
                            .session(time)
                            .give_iterator(data.into_iter().map(|x| x * 2));
                    });
                }
            });
            let captured = doubled.capture();
            (input, captured)
        });
        input.send_batch([1, 2, 3]);
        input.advance_to(1);
        input.send_batch([10]);
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    assert_eq!(results[0], vec![(0, vec![2, 4, 6]), (1, vec![20])],);
}

/// Exchanges records by parity across two workers.
#[test]
fn two_workers_exchange_by_key() {
    let results = execute(Config::single_process(2), |worker| {
        let index = worker.index();
        let (mut input, seen) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let seen = Rc::new(RefCell::new(Vec::new()));
            let sink = seen.clone();
            stream
                .unary(Pact::exchange(|x: &u64| *x), "Route", move |_info| {
                    move |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            sink.borrow_mut().extend(data.iter().copied());
                            output.session(time).give_vec(data);
                        });
                    }
                })
                .probe();
            (input, seen)
        });
        // Each worker feeds a disjoint slice; records route by parity.
        if index == 0 {
            input.send_batch([0, 1, 2, 3]);
        } else {
            input.send_batch([4, 5, 6, 7]);
        }
        input.close();
        worker.step_until_done();
        let mut seen = seen.borrow().clone();
        seen.sort_unstable();
        seen
    })
    .unwrap();
    assert_eq!(results[0], vec![0, 2, 4, 6], "worker 0 sees evens");
    assert_eq!(results[1], vec![1, 3, 5, 7], "worker 1 sees odds");
}

/// Two processes × two workers: serialized cross-process exchange.
#[test]
fn multi_process_exchange() {
    let results = execute(Config::processes_and_workers(2, 2), |worker| {
        let (mut input, seen) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let seen = Rc::new(RefCell::new(0u64));
            let sink = seen.clone();
            stream
                .unary(Pact::exchange(|x: &u64| *x), "Collect", move |_info| {
                    move |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            *sink.borrow_mut() += data.iter().sum::<u64>();
                            output.session(time).give_vec(data);
                        });
                    }
                })
                .probe();
            (input, seen)
        });
        let index = worker.index() as u64;
        input.send_batch((0..100).map(|i| i * 4 + index));
        input.close();
        worker.step_until_done();
        let sum = *seen.borrow();
        sum
    })
    .unwrap();
    // Every record arrives exactly once somewhere: total preserved.
    let total: u64 = results.iter().sum();
    let expected: u64 = (0..100u64)
        .flat_map(|i| (0..4u64).map(move |w| i * 4 + w))
        .sum();
    assert_eq!(total, expected);
    // Exchange by value: worker w received exactly values ≡ w (mod 4).
    for (w, sum) in results.iter().enumerate() {
        let expect: u64 = (0..100).map(|i| i * 4 + w as u64).sum();
        assert_eq!(*sum, expect, "worker {w} got the wrong partition");
    }
}

/// The Figure 4 vertex: distinct records emitted from OnRecv, counts from
/// OnNotify — counts must wait for epoch completion.
#[test]
fn distinct_count_uses_notifications() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut input, distinct_out, counts_out) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<String>();
            let counts: Rc<RefCell<HashMap<u64, HashMap<String, u64>>>> =
                Rc::new(RefCell::new(HashMap::new()));
            let recv_counts = counts.clone();
            let pairs = stream.unary_notify(
                Pact::exchange(|s: &String| s.len() as u64),
                "DistinctCount",
                move |_info| {
                    (
                        move |input: &mut InputPort<String>,
                              output: &mut OutputPort<(String, u64)>,
                              notify: &naiad::dataflow::Notify| {
                            input.for_each(|time, data| {
                                let mut counts = recv_counts.borrow_mut();
                                let per_time = counts.entry(time.epoch).or_insert_with(|| {
                                    notify.notify_at(time);
                                    HashMap::new()
                                });
                                for record in data {
                                    let n = per_time.entry(record.clone()).or_insert(0);
                                    if *n == 0 {
                                        // First sighting: emit immediately.
                                        output.session(time).give((record, 0));
                                    }
                                    *n += 1;
                                }
                            });
                        },
                        move |time: Timestamp,
                              output: &mut OutputPort<(String, u64)>,
                              _notify: &naiad::dataflow::Notify| {
                            let per_time =
                                counts.borrow_mut().remove(&time.epoch).unwrap_or_default();
                            for (record, n) in per_time {
                                output.session(time).give((record, n));
                            }
                        },
                    )
                },
            );
            let distinct_out = Rc::new(RefCell::new(Vec::new()));
            let counts_out = Rc::new(RefCell::new(Vec::new()));
            let d = distinct_out.clone();
            let c = counts_out.clone();
            pairs.subscribe(move |epoch, data| {
                for (record, n) in data {
                    if n == 0 {
                        d.borrow_mut().push((epoch, record));
                    } else {
                        c.borrow_mut().push((epoch, record, n));
                    }
                }
            });
            (input, distinct_out, counts_out)
        });
        if worker.index() == 0 {
            input.send_batch(["a", "bb", "a", "bb", "a"].map(String::from));
        } else {
            input.send_batch(["bb", "ccc"].map(String::from));
        }
        input.close();
        worker.step_until_done();
        let mut d = distinct_out.borrow().clone();
        let mut c = counts_out.borrow().clone();
        d.sort();
        c.sort();
        (d, c)
    })
    .unwrap();
    // Combine both workers' partitions (exchange routes by length).
    let mut distincts: Vec<_> = results.iter().flat_map(|(d, _)| d.clone()).collect();
    let mut counts: Vec<_> = results.iter().flat_map(|(_, c)| c.clone()).collect();
    distincts.sort();
    counts.sort();
    assert_eq!(
        distincts,
        vec![
            (0, "a".to_string()),
            (0, "bb".to_string()),
            (0, "ccc".to_string())
        ]
    );
    assert_eq!(
        counts,
        vec![
            (0, "a".to_string(), 3),
            (0, "bb".to_string(), 3),
            (0, "ccc".to_string(), 1)
        ]
    );
}

/// A loop that increments records until they reach a threshold: exercises
/// ingress, feedback, egress, and progress around a cycle.
#[test]
fn loop_iterates_to_fixed_point() {
    for workers in [1, 2] {
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let lc = scope.loop_context(naiad::graph::ContextId::ROOT);
                let entered = lc.enter(&stream);
                let (handle, cycle) = lc.feedback::<u64>(Some(100));
                let merged = naiad::dataflow::ops::concatenate(&entered, &cycle);
                // Records below 10 go around again incremented; others exit.
                let advanced =
                    merged.unary(Pact::exchange(|x: &u64| *x), "AdvanceSmall", |_info| {
                        |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                            input.for_each(|time, data| {
                                output.session(time).give_iterator(
                                    data.into_iter().filter(|x| *x < 10).map(|x| x + 1),
                                );
                            });
                        }
                    });
                let finished = merged.unary(Pact::Pipeline, "KeepDone", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            output
                                .session(time)
                                .give_iterator(data.into_iter().filter(|x| *x >= 10));
                        });
                    }
                });
                handle.connect(&advanced);
                let out = lc.leave(&finished);
                let captured = out.capture();
                (input, captured)
            });
            if worker.index() == 0 {
                input.send_batch([3, 7, 12]);
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<u64> = results
            .into_iter()
            .flatten()
            .flat_map(|(_, data)| data)
            .collect();
        all.sort_unstable();
        // 3 and 7 climb to 10; 12 passes straight through.
        assert_eq!(all, vec![10, 10, 12], "workers = {workers}");
    }
}

/// All four §3.3 progress modes compute identical results.
#[test]
fn progress_modes_agree() {
    let mut outcomes = Vec::new();
    for mode in [
        ProgressMode::Broadcast,
        ProgressMode::Local,
        ProgressMode::Global,
        ProgressMode::LocalGlobal,
    ] {
        let config = Config::processes_and_workers(2, 2).progress_mode(mode);
        let results = execute(config, |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let summed =
                    stream.unary_notify(Pact::exchange(|x: &u64| *x % 2), "SumPerEpoch", |_info| {
                        let sums: Rc<RefCell<HashMap<u64, u64>>> =
                            Rc::new(RefCell::new(HashMap::new()));
                        let recv_sums = sums.clone();
                        (
                            move |input: &mut InputPort<u64>,
                                  _output: &mut OutputPort<u64>,
                                  notify: &naiad::dataflow::Notify| {
                                input.for_each(|time, data| {
                                    notify.notify_at(time);
                                    *recv_sums.borrow_mut().entry(time.epoch).or_insert(0) +=
                                        data.iter().sum::<u64>();
                                });
                            },
                            move |time: Timestamp,
                                  output: &mut OutputPort<u64>,
                                  _notify: &naiad::dataflow::Notify| {
                                if let Some(sum) = sums.borrow_mut().remove(&time.epoch) {
                                    output.session(time).give(sum);
                                }
                            },
                        )
                    });
                let captured = summed.capture();
                (input, captured)
            });
            for epoch in 0..3u64 {
                input.send_batch((0..50).map(|i| i + 1000 * epoch + worker.index() as u64));
                if epoch < 2 {
                    input.advance_to(epoch + 1);
                }
            }
            input.close();
            worker.step_until_done();
            let data = captured.borrow().clone();
            data
        })
        .unwrap();
        let mut per_epoch: HashMap<u64, u64> = HashMap::new();
        for (epoch, sums) in results.into_iter().flatten() {
            *per_epoch.entry(epoch).or_insert(0) += sums.iter().sum::<u64>();
        }
        let mut sorted: Vec<_> = per_epoch.into_iter().collect();
        sorted.sort_unstable();
        outcomes.push((mode, sorted));
    }
    let reference = outcomes[0].1.clone();
    assert_eq!(reference.len(), 3, "three epochs with data");
    for (mode, result) in &outcomes {
        assert_eq!(result, &reference, "mode {mode:?} diverged");
    }
}

/// Probes report per-epoch completion while the computation streams.
#[test]
fn probe_tracks_epochs() {
    execute(Config::single_process(1), |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let out = stream.inspect(|_, _| {});
            let probe = out.probe();
            let captured = out.capture();
            (input, probe, captured)
        });
        input.send(1);
        // Wait for the input's initial pointstamp to circulate: until
        // then the local view is vacuously complete.
        worker.step_while(|| probe.done_through(0));
        assert!(!probe.done_through(0));
        input.advance_to(1);
        worker.step_while(|| !probe.done_through(0));
        assert!(probe.done_through(0));
        assert!(!probe.done_through(1));
        // The subscribe callback fires on its own notification; give it
        // its step.
        worker.step_while(|| captured.borrow().is_empty());
        assert_eq!(captured.borrow().len(), 1);
        input.send(2);
        input.close();
        worker.step_until_done();
        assert!(probe.done_through(1));
        assert_eq!(captured.borrow().len(), 2);
    })
    .unwrap();
}

/// Purge notifications (§2.4) fire without holding the frontier.
#[test]
fn purge_notifications_fire_after_frontier_passes() {
    let fired = execute(Config::single_process(1), |worker| {
        let (mut input, fired) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let fired = Rc::new(RefCell::new(Vec::new()));
            let log = fired.clone();
            stream.sink_notify(Pact::Pipeline, "Purger", move |_info| {
                (
                    move |input: &mut InputPort<u64>, notify: &naiad::dataflow::Notify| {
                        input.for_each(|time, _data| {
                            notify.notify_at_purge(time);
                        });
                    },
                    move |time: Timestamp, _notify: &naiad::dataflow::Notify| {
                        log.borrow_mut().push(time.epoch);
                    },
                )
            });
            (input, fired)
        });
        input.send(7);
        input.advance_to(1);
        input.send(8);
        input.close();
        worker.step_until_done();
        let fired = fired.borrow().clone();
        fired
    })
    .unwrap();
    assert_eq!(fired[0], vec![0, 1]);
}

/// Broadcast pact delivers a copy to every worker.
#[test]
fn broadcast_pact_reaches_every_worker() {
    let results = execute(Config::processes_and_workers(2, 1), |worker| {
        let (mut input, seen) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let seen = Rc::new(RefCell::new(Vec::new()));
            let sink = seen.clone();
            stream.sink(Pact::Broadcast, "SeeAll", move |_info| {
                move |input: &mut InputPort<u64>| {
                    input.for_each(|_, data| sink.borrow_mut().extend(data));
                }
            });
            (input, seen)
        });
        if worker.index() == 0 {
            input.send_batch([1, 2, 3]);
        }
        input.close();
        worker.step_until_done();
        let mut v = seen.borrow().clone();
        v.sort_unstable();
        v
    })
    .unwrap();
    assert_eq!(results[0], vec![1, 2, 3]);
    assert_eq!(results[1], vec![1, 2, 3]);
}
