//! Fixture tests for the static dataflow analyzer (`naiad::analysis`,
//! DESIGN.md §12): for every rule, one graph that triggers it (asserting
//! the exact diagnostic code) and a neighboring graph that passes.

use naiad::analysis::{analyze, AnalysisConfig, Code, Severity};
use naiad::graph::{ContextId, GraphBuilder, GraphError, PactKind, StageKind};
use naiad::Timestamp;

fn codes(report: &naiad::analysis::AnalysisReport) -> Vec<Code> {
    report.diagnostics().iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------------
// NA0001: zero-delay cycle
// ---------------------------------------------------------------------------

/// A cycle that passes *through* a loop context — ingress, body, feedback,
/// egress — and composes to the identity at the parent depth: the
/// feedback's increment is popped by the egress before the cycle closes.
/// `build()` accepts it (the cycle validator cuts the graph exactly at
/// feedback inputs, and the cycle traverses one), but a record on it can
/// circulate forever; the analyzer must reject it before a worker starts.
fn zero_delay_loop() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let p = g.add_stage("pump", StageKind::Regular, ContextId::ROOT, 2, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i = g.add_ingress("I", ctx);
    let b = g.add_stage("body", StageKind::Regular, ctx, 1, 1);
    let f = g.add_feedback("F", ctx);
    let e = g.add_egress("E", ctx);
    g.connect(input, 0, p, 0);
    g.connect(p, 0, i, 0);
    g.connect(i, 0, b, 0);
    g.connect(b, 0, f, 0);
    g.connect(f, 0, e, 0);
    g.connect(e, 0, p, 1);
    g
}

#[test]
fn zero_delay_cycle_triggers_na0001() {
    // The plain build accepts the graph — that is precisely the gap.
    assert!(zero_delay_loop().build().is_ok());

    let report = analyze(
        &zero_delay_loop().build().unwrap(),
        &AnalysisConfig::default(),
    );
    let hits: Vec<_> = report.with_code(Code::ZeroDelayCycle).collect();
    assert_eq!(hits.len(), 1, "one diagnostic per cycle: {report:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].code.as_str(), "NA0001");
}

#[test]
fn zero_delay_cycle_is_rejected_at_build_checked() {
    // The acceptance contract: rejected before any worker starts, with
    // the structured diagnostic attached.
    let err = zero_delay_loop()
        .build_checked(&AnalysisConfig::default())
        .unwrap_err();
    match err {
        GraphError::Analysis { diagnostic, report } => {
            assert_eq!(diagnostic.code, Code::ZeroDelayCycle);
            assert_eq!(diagnostic.code.as_str(), "NA0001");
            assert_eq!(diagnostic.severity, Severity::Error);
            assert!(!report.is_error_clean());
            // The rendered error names stages, not just ids.
            let text = diagnostic.to_string();
            assert!(text.contains("NA0001"), "{text}");
            assert!(text.contains('\''), "names quoted in message: {text}");
        }
        other => panic!("expected an analysis rejection, got {other:?}"),
    }
}

#[test]
fn proper_loop_passes_na0001() {
    // The §2.1 shape: the cycle goes through the feedback, which
    // increments the loop counter every trip.
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i = g.add_ingress("I", ctx);
    let b = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let f = g.add_feedback("F", ctx);
    let e = g.add_egress("E", ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, i, 0);
    g.connect(i, 0, b, 0);
    g.connect(f, 0, b, 1);
    g.connect(b, 0, f, 0);
    g.connect(b, 0, e, 0);
    g.connect(e, 0, out, 0);
    let (graph, report) = g.build_checked(&AnalysisConfig::default()).unwrap();
    assert!(report.with_code(Code::ZeroDelayCycle).next().is_none());
    assert!(report.diagnostics().is_empty(), "{:?}", codes(&report));
    assert_eq!(graph.stages().len(), 6);
}

#[test]
fn zero_delay_cycle_can_be_suppressed() {
    let config = AnalysisConfig::default().allow(Code::ZeroDelayCycle);
    let (_, report) = zero_delay_loop().build_checked(&config).unwrap();
    assert!(report.with_code(Code::ZeroDelayCycle).next().is_none());

    // Demoting below the deny threshold also lets the graph through,
    // while keeping the finding visible.
    let config = AnalysisConfig::default().set_severity(Code::ZeroDelayCycle, Severity::Warning);
    let (_, report) = zero_delay_loop().build_checked(&config).unwrap();
    let hit = report.with_code(Code::ZeroDelayCycle).next().unwrap();
    assert_eq!(hit.severity, Severity::Warning);
}

// ---------------------------------------------------------------------------
// NA0002: dead vertex
// ---------------------------------------------------------------------------

#[test]
fn orphan_loop_triggers_na0002_unreachable() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, sink, 0);
    // An orphan feedback loop: nothing feeds it.
    let ctx = g.add_context(ContextId::ROOT);
    let b = g.add_stage("orphan_body", StageKind::Regular, ctx, 1, 1);
    let f = g.add_feedback("orphan_F", ctx);
    g.connect(f, 0, b, 0);
    g.connect(b, 0, f, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let dead: Vec<_> = report.with_code(Code::DeadVertex).collect();
    assert!(
        dead.iter().any(|d| d.message.contains("orphan_body")),
        "{dead:?}"
    );
    assert!(dead.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn dropped_output_triggers_na0002_no_sink_path() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let keep = g.add_stage("keep", StageKind::Regular, ContextId::ROOT, 1, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    let drop_ = g.add_stage("dropped", StageKind::Regular, ContextId::ROOT, 1, 1);
    g.connect(input, 0, keep, 0);
    g.connect(keep, 0, sink, 0);
    g.connect(input, 0, drop_, 0); // output of `dropped` goes nowhere
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let dead: Vec<_> = report.with_code(Code::DeadVertex).collect();
    assert_eq!(dead.len(), 1, "{dead:?}");
    assert!(dead[0].message.contains("dropped"), "{:?}", dead[0]);
}

#[test]
fn fully_observed_pipeline_passes_na0002() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let map = g.add_stage("map", StageKind::Regular, ContextId::ROOT, 1, 1);
    let sink = g.add_stage("probe", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, map, 0);
    g.connect(map, 0, sink, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::DeadVertex).next().is_none());
    assert!(report.diagnostics().is_empty(), "{:?}", codes(&report));
}

// ---------------------------------------------------------------------------
// NA0003: unreachable notification
// ---------------------------------------------------------------------------

#[test]
fn wrong_depth_notification_triggers_na0003() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let a = g.add_stage("agg", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, a, 0);
    // `agg` sits at loop depth 0 but requests a depth-1 time.
    g.declare_notification(a, Timestamp::with_counters(0, &[3]));
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::UnreachableNotification).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(hits[0].message.contains("agg"), "{:?}", hits[0]);
}

#[test]
fn notification_with_no_input_path_triggers_na0003() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, sink, 0);
    // A generator chain never fed by any input stage.
    let gen = g.add_stage("gen", StageKind::Regular, ContextId::ROOT, 0, 1);
    let lonely = g.add_stage("lonely", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(gen, 0, lonely, 0);
    g.declare_notification(lonely, Timestamp::new(2));
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::UnreachableNotification).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("lonely"), "{:?}", hits[0]);
}

#[test]
fn reachable_notification_passes_na0003() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let a = g.add_stage("agg", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, a, 0);
    g.declare_notification(a, Timestamp::new(7));
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::UnreachableNotification).next().is_none());
    assert!(report.is_error_clean());
}

// ---------------------------------------------------------------------------
// NA0004: ingress/egress imbalance
// ---------------------------------------------------------------------------

#[test]
fn ingress_without_egress_triggers_na0004() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i = g.add_ingress("I", ctx);
    let b = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let f = g.add_feedback("F", ctx);
    g.connect(input, 0, i, 0);
    g.connect(i, 0, b, 0);
    g.connect(f, 0, b, 1);
    g.connect(b, 0, f, 0);
    // No egress: records that enter never leave.
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::LoopImbalance).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);

    // ... and build_checked denies it under the default config.
    assert!(matches!(
        regraph_ingress_without_egress().build_checked(&AnalysisConfig::default()),
        Err(GraphError::Analysis { diagnostic, .. }) if diagnostic.code == Code::LoopImbalance
    ));
}

/// Same graph as [`ingress_without_egress_triggers_na0004`], rebuilt
/// (builders are consumed by `build`).
fn regraph_ingress_without_egress() -> GraphBuilder {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i = g.add_ingress("I", ctx);
    let b = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let f = g.add_feedback("F", ctx);
    g.connect(input, 0, i, 0);
    g.connect(i, 0, b, 0);
    g.connect(f, 0, b, 1);
    g.connect(b, 0, f, 0);
    g
}

#[test]
fn trapped_ingress_triggers_na0004_warning() {
    // Two entries into one context; only the second can reach the egress.
    let mut g = GraphBuilder::new();
    let in1 = g.add_stage("in1", StageKind::Input, ContextId::ROOT, 0, 1);
    let in2 = g.add_stage("in2", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i1 = g.add_ingress("I1", ctx);
    let i2 = g.add_ingress("I2", ctx);
    let b1 = g.add_stage("spin", StageKind::Regular, ctx, 2, 1);
    let f = g.add_feedback("F", ctx);
    let b2 = g.add_stage("through", StageKind::Regular, ctx, 1, 1);
    let e = g.add_egress("E", ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(in1, 0, i1, 0);
    g.connect(i1, 0, b1, 0);
    g.connect(f, 0, b1, 1);
    g.connect(b1, 0, f, 0); // i1's records spin forever
    g.connect(in2, 0, i2, 0);
    g.connect(i2, 0, b2, 0);
    g.connect(b2, 0, e, 0);
    g.connect(e, 0, out, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::LoopImbalance).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].message.contains("I1"), "{:?}", hits[0]);
}

#[test]
fn balanced_loop_passes_na0004() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let i = g.add_ingress("I", ctx);
    let b = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let f = g.add_feedback("F", ctx);
    let e = g.add_egress("E", ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, i, 0);
    g.connect(i, 0, b, 0);
    g.connect(f, 0, b, 1);
    g.connect(b, 0, f, 0);
    g.connect(b, 0, e, 0);
    g.connect(e, 0, out, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::LoopImbalance).next().is_none());
}

// ---------------------------------------------------------------------------
// NA0005: re-entrancy hazard
// ---------------------------------------------------------------------------

#[test]
fn feedback_self_loop_triggers_na0005() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, sink, 0);
    let ctx = g.add_context(ContextId::ROOT);
    let f = g.add_feedback("tight", ctx);
    g.connect(f, 0, f, 0); // a pipeline self-delivery cycle of length 1
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::ReentrancyHazard).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].message.contains("length 1"), "{:?}", hits[0]);
}

#[test]
fn raised_bound_flags_ordinary_loops() {
    // The standard body ⇄ feedback loop has local cycle length 2: clean
    // under the default bound, flagged when the bound is raised to 3.
    let build = || {
        let mut g = GraphBuilder::new();
        let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
        let ctx = g.add_context(ContextId::ROOT);
        let i = g.add_ingress("I", ctx);
        let b = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
        let f = g.add_feedback("F", ctx);
        let e = g.add_egress("E", ctx);
        let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
        g.connect(input, 0, i, 0);
        g.connect(i, 0, b, 0);
        g.connect(f, 0, b, 1);
        g.connect(b, 0, f, 0);
        g.connect(b, 0, e, 0);
        g.connect(e, 0, out, 0);
        g.build().unwrap()
    };
    let default = analyze(&build(), &AnalysisConfig::default());
    assert!(default.with_code(Code::ReentrancyHazard).next().is_none());

    let strict = analyze(&build(), &AnalysisConfig::default().with_reentrancy_bound(3));
    assert_eq!(strict.with_code(Code::ReentrancyHazard).count(), 1);
}

#[test]
fn exchange_breaks_reentrancy_cycle() {
    // The same tight loop, but the back edge re-partitions: deliveries
    // are no longer guaranteed local, so NA0005 stays quiet.
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, sink, 0);
    let ctx = g.add_context(ContextId::ROOT);
    let f = g.add_feedback("tight", ctx);
    g.connect_with(f, 0, f, 0, PactKind::Exchange);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::ReentrancyHazard).next().is_none());
}

// ---------------------------------------------------------------------------
// NA0006: exchange-contract violation
// ---------------------------------------------------------------------------

#[test]
fn mixed_exchange_and_variant_pipeline_triggers_na0006() {
    let mut g = GraphBuilder::new();
    let in1 = g.add_stage("edges", StageKind::Input, ContextId::ROOT, 0, 1);
    let in2 = g.add_stage("marks", StageKind::Input, ContextId::ROOT, 0, 1);
    let pre = g.add_stage("local_prep", StageKind::Regular, ContextId::ROOT, 1, 1);
    let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(in2, 0, pre, 0);
    g.connect_with(in1, 0, join, 0, PactKind::Exchange);
    // `local_prep` inherits worker-variant placement from the raw input
    // and feeds the keyed join pipelined — a placement-dependent join.
    g.connect_with(pre, 0, join, 1, PactKind::Pipeline);
    g.connect(join, 0, sink, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    let hits: Vec<_> = report.with_code(Code::ExchangeContract).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(hits[0].message.contains("local_prep"), "{:?}", hits[0]);
}

#[test]
fn doubly_exchanged_join_passes_na0006() {
    let mut g = GraphBuilder::new();
    let in1 = g.add_stage("edges", StageKind::Input, ContextId::ROOT, 0, 1);
    let in2 = g.add_stage("marks", StageKind::Input, ContextId::ROOT, 0, 1);
    let pre = g.add_stage("local_prep", StageKind::Regular, ContextId::ROOT, 1, 1);
    let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(in2, 0, pre, 0);
    g.connect_with(in1, 0, join, 0, PactKind::Exchange);
    g.connect_with(pre, 0, join, 1, PactKind::Exchange);
    g.connect(join, 0, sink, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::ExchangeContract).next().is_none());
    assert!(report.is_error_clean());
}

#[test]
fn pipeline_from_aligned_stage_passes_na0006() {
    // A pipelined side-input is fine when its source was itself exchanged:
    // its placement is key-determined, matching the join's contract.
    let mut g = GraphBuilder::new();
    let in1 = g.add_stage("edges", StageKind::Input, ContextId::ROOT, 0, 1);
    let in2 = g.add_stage("marks", StageKind::Input, ContextId::ROOT, 0, 1);
    let pre = g.add_stage("keyed_prep", StageKind::Regular, ContextId::ROOT, 1, 1);
    let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect_with(in2, 0, pre, 0, PactKind::Exchange);
    g.connect_with(in1, 0, join, 0, PactKind::Exchange);
    g.connect_with(pre, 0, join, 1, PactKind::Pipeline);
    g.connect(join, 0, sink, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.with_code(Code::ExchangeContract).next().is_none());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

#[test]
fn reports_render_text_and_json() {
    let report = analyze(
        &zero_delay_loop().build().unwrap(),
        &AnalysisConfig::default(),
    );
    let text = report.render_text("fixture");
    assert!(text.contains("error[NA0001]"), "{text}");
    assert!(text.contains("§2.1"), "{text}");
    let json = report.render_json("fixture");
    assert!(json.contains("\"code\":\"NA0001\""), "{json}");
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
}

#[test]
fn diagnostics_sort_most_severe_first() {
    // A graph with both an Error (NA0001) and a Warning (NA0002): the
    // side chain observes `aux` through a probe-like sink, but `dead_end`'s
    // output reaches nothing.
    let mut g = zero_delay_loop();
    let aux = g.add_stage("aux", StageKind::Input, ContextId::ROOT, 0, 1);
    let dead = g.add_stage("dead_end", StageKind::Regular, ContextId::ROOT, 1, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(aux, 0, dead, 0);
    g.connect(aux, 0, sink, 0);
    let report = analyze(&g.build().unwrap(), &AnalysisConfig::default());
    assert!(report.error_count() >= 1 && report.warning_count() >= 1);
    let severities: Vec<_> = report.diagnostics().iter().map(|d| d.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(severities, sorted, "most severe first: {severities:?}");
    assert_eq!(
        report.first_denied(&AnalysisConfig::default()).unwrap().code,
        Code::ZeroDelayCycle
    );
}

#[test]
fn graph_errors_carry_stage_names() {
    // The satellite contract: validation errors name stages, not just ids.
    let mut g = GraphBuilder::new();
    let a = g.add_stage("producer", StageKind::Regular, ContextId::ROOT, 0, 1);
    let b = g.add_stage("consumer", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(a, 2, b, 0); // output port 2 does not exist
    let err = g.build().unwrap_err();
    let text = err.to_string();
    assert!(text.contains("producer"), "{text}");
}

// ---------------------------------------------------------------------------
// NA0006 rescale-safe certification (AnalysisConfig::rescale_contracts)
// ---------------------------------------------------------------------------

/// An exchange-fed keyed aggregation feeding a sink — the canonical
/// rescale-safe shape, before any state is declared.
fn keyed_pipeline() -> (GraphBuilder, naiad::graph::StageId) {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("input", StageKind::Input, ContextId::ROOT, 0, 1);
    let agg = g.add_stage("keyed_min", StageKind::Regular, ContextId::ROOT, 1, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect_with(input, 0, agg, 0, PactKind::Exchange);
    g.connect(agg, 0, sink, 0);
    (g, agg)
}

#[test]
fn opaque_state_triggers_rescale_certification() {
    // Opaque (non-keyed) state cannot be split across a new partition
    // count, so certification denies it — but only when asked: the same
    // graph is clean under the default config, where a fixed worker set
    // makes opaque state perfectly fine.
    let (mut g, agg) = keyed_pipeline();
    g.declare_stateful(agg, false);
    let graph = g.build().unwrap();
    let report = analyze(&graph, &AnalysisConfig::default().with_rescale_contracts());
    let hits: Vec<_> = report.with_code(Code::ExchangeContract).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(hits[0].message.contains("opaque"), "{:?}", hits[0]);
    assert!(hits[0].message.contains("keyed_min"), "{:?}", hits[0]);
    assert!(
        hits[0].suggestion.contains("register_keyed_state"),
        "{:?}",
        hits[0]
    );
    let relaxed = analyze(&graph, &AnalysisConfig::default());
    assert!(relaxed.is_error_clean(), "{relaxed:?}");
}

#[test]
fn keyed_state_at_worker_variant_placement_triggers_certification() {
    // Keyed state only re-partitions soundly when the stage's records were
    // routed by that key in the first place. A stage fed pipelined from a
    // raw input holds whatever its local worker happened to produce.
    let mut g = GraphBuilder::new();
    let input = g.add_stage("input", StageKind::Input, ContextId::ROOT, 0, 1);
    let agg = g.add_stage("local_acc", StageKind::Regular, ContextId::ROOT, 1, 1);
    let sink = g.add_stage("sink", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect_with(input, 0, agg, 0, PactKind::Pipeline);
    g.connect(agg, 0, sink, 0);
    g.declare_stateful(agg, true);
    let report = analyze(
        &g.build().unwrap(),
        &AnalysisConfig::default().with_rescale_contracts(),
    );
    let hits: Vec<_> = report.with_code(Code::ExchangeContract).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(hits[0].message.contains("worker-variant"), "{:?}", hits[0]);
}

#[test]
fn keyed_state_at_exchanged_stage_passes_certification() {
    let (mut g, agg) = keyed_pipeline();
    g.declare_stateful(agg, true);
    let report = analyze(
        &g.build().unwrap(),
        &AnalysisConfig::default().with_rescale_contracts(),
    );
    assert!(
        report.with_code(Code::ExchangeContract).next().is_none(),
        "{report:?}"
    );
    assert!(report.is_error_clean());
}

#[test]
fn certification_composes_with_severity_overrides() {
    // A migration escape hatch: demote NA0006 to Warning and the denial
    // disappears while the finding remains visible.
    let (mut g, agg) = keyed_pipeline();
    g.declare_stateful(agg, false);
    let config = AnalysisConfig::default()
        .with_rescale_contracts()
        .set_severity(Code::ExchangeContract, Severity::Warning);
    let report = analyze(&g.build().unwrap(), &config);
    assert!(report.is_error_clean());
    assert_eq!(report.with_code(Code::ExchangeContract).count(), 1);
    assert!(report.first_denied(&config).is_none());
}
