//! The general operator builder end to end: a true Figure 4 vertex (one
//! input, two outputs — distinct records eagerly, counts on notify) and a
//! two-input, two-output router, across multiple workers.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::builder::OperatorBuilder;
use naiad::runtime::Pact;
use naiad::{execute, Config, Timestamp};

/// Figure 4 with two real output ports: `distinct` emits from OnRecv,
/// `counts` from OnNotify.
#[test]
fn figure_four_with_two_outputs() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut input, distinct_cap, counts_cap) = worker.dataflow(|scope| {
            let (input, words) = scope.new_input::<String>();
            let context = words.context();
            let mut builder = OperatorBuilder::new(scope, "DistinctCount", context);
            let mut port = builder.add_input(&words, Pact::exchange(|w: &String| w.len() as u64));
            let (distinct_port, distinct) = builder.add_output::<String>();
            let (counts_port, counts) = builder.add_output::<(String, u64)>();
            let notify = builder.notify_handle();
            let state: Rc<RefCell<HashMap<u64, HashMap<String, u64>>>> =
                Rc::new(RefCell::new(HashMap::new()));
            let pump_state = state.clone();
            builder.build(
                move || {
                    let mut worked = false;
                    port.for_each(|time, data| {
                        worked = true;
                        let mut state = pump_state.borrow_mut();
                        let per_time = state.entry(time.epoch).or_insert_with(|| {
                            notify.notify_at(time);
                            HashMap::new()
                        });
                        for word in data {
                            let n = per_time.entry(word.clone()).or_insert(0);
                            if *n == 0 {
                                // Output 1: first sighting, sent eagerly.
                                distinct_port.borrow_mut().give(time, word);
                            }
                            *n += 1;
                        }
                    });
                    port.settle_now();
                    worked
                },
                move |time: Timestamp| {
                    // Output 2: counts, only once the time completes.
                    if let Some(per_time) = state.borrow_mut().remove(&time.epoch) {
                        let mut out = counts_port.borrow_mut();
                        for pair in per_time {
                            out.give(time, pair);
                        }
                    }
                },
            );
            (input, distinct.capture(), counts.capture())
        });
        if worker.index() == 0 {
            input.send_batch(["a", "bb", "a", "bb", "ccc", "a"].map(String::from));
        }
        input.close();
        worker.step_until_done();
        let result = (distinct_cap.borrow().clone(), counts_cap.borrow().clone());
        result
    })
    .unwrap();

    let mut distinct: Vec<String> = results
        .iter()
        .flat_map(|(d, _)| d.iter().flat_map(|(_, v)| v.iter().cloned()))
        .collect();
    distinct.sort();
    assert_eq!(distinct, vec!["a", "bb", "ccc"]);

    let mut counts: Vec<(String, u64)> = results
        .iter()
        .flat_map(|(_, c)| c.iter().flat_map(|(_, v)| v.iter().cloned()))
        .collect();
    counts.sort();
    assert_eq!(
        counts,
        vec![
            ("a".to_string(), 3),
            ("bb".to_string(), 2),
            ("ccc".to_string(), 1)
        ]
    );
}

/// Two typed inputs, two typed outputs: numbers and labels route to
/// separate outputs tagged with which input they came from.
#[test]
fn two_in_two_out_router() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut nums_in, mut labels_in, nums_cap, labels_cap) = worker.dataflow(|scope| {
            let (nums_in, nums) = scope.new_input::<u64>();
            let (labels_in, labels) = scope.new_input::<String>();
            let context = nums.context();
            let mut builder = OperatorBuilder::new(scope, "Router", context);
            let mut nums_port = builder.add_input(&nums, Pact::exchange(|x: &u64| *x));
            let mut labels_port =
                builder.add_input(&labels, Pact::exchange(|s: &String| s.len() as u64));
            let (nums_out, nums_stream) = builder.add_output::<u64>();
            let (labels_out, labels_stream) = builder.add_output::<String>();
            builder.build(
                move || {
                    let mut worked = false;
                    nums_port.for_each(|time, data| {
                        worked = true;
                        for x in data {
                            nums_out.borrow_mut().give(time, x * 10);
                        }
                    });
                    nums_port.settle_now();
                    labels_port.for_each(|time, data| {
                        worked = true;
                        for s in data {
                            labels_out.borrow_mut().give(time, format!("{s}!"));
                        }
                    });
                    labels_port.settle_now();
                    worked
                },
                |_time| {},
            );
            (
                nums_in,
                labels_in,
                nums_stream.capture(),
                labels_stream.capture(),
            )
        });
        if worker.index() == 0 {
            nums_in.send_batch([1, 2]);
            labels_in.send("hey".to_string());
        }
        nums_in.close();
        labels_in.close();
        worker.step_until_done();
        let result = (nums_cap.borrow().clone(), labels_cap.borrow().clone());
        result
    })
    .unwrap();

    let mut nums: Vec<u64> = results
        .iter()
        .flat_map(|(n, _)| n.iter().flat_map(|(_, v)| v.iter().copied()))
        .collect();
    nums.sort_unstable();
    assert_eq!(nums, vec![10, 20]);
    let labels: Vec<String> = results
        .iter()
        .flat_map(|(_, l)| l.iter().flat_map(|(_, v)| v.iter().cloned()))
        .collect();
    assert_eq!(labels, vec!["hey!"]);
}
