//! A Kineograph-like ingest/snapshot/compute engine (§6.3's comparator).
//!
//! Kineograph decouples ingest nodes from compute nodes: updates buffer
//! until an epoch snapshot is cut; computation then runs on the frozen
//! snapshot. The delay from ingest to reflected output is therefore at
//! least the snapshot interval plus the full recompute — the gap Naiad's
//! §6.3 numbers exploit.

use std::collections::HashMap;

/// One buffered tweet-like update.
#[derive(Debug, Clone)]
pub struct Update {
    /// Author.
    pub user: u64,
    /// Hashtags used.
    pub hashtags: Vec<u64>,
    /// Users mentioned.
    pub mentions: Vec<u64>,
}

/// The engine: buffers updates, cuts snapshots, recomputes k-exposure on
/// each snapshot from scratch.
#[derive(Debug, Default)]
pub struct SnapshotEngine {
    buffered: Vec<Update>,
    /// The accumulated graph and event history.
    edges: Vec<(u64, u64)>,
    events: Vec<(u64, u64)>,
    /// Updates ingested since the last snapshot.
    since_snapshot: usize,
}

impl SnapshotEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one update (buffered until the next snapshot).
    pub fn ingest(&mut self, update: Update) {
        self.buffered.push(update);
        self.since_snapshot += 1;
    }

    /// Number of updates awaiting a snapshot.
    pub fn pending(&self) -> usize {
        self.buffered.len()
    }

    /// Cuts a snapshot (folds the buffer into the graph) and recomputes
    /// the full k-exposure table on it. Returns the table and how many
    /// updates the snapshot absorbed.
    pub fn snapshot_and_compute(&mut self) -> (HashMap<(u64, u64), u64>, usize) {
        let absorbed = self.buffered.len();
        for u in self.buffered.drain(..) {
            for &m in &u.mentions {
                self.edges.push((u.user, m));
            }
            for &h in &u.hashtags {
                self.events.push((u.user, h));
            }
        }
        self.since_snapshot = 0;
        // Full recompute, Kineograph-style: exposures from scratch.
        let mut by_author: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(author, mentioned) in &self.edges {
            by_author.entry(author).or_default().push(mentioned);
        }
        let mut distinct: std::collections::HashSet<(u64, u64, u64)> = Default::default();
        for &(author, topic) in &self.events {
            for &user in by_author.get(&author).into_iter().flatten() {
                distinct.insert((user, topic, author));
            }
        }
        let mut counts: HashMap<(u64, u64), u64> = HashMap::new();
        for (user, topic, _) in distinct {
            *counts.entry((user, topic)).or_insert(0) += 1;
        }
        (counts, absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_counts_match_streaming_semantics() {
        let mut engine = SnapshotEngine::new();
        engine.ingest(Update {
            user: 1,
            hashtags: vec![7],
            mentions: vec![9],
        });
        engine.ingest(Update {
            user: 2,
            hashtags: vec![7],
            mentions: vec![9],
        });
        assert_eq!(engine.pending(), 2);
        let (counts, absorbed) = engine.snapshot_and_compute();
        assert_eq!(absorbed, 2);
        assert_eq!(counts.get(&(9, 7)), Some(&2));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn updates_wait_for_the_next_snapshot() {
        let mut engine = SnapshotEngine::new();
        engine.ingest(Update {
            user: 3,
            hashtags: vec![],
            mentions: vec![8],
        });
        let (counts, _) = engine.snapshot_and_compute();
        assert!(counts.is_empty());
        // The event arrives after the edge: only visible next snapshot.
        engine.ingest(Update {
            user: 3,
            hashtags: vec![5],
            mentions: vec![],
        });
        let (counts, _) = engine.snapshot_and_compute();
        assert_eq!(counts.get(&(8, 5)), Some(&1));
    }
}
