//! Reimplementations of the systems the paper compares against (§6).
//!
//! These are not shims: each captures the *mechanism* that determines the
//! comparator's cost profile, so Table 1 and Figures 7a/7b reproduce the
//! right shapes.
//!
//! * [`batch`] — per-iteration state movement engines: a DryadLINQ-like
//!   batch processor that serializes all state between iterations, a
//!   PDW-like relational engine that re-sorts and re-joins tables every
//!   iteration, and an SHS-like store paying a per-access API cost.
//! * [`gas`] — a PowerGraph-like in-memory gather-apply-scatter engine.
//! * [`tree`] — the Vowpal-Wabbit-style tree/butterfly AllReduce, built
//!   *on Naiad streams* like the paper's comparison implementation.
//! * [`snapshot`] — a Kineograph-like ingest/snapshot/compute engine.

#![forbid(unsafe_code)]

pub mod batch;
pub mod gas;
pub mod snapshot;
pub mod tree;
