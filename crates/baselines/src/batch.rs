//! Per-iteration state-movement engines (Table 1 comparators).
//!
//! The paper attributes its up-to-600× Table 1 speedups to one thing:
//! Naiad keeps application state in memory between iterations, while the
//! comparators move it. Each [`EngineKind`] reproduces one movement
//! mechanism; the iteration *logic* is identical across engines, so the
//! measured difference is exactly the mechanism's cost.

use std::collections::HashMap;

use naiad_wire::{decode_from_slice, encode_to_vec, Wire};

/// Which comparator mechanism to pay between iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// DryadLINQ-like: serialize the whole state out and parse it back in
    /// every iteration (the per-iteration cost the paper calls out).
    DryadLinq,
    /// PDW-like: additionally re-sort the edge relation and merge-join it
    /// against the label relation every iteration, as a relational plan
    /// would.
    Pdw,
    /// SHS-like: adjacency stays resident, but every vertex-state access
    /// pays a store API round trip, modelled as extra work per access.
    Shs {
        /// Busy-work iterations per store access (calibrates the
        /// per-access RPC cost).
        access_cost: u32,
    },
}

/// A mini batch engine: iterative jobs over a `(labels, edges)` pair with
/// the chosen inter-iteration mechanism.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    /// The state-movement mechanism.
    pub kind: EngineKind,
    /// Effective distributed-store throughput in bytes/second; every byte
    /// moved between iterations pays this (DryadLINQ writes state through
    /// the cluster filesystem; `None` models an infinitely fast store).
    pub store_bytes_per_sec: Option<f64>,
    /// Per-iteration job-launch overhead in seconds: batch processors
    /// schedule a fresh stage per iteration, a cost independent of data
    /// size — the reason they "favor algorithms that minimize the number
    /// of iterations" (§6.1).
    pub launch_overhead: f64,
}

impl BatchEngine {
    /// An engine with no simulated store delay or launch overhead.
    pub fn in_memory(kind: EngineKind) -> Self {
        BatchEngine {
            kind,
            store_bytes_per_sec: None,
            launch_overhead: 0.0,
        }
    }

    /// An engine whose inter-iteration movement pays `bytes_per_sec` and
    /// whose every iteration pays `launch_overhead` seconds of stage
    /// scheduling.
    pub fn with_store(kind: EngineKind, bytes_per_sec: f64, launch_overhead: f64) -> Self {
        BatchEngine {
            kind,
            store_bytes_per_sec: Some(bytes_per_sec),
            launch_overhead,
        }
    }

    fn store_delay(&self, bytes: usize) {
        let mut seconds = self.launch_overhead;
        if let Some(rate) = self.store_bytes_per_sec {
            seconds += bytes as f64 / rate;
        }
        if seconds > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
        }
    }
}

/// Spin `n` units of busy work (the SHS per-access stand-in).
#[inline]
fn busy(n: u32) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc
}

impl BatchEngine {
    /// Runs `iterations` of a label-update rule: each iteration recomputes
    /// every node's label from its neighbours' labels. Used for both WCC
    /// (min rule) and PageRank-style updates via `step`.
    ///
    /// `step(labels, edges) -> labels` must be a pure per-iteration
    /// function; the engine pays its movement mechanism around each call.
    pub fn iterate<S: Wire + Clone>(
        &self,
        mut state: S,
        iterations: usize,
        mut step: impl FnMut(S) -> S,
    ) -> (S, u64) {
        let mut moved_bytes = 0u64;
        let mut sink = 0u64;
        for _ in 0..iterations {
            state = step(state);
            // The mechanism: externalize and re-internalize all state.
            let bytes = encode_to_vec(&state);
            moved_bytes += bytes.len() as u64;
            self.store_delay(bytes.len());
            state = decode_from_slice(&bytes).expect("round trip");
            if let EngineKind::Shs { access_cost } = self.kind {
                sink = sink.wrapping_add(busy(access_cost));
            }
        }
        std::hint::black_box(sink);
        (state, moved_bytes)
    }

    /// WCC by synchronous label iteration until fixpoint (bounded by
    /// `max_iterations`), paying the engine's mechanism per iteration.
    /// Returns the component map and total bytes moved between iterations.
    pub fn wcc(&self, edges: &[(u64, u64)], max_iterations: usize) -> (HashMap<u64, u64>, u64) {
        let mut labels: HashMap<u64, u64> = HashMap::new();
        for &(a, b) in edges {
            labels.entry(a).or_insert(a);
            labels.entry(b).or_insert(b);
        }
        let mut state: Vec<(u64, u64)> = labels.into_iter().collect();
        state.sort_unstable();
        let mut moved = 0u64;
        let mut sink = 0u64;
        for _ in 0..max_iterations {
            let mut labels: HashMap<u64, u64> = state.iter().copied().collect();
            let mut edge_rel: Vec<(u64, u64)> = edges.to_vec();
            if self.kind == EngineKind::Pdw {
                // The relational plan sorts the edge table and the label
                // table before a merge join — every iteration.
                edge_rel.sort_unstable();
                state.sort_unstable();
            }
            let mut changed = false;
            for &(a, b) in &edge_rel {
                let la = labels[&a];
                let lb = labels[&b];
                let min = la.min(lb);
                if la != min {
                    labels.insert(a, min);
                    changed = true;
                    if let EngineKind::Shs { access_cost } = self.kind {
                        // The store pays per mutation; unchanged labels
                        // ride the resident adjacency for free — why SHS
                        // fares comparatively well on incremental WCC.
                        sink = sink.wrapping_add(busy(access_cost));
                    }
                }
                if lb != min {
                    labels.insert(b, min);
                    changed = true;
                    if let EngineKind::Shs { access_cost } = self.kind {
                        sink = sink.wrapping_add(busy(access_cost));
                    }
                }
            }
            state = labels.into_iter().collect();
            state.sort_unstable();
            // Movement mechanism: the label state goes out through the
            // store and the edge relation is rematerialized for the next
            // iteration's join.
            let bytes = encode_to_vec(&state);
            let edge_bytes = encode_to_vec(&edge_rel);
            moved += (bytes.len() + edge_bytes.len()) as u64;
            self.store_delay(bytes.len() + edge_bytes.len());
            state = decode_from_slice(&bytes).expect("round trip");
            let _: Vec<(u64, u64)> = decode_from_slice(&edge_bytes).expect("round trip");
            if !changed {
                break;
            }
        }
        std::hint::black_box(sink);
        (state.into_iter().collect(), moved)
    }

    /// PageRank with the engine's per-iteration movement mechanism.
    pub fn pagerank(&self, edges: &[(u64, u64)], iterations: usize) -> (HashMap<u64, f64>, u64) {
        let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut nodes: std::collections::HashSet<u64> = Default::default();
        for &(a, b) in edges {
            adjacency.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        let mut state: Vec<(u64, f64)> = nodes.iter().map(|&n| (n, 1.0)).collect();
        state.sort_by_key(|(n, _)| *n);
        let mut moved = 0u64;
        let mut sink = 0u64;
        for _ in 0..iterations {
            let ranks: HashMap<u64, f64> = state.iter().copied().collect();
            let mut edge_rel: Vec<(u64, u64)> = edges.to_vec();
            if self.kind == EngineKind::Pdw {
                edge_rel.sort_unstable();
            }
            let mut sums: HashMap<u64, f64> = HashMap::new();
            for (&src, dsts) in &adjacency {
                let share = ranks[&src] / dsts.len() as f64;
                for &dst in dsts {
                    if let EngineKind::Shs { access_cost } = self.kind {
                        // Every link traversal is a store access: PageRank
                        // touches all 8B edges every iteration, which is
                        // why SHS is slowest on it (Table 1).
                        sink = sink.wrapping_add(busy(access_cost));
                    }
                    *sums.entry(dst).or_insert(0.0) += share;
                }
            }
            std::hint::black_box(&edge_rel);
            state = state
                .iter()
                .map(|&(n, _)| (n, 0.15 + 0.85 * sums.get(&n).copied().unwrap_or(0.0)))
                .collect();
            let bytes = encode_to_vec(&state);
            let edge_bytes = encode_to_vec(&edge_rel);
            moved += (bytes.len() + edge_bytes.len()) as u64;
            self.store_delay(bytes.len() + edge_bytes.len());
            state = decode_from_slice(&bytes).expect("round trip");
            let _: Vec<(u64, u64)> = decode_from_slice(&edge_bytes).expect("round trip");
        }
        std::hint::black_box(sink);
        (state.into_iter().collect(), moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn wcc_converges_to_single_component() {
        let engine = BatchEngine::in_memory(EngineKind::DryadLinq);
        let (labels, moved) = engine.wcc(&ring(16), 32);
        assert!(labels.values().all(|&l| l == 0));
        assert!(moved > 0, "the mechanism must move bytes");
    }

    #[test]
    fn engines_agree_on_results() {
        let edges = ring(12);
        let kinds = [
            EngineKind::DryadLinq,
            EngineKind::Pdw,
            EngineKind::Shs { access_cost: 50 },
        ];
        let reference = BatchEngine::in_memory(kinds[0]).wcc(&edges, 32).0;
        for kind in &kinds[1..] {
            let got = BatchEngine::in_memory(*kind).wcc(&edges, 32).0;
            assert_eq!(got, reference, "{kind:?}");
        }
    }

    #[test]
    fn pagerank_matches_naiad_reference_logic() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 1)];
        let engine = BatchEngine::in_memory(EngineKind::DryadLinq);
        let (ranks, _) = engine.pagerank(&edges, 5);
        // Conservation: total rank = 0.15n + 0.85·(distributed rank).
        let total: f64 = ranks.values().sum();
        assert!((total - 3.0).abs() < 0.2, "total rank {total}");
    }

    #[test]
    fn store_throughput_slows_movement() {
        let fast = BatchEngine::in_memory(EngineKind::DryadLinq);
        let slow = BatchEngine::with_store(EngineKind::DryadLinq, 2.0e6, 0.0);
        let state: Vec<u64> = (0..20_000).collect();
        let t0 = std::time::Instant::now();
        let _ = fast.iterate(state.clone(), 3, |s| s);
        let fast_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = slow.iterate(state, 3, |s| s);
        let slow_t = t1.elapsed();
        assert!(slow_t > fast_t + std::time::Duration::from_millis(20));
    }

    #[test]
    fn iterate_pays_serialization_every_round() {
        let engine = BatchEngine::in_memory(EngineKind::DryadLinq);
        let state: Vec<u64> = (0..1000).collect();
        let (_, moved) = engine.iterate(state.clone(), 10, |s| s);
        let once = encode_to_vec(&state).len() as u64;
        assert_eq!(moved, once * 10);
    }
}
