//! A PowerGraph-like gather-apply-scatter engine (§6.1's comparator).
//!
//! Synchronous GAS over a vertex-cut: edges are partitioned into shards,
//! each shard gathers partial sums for its local edge set, partials merge
//! at vertex masters, apply updates the vertex value, and scatter renews
//! the shard-local caches — the mechanism whose per-iteration cost the
//! Figure 7a PowerGraph line reflects.

use std::collections::HashMap;

/// A sharded graph in GAS layout.
#[derive(Debug)]
pub struct GasEngine {
    shards: Vec<Vec<(u64, u64)>>,
    /// Vertex master table: rank and out-degree.
    vertices: HashMap<u64, (f64, u64)>,
}

impl GasEngine {
    /// Partitions `edges` into `shards` by a simple edge hash (a stand-in
    /// for PowerGraph's greedy vertex cut).
    pub fn new(edges: &[(u64, u64)], shards: usize) -> Self {
        assert!(shards > 0);
        let mut parts = vec![Vec::new(); shards];
        let mut vertices: HashMap<u64, (f64, u64)> = HashMap::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            parts[i % shards].push((a, b));
            vertices.entry(a).or_insert((1.0, 0)).1 += 1;
            vertices.entry(b).or_insert((1.0, 0));
        }
        GasEngine {
            shards: parts,
            vertices,
        }
    }

    /// One synchronous PageRank GAS round; returns the number of
    /// shard-to-master partial messages (the replication-factor traffic
    /// PowerGraph's vertex cuts minimize).
    pub fn pagerank_round(&mut self) -> u64 {
        let mut messages = 0u64;
        let mut sums: HashMap<u64, f64> = HashMap::new();
        // Gather per shard, then merge partials at the master.
        for shard in &self.shards {
            let mut partial: HashMap<u64, f64> = HashMap::new();
            for &(src, dst) in shard {
                let (rank, degree) = self.vertices[&src];
                partial
                    .entry(dst)
                    .and_modify(|p| *p += rank / degree as f64)
                    .or_insert(rank / degree as f64);
            }
            messages += partial.len() as u64;
            for (v, p) in partial {
                *sums.entry(v).or_insert(0.0) += p;
            }
        }
        // Apply.
        for (v, (rank, _)) in self.vertices.iter_mut() {
            *rank = 0.15 + 0.85 * sums.get(v).copied().unwrap_or(0.0);
        }
        messages
    }

    /// Runs `iterations` rounds and returns the final ranks.
    pub fn pagerank(&mut self, iterations: usize) -> HashMap<u64, f64> {
        for _ in 0..iterations {
            self.pagerank_round();
        }
        self.vertices.iter().map(|(v, (r, _))| (*v, *r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_matches_plain_pagerank() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (2, 1), (0, 2)];
        let mut gas = GasEngine::new(&edges, 3);
        let ours = gas.pagerank(6);
        // Plain reference.
        let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, b) in &edges {
            adjacency.entry(a).or_default().push(b);
        }
        let mut ranks: HashMap<u64, f64> = [(0, 1.0), (1, 1.0), (2, 1.0)].into();
        for _ in 0..6 {
            let mut sums: HashMap<u64, f64> = HashMap::new();
            for (&s, ds) in &adjacency {
                for &d in ds {
                    *sums.entry(d).or_insert(0.0) += ranks[&s] / ds.len() as f64;
                }
            }
            for (n, r) in ranks.iter_mut() {
                *r = 0.15 + 0.85 * sums.get(n).copied().unwrap_or(0.0);
            }
        }
        for (n, r) in &ours {
            assert!((r - ranks[n]).abs() < 1e-9, "node {n}");
        }
    }

    #[test]
    fn more_shards_mean_more_partial_messages() {
        let edges: Vec<(u64, u64)> = (0..200).map(|i| (i % 20, (i * 7) % 20)).collect();
        let few = GasEngine::new(&edges, 2).pagerank_round();
        let many = GasEngine::new(&edges, 16).pagerank_round();
        assert!(many > few, "replication grows with shards: {few} vs {many}");
    }
}
