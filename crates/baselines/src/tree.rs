//! The Vowpal-Wabbit-style AllReduce, built on Naiad streams (§6.2).
//!
//! The paper verified its comparison by reimplementing VW's tree AllReduce
//! *in Naiad*; this module does the same with a butterfly (hypercube)
//! exchange: `⌈log₂ k⌉` sequential stages, each pairing workers across one
//! address bit and moving the full vector — the per-worker traffic is
//! `V·log k` against the data-parallel operator's `2V`, which is the gap
//! Figure 7b plots.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;

/// Element-wise sum across one vector per worker per epoch, delivered to
/// every worker, via a butterfly of pairwise exchanges.
///
/// Workers whose partner index falls outside the worker count fold with
/// nobody at that level (their vector passes through), so any worker
/// count is supported.
pub fn tree_all_reduce_sum(vectors: &Stream<Vec<f64>>) -> Stream<Vec<f64>> {
    let scope = vectors.scope();
    let peers = scope.peers();
    // The butterfly runs over the largest power of two ≤ peers; surplus
    // workers fold their vectors in beforehand and receive copies after.
    let base = if peers.is_power_of_two() {
        peers
    } else {
        peers.next_power_of_two() / 2
    };
    let levels = base.trailing_zeros();
    // Tag with the owning worker so each stage can route pairs.
    let tagged: Stream<(u64, Vec<f64>)> = vectors.unary(Pact::Pipeline, "TreeTag", |info| {
        let me = info.worker_index as u64;
        move |input: &mut InputPort<Vec<f64>>, output: &mut OutputPort<(u64, Vec<f64>)>| {
            input.for_each(|time, data| {
                let mut session = output.session(time);
                for v in data {
                    session.give((me, v));
                }
            });
        }
    });
    // Pre-fold: workers beyond the butterfly send their vector down.
    let base64 = base as u64;
    let mut current: Stream<(u64, Vec<f64>)> = tagged.unary(
        Pact::exchange(move |(w, _): &(u64, Vec<f64>)| w % base64),
        "TreeFoldIn",
        move |info| {
            let peers = info.peers as u64;
            let mut pending: std::collections::HashMap<(naiad::Timestamp, u64), (usize, Vec<f64>)> =
                std::collections::HashMap::new();
            move |input: &mut InputPort<(u64, Vec<f64>)>,
                  output: &mut OutputPort<(u64, Vec<f64>)>| {
                input.for_each(|time, data| {
                    let mut session = output.session(time);
                    for (w, v) in data {
                        let target = w % base64;
                        let expected = if target + base64 < peers { 2 } else { 1 };
                        let entry = pending
                            .entry((time, target))
                            .or_insert_with(|| (0, vec![0.0; v.len()]));
                        for (acc, x) in entry.1.iter_mut().zip(&v) {
                            *acc += x;
                        }
                        entry.0 += 1;
                        if entry.0 == expected {
                            let (_, summed) =
                                pending.remove(&(time, target)).expect("just updated");
                            session.give((target, summed));
                        }
                    }
                });
            }
        },
    );
    for level in 0..levels {
        let bit = 1u64 << level;
        current = current.unary(
            // Deliver to the lower partner of each pair: both (w) and
            // (w ^ bit) route to min(w, w ^ bit)... both halves must
            // combine, then each partner needs the result, so route to
            // the pair representative and emit for both members.
            Pact::exchange(move |(w, _): &(u64, Vec<f64>)| w & !bit),
            "TreeLevel",
            move |_info| {
                let mut pending: std::collections::HashMap<(naiad::Timestamp, u64), Vec<f64>> =
                    std::collections::HashMap::new();
                move |input: &mut InputPort<(u64, Vec<f64>)>,
                      output: &mut OutputPort<(u64, Vec<f64>)>| {
                    input.for_each(|time, data| {
                        let mut session = output.session(time);
                        for (w, v) in data {
                            let rep = w & !bit;
                            let partner = rep | bit;
                            match pending.remove(&(time, rep)) {
                                None => {
                                    pending.insert((time, rep), v);
                                }
                                Some(other) => {
                                    let summed: Vec<f64> =
                                        v.iter().zip(&other).map(|(a, b)| a + b).collect();
                                    // Both pair members continue with the
                                    // combined vector.
                                    session.give((rep, summed.clone()));
                                    session.give((partner, summed));
                                }
                            }
                        }
                    });
                }
            },
        );
    }
    // Post-unfold: butterfly members forward copies to the workers that
    // folded in, then every copy routes home.
    let unfolded = current.unary(Pact::Pipeline, "TreeFoldOut", move |info| {
        let peers = info.peers as u64;
        move |input: &mut InputPort<(u64, Vec<f64>)>, output: &mut OutputPort<(u64, Vec<f64>)>| {
            input.for_each(|time, data| {
                let mut session = output.session(time);
                for (w, v) in data {
                    if w + base64 < peers {
                        session.give((w + base64, v.clone()));
                    }
                    session.give((w, v));
                }
            });
        }
    });
    // Route each worker's copy home and strip the tag.
    unfolded.unary(
        Pact::exchange(|(w, _): &(u64, Vec<f64>)| *w),
        "TreeUntag",
        |_info| {
            |input: &mut InputPort<(u64, Vec<f64>)>, output: &mut OutputPort<Vec<f64>>| {
                input.for_each(|time, data| {
                    let mut session = output.session(time);
                    for (_, v) in data {
                        session.give(v);
                    }
                });
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    #[test]
    fn butterfly_matches_data_parallel_allreduce() {
        for workers in [1, 2, 3, 4] {
            let results = execute(Config::single_process(workers), |worker| {
                let (mut input, captured) = worker.dataflow(|scope| {
                    let (input, vectors) = scope.new_input::<Vec<f64>>();
                    (input, tree_all_reduce_sum(&vectors).capture())
                });
                let me = worker.index() as f64;
                input.send(vec![me, 2.0 * me, 1.0]);
                input.close();
                worker.step_until_done();
                let result = captured.borrow().clone();
                result
            })
            .unwrap();
            let w = workers as f64;
            let base: f64 = (0..workers).map(|i| i as f64).sum();
            for per_worker in &results {
                let all: Vec<&Vec<f64>> = per_worker.iter().flat_map(|(_, d)| d.iter()).collect();
                assert_eq!(all.len(), 1, "workers={workers}");
                assert_eq!(all[0], &vec![base, 2.0 * base, w], "workers={workers}");
            }
        }
    }
}
