//! A Pregel port as a Naiad library (§4.2).
//!
//! The paper bases its Pregel implementation on a custom vertex with
//! several strongly typed inputs and outputs connected via feedback edges.
//! This crate does the same: a vertex stage inside a loop context receives
//! graph *seeds* through the ingress and *messages* through the feedback
//! edge; notifications delimit supersteps (a superstep is one loop
//! iteration, and `OnNotify` at iteration `s` fires only when every
//! message of superstep `s` has been delivered — the bulk-synchronous
//! barrier for free); state updates leave through the egress.
//!
//! Message *combiners* are applied at the sending vertex, and each epoch's
//! state is reclaimed when its run ends.
//!
//! # Examples
//!
//! Single-source shortest paths, the classic Pregel program:
//!
//! ```
//! use naiad::{execute, Config};
//! use naiad_pregel::{pregel, Compute, VertexProgram};
//!
//! struct ShortestPaths;
//! impl VertexProgram for ShortestPaths {
//!     type State = u64; // distance from source
//!     type Msg = u64;
//!     fn compute(&mut self, ctx: &mut Compute<'_, Self>) {
//!         let best = ctx.messages().iter().copied().min();
//!         let improved = match best {
//!             Some(d) if d < *ctx.state() => {
//!                 *ctx.state_mut() = d;
//!                 true
//!             }
//!             _ => ctx.superstep() == 0 && *ctx.state() == 0,
//!         };
//!         if improved {
//!             let d = *ctx.state();
//!             ctx.send_to_all(d + 1);
//!         }
//!         ctx.vote_to_halt();
//!     }
//!     fn combine(&self, a: u64, b: u64) -> Option<u64> {
//!         Some(a.min(b))
//!     }
//! }
//!
//! let results = execute(Config::single_process(2), |worker| {
//!     let (mut seeds, captured) = worker.dataflow(|scope| {
//!         let (input, seed_stream) = scope.new_input::<(u64, (u64, Vec<u64>))>();
//!         let final_states = pregel(&seed_stream, ShortestPaths, 10);
//!         (input, final_states.capture())
//!     });
//!     if worker.index() == 0 {
//!         // A path 0 → 1 → 2; vertex 0 is the source (distance 0).
//!         seeds.send((0, (0, vec![1])));
//!         seeds.send((1, (u64::MAX, vec![2])));
//!         seeds.send((2, (u64::MAX, vec![])));
//!     }
//!     seeds.close();
//!     worker.step_until_done();
//!     let result = captured.borrow().clone();
//!     result
//! })
//! .unwrap();
//! let mut dists: Vec<_> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
//! dists.sort();
//! assert_eq!(dists, vec![(0, 0), (1, 1), (2, 2)]);
//! ```

#![forbid(unsafe_code)]

// Dataflow state cells are inherently nested (`Rc<RefCell<HashMap<…>>>`);
// naming each shape would add indirection without clarity.
#![allow(clippy::type_complexity)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::ops::concatenate;
use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_operators::hash_of;
use naiad_operators::prelude::*;
use naiad_wire::{ExchangeData, Wire, WireError};

/// A Pregel vertex program.
pub trait VertexProgram: Sized + 'static {
    /// Per-vertex state (Pregel's vertex value).
    type State: ExchangeData;
    /// Messages exchanged along edges.
    type Msg: ExchangeData;

    /// Runs once per active vertex per superstep. Following Pregel's
    /// semantics, every vertex is active at superstep 0 and stays active
    /// until it calls [`Compute::vote_to_halt`]; a message reactivates a
    /// halted vertex for the superstep it is delivered in.
    fn compute(&mut self, ctx: &mut Compute<'_, Self>);

    /// Combines two messages addressed to the same vertex (Pregel's
    /// combiner); return `None` to keep both.
    fn combine(&self, _a: Self::Msg, _b: Self::Msg) -> Option<Self::Msg> {
        None
    }
}

/// The per-vertex, per-superstep execution context.
pub struct Compute<'a, P: VertexProgram> {
    superstep: u64,
    vertex: u64,
    state: &'a mut P::State,
    changed: &'a mut bool,
    halted: &'a mut bool,
    edges: &'a [u64],
    messages: &'a [P::Msg],
    outbox: &'a mut Vec<(u64, P::Msg)>,
    mutations: &'a mut Vec<Mutation>,
}

/// A topology mutation requested during a superstep, applied before the
/// next one (Pregel's graph-mutation semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    AddEdge { from: u64, to: u64 },
    RemoveEdge { from: u64, to: u64 },
}

impl<P: VertexProgram> Compute<'_, P> {
    /// The current superstep (0-based).
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// This vertex's identifier.
    pub fn vertex(&self) -> u64 {
        self.vertex
    }

    /// The vertex state.
    pub fn state(&self) -> &P::State {
        self.state
    }

    /// Mutable access to the vertex state; marks it changed, so the final
    /// output reflects it.
    pub fn state_mut(&mut self) -> &mut P::State {
        *self.changed = true;
        self.state
    }

    /// Outgoing edge targets.
    pub fn edges(&self) -> &[u64] {
        self.edges
    }

    /// Messages delivered to this vertex this superstep.
    pub fn messages(&self) -> &[P::Msg] {
        self.messages
    }

    /// Sends a message, delivered at the next superstep.
    pub fn send(&mut self, target: u64, message: P::Msg) {
        self.outbox.push((target, message));
    }

    /// Sends a copy of `message` to every out-neighbour; the last
    /// neighbour consumes the original.
    pub fn send_to_all(&mut self, message: P::Msg) {
        let last = self.edges.len().saturating_sub(1);
        let mut message = Some(message);
        for (i, &e) in self.edges.iter().enumerate() {
            let msg = if i == last {
                message.take().expect("message moved once")
            } else {
                message.clone().expect("message present until last")
            };
            self.outbox.push((e, msg));
        }
    }

    /// Votes to halt: the vertex will not run again unless a message
    /// arrives for it. The computation ends when every vertex has halted
    /// and no messages are in flight.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Adds an out-edge from this vertex to `target`, visible from the
    /// next superstep (Pregel's graph mutation, which the paper's port
    /// supports through its extra inputs).
    pub fn add_edge(&mut self, target: u64) {
        self.mutations.push(Mutation::AddEdge {
            from: self.vertex,
            to: target,
        });
    }

    /// Removes every out-edge from this vertex to `target`, effective
    /// from the next superstep.
    pub fn remove_edge(&mut self, target: u64) {
        self.mutations.push(Mutation::RemoveEdge {
            from: self.vertex,
            to: target,
        });
    }
}

/// Loop payload: either a message or a state report leaving the loop.
#[derive(Clone, Debug)]
enum Payload<M, S> {
    /// `(target, message)` riding the feedback edge.
    Msg(u64, M),
    /// `(vertex, superstep, state)` heading for the egress.
    State(u64, u64, S),
}

impl<M: Wire, S: Wire> Wire for Payload<M, S> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Payload::Msg(t, m) => {
                buf.push(0);
                t.encode(buf);
                m.encode(buf);
            }
            Payload::State(v, s, st) => {
                buf.push(1);
                v.encode(buf);
                s.encode(buf);
                st.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        match tag {
            0 => Ok(Payload::Msg(u64::decode(input)?, M::decode(input)?)),
            1 => Ok(Payload::State(
                u64::decode(input)?,
                u64::decode(input)?,
                S::decode(input)?,
            )),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

struct VertexData<P: VertexProgram> {
    state: P::State,
    edges: Vec<u64>,
    halted: bool,
}

struct EpochRun<P: VertexProgram> {
    vertices: HashMap<u64, VertexData<P>>,
    /// Messages gathered per superstep, keyed by target vertex.
    inboxes: HashMap<u64, HashMap<u64, Vec<P::Msg>>>,
}

impl<P: VertexProgram> Default for EpochRun<P> {
    fn default() -> Self {
        EpochRun {
            vertices: HashMap::new(),
            inboxes: HashMap::new(),
        }
    }
}

/// Runs `program` over the graph described by `seeds` for at most
/// `max_supersteps`, returning each vertex's final state, once per epoch.
///
/// Each seed record is `(vertex, (initial state, out-neighbours))`,
/// partitioned by vertex id. Every epoch of seeds is an independent Pregel
/// run.
pub fn pregel<P: VertexProgram>(
    seeds: &Stream<(u64, (P::State, Vec<u64>))>,
    program: P,
    max_supersteps: u64,
) -> Stream<(u64, P::State)> {
    let mut scope = seeds.scope();
    let lc = scope.loop_context(seeds.context());
    let entered = lc.enter(seeds);
    let (handle, cycle) = lc.feedback::<Payload<P::Msg, P::State>>(Some(max_supersteps + 1));

    // The custom vertex: input 0 carries seeds, input 1 carries loop
    // payloads.
    let out: Stream<Payload<P::Msg, P::State>> = entered.binary_notify(
        &cycle,
        Pact::exchange(|(v, _): &(u64, (P::State, Vec<u64>))| hash_of(v)),
        Pact::exchange(|p: &Payload<P::Msg, P::State>| match p {
            Payload::Msg(t, _) => hash_of(t),
            Payload::State(v, _, _) => hash_of(v),
        }),
        "PregelVertex",
        move |_info| {
            let mut program = program;
            let runs: Rc<RefCell<HashMap<u64, EpochRun<P>>>> =
                Rc::new(RefCell::new(HashMap::new()));
            let recv_runs = runs.clone();
            (
                move |seeds: &mut InputPort<(u64, (P::State, Vec<u64>))>,
                      loopback: &mut InputPort<Payload<P::Msg, P::State>>,
                      _output: &mut OutputPort<Payload<P::Msg, P::State>>,
                      notify: &Notify| {
                    let mut runs = recv_runs.borrow_mut();
                    seeds.for_each(|time, data| {
                        // Superstep 0 for this epoch: run compute for every
                        // seeded vertex once the seeds are complete.
                        notify.notify_at(time);
                        let run = runs.entry(time.epoch).or_default();
                        for (v, (state, edges)) in data {
                            run.vertices.insert(
                                v,
                                VertexData {
                                    state,
                                    edges,
                                    halted: false,
                                },
                            );
                        }
                    });
                    loopback.for_each(|time, data| {
                        let run = runs.entry(time.epoch).or_default();
                        let superstep = superstep_of(&time);
                        let first = !run.inboxes.contains_key(&superstep);
                        let inbox = run.inboxes.entry(superstep).or_default();
                        for payload in data {
                            if let Payload::Msg(target, msg) = payload {
                                inbox.entry(target).or_default().push(msg);
                            }
                        }
                        if first {
                            // The superstep barrier: OnNotify fires once all
                            // of this iteration's messages are in.
                            notify.notify_at(time);
                        }
                    });
                },
                move |time: Timestamp,
                      output: &mut OutputPort<Payload<P::Msg, P::State>>,
                      notify_handle: &Notify| {
                    let mut runs = runs.borrow_mut();
                    let superstep = superstep_of(&time);
                    let Some(run) = runs.get_mut(&time.epoch) else {
                        return;
                    };
                    let inbox = run.inboxes.remove(&superstep).unwrap_or_default();
                    // Pregel activation: non-halted vertices plus any
                    // vertex with mail.
                    let mut active: Vec<u64> = run
                        .vertices
                        .iter()
                        .filter(|(v, d)| !d.halted || inbox.contains_key(v))
                        .map(|(v, _)| *v)
                        .collect();
                    // Deterministic order keeps runs reproducible.
                    active.sort_unstable();
                    let mut outbox: Vec<(u64, P::Msg)> = Vec::new();
                    let mut mutations: Vec<Mutation> = Vec::new();
                    let mut session = output.session(time);
                    let empty: Vec<P::Msg> = Vec::new();
                    for v in active {
                        let Some(data) = run.vertices.get_mut(&v) else {
                            continue; // Message to an unseeded vertex.
                        };
                        let messages = inbox.get(&v).map_or(&empty, |m| m);
                        let mut changed = false;
                        // Receiving mail reactivates a halted vertex.
                        data.halted = false;
                        let mut ctx = Compute::<P> {
                            superstep,
                            vertex: v,
                            state: &mut data.state,
                            changed: &mut changed,
                            halted: &mut data.halted,
                            edges: &data.edges,
                            messages,
                            outbox: &mut outbox,
                            mutations: &mut mutations,
                        };
                        program.compute(&mut ctx);
                        if changed || superstep == 0 {
                            session.give(Payload::State(v, superstep, data.state.clone()));
                        }
                    }
                    // Apply topology mutations before the next superstep;
                    // all mutating vertices live on this worker, so no
                    // extra exchange is needed for the out-edge list.
                    for mutation in mutations.drain(..) {
                        match mutation {
                            Mutation::AddEdge { from, to } => {
                                if let Some(data) = run.vertices.get_mut(&from) {
                                    data.edges.push(to);
                                }
                            }
                            Mutation::RemoveEdge { from, to } => {
                                if let Some(data) = run.vertices.get_mut(&from) {
                                    data.edges.retain(|&e| e != to);
                                }
                            }
                        }
                    }
                    // Apply the combiner per target before emitting.
                    let mut combined: HashMap<u64, Vec<P::Msg>> = HashMap::new();
                    for (target, msg) in outbox {
                        let entry = combined.entry(target).or_default();
                        match entry.pop() {
                            None => entry.push(msg),
                            Some(prev) => match program.combine(prev.clone(), msg.clone()) {
                                Some(merged) => entry.push(merged),
                                None => {
                                    entry.push(prev);
                                    entry.push(msg);
                                }
                            },
                        }
                    }
                    for (target, msgs) in combined {
                        for msg in msgs {
                            session.give(Payload::Msg(target, msg));
                        }
                    }
                    // If vertices remain un-halted, self-schedule the next
                    // superstep's barrier so they run even without mail.
                    let any_live = run.vertices.values().any(|d| !d.halted);
                    if any_live && superstep < max_supersteps {
                        if let Some(next) = time.incremented() {
                            notify_handle.notify_at(next);
                        }
                    }
                    // Reclaim the run once its loop cannot continue.
                    if superstep >= max_supersteps {
                        runs.remove(&time.epoch);
                    }
                },
            )
        },
    );

    handle.connect(&out);
    let left = lc.leave(&out);

    // Keep each vertex's latest state report per epoch.
    left.filter_map(|p| match p {
        Payload::State(v, superstep, state) => Some((v, (superstep, state))),
        Payload::Msg(..) => None,
    })
    .reduce(
        || None::<(u64, P::State)>,
        |_v, acc, (superstep, state)| {
            if acc.as_ref().is_none_or(|(s, _)| superstep >= *s) {
                *acc = Some((superstep, state));
            }
        },
    )
    .filter_map(|(v, latest)| latest.map(|(_, state)| (v, state)))
}

fn superstep_of(time: &Timestamp) -> u64 {
    *time
        .counters
        .as_slice()
        .last()
        .expect("loop times carry a superstep counter")
}

/// Builds Pregel seeds from separate vertex-state and edge streams:
/// vertices appearing only as edge sources still need a state record, and
/// vertices with no out-edges get an empty adjacency list.
pub fn seeds_from<S: ExchangeData>(
    states: &Stream<(u64, S)>,
    edges: &Stream<(u64, u64)>,
) -> Stream<(u64, (S, Vec<u64>))> {
    let adjacency: Stream<(u64, Vec<u64>)> =
        edges.group_by(|src: &u64, dsts: Vec<u64>| vec![(*src, dsts)]);
    let paired = states.join(&adjacency, |v, s, dsts| (*v, (s.clone(), dsts.clone())));
    let isolated = join_left_empty(states, &adjacency);
    concatenate(&paired, &isolated)
}

/// States with no matching adjacency entry, paired with an empty edge
/// list (per time).
fn join_left_empty<S: ExchangeData>(
    states: &Stream<(u64, S)>,
    adjacency: &Stream<(u64, Vec<u64>)>,
) -> Stream<(u64, (S, Vec<u64>))> {
    type PerTime<S> = (HashMap<u64, S>, std::collections::HashSet<u64>);
    states.binary_notify(
        adjacency,
        Pact::exchange(|(v, _): &(u64, S)| hash_of(v)),
        Pact::exchange(|(v, _): &(u64, Vec<u64>)| hash_of(v)),
        "SeedIsolated",
        |_info| {
            let state: Rc<RefCell<HashMap<Timestamp, PerTime<S>>>> =
                Rc::new(RefCell::new(HashMap::new()));
            let recv_state = state.clone();
            (
                move |states: &mut InputPort<(u64, S)>,
                      adj: &mut InputPort<(u64, Vec<u64>)>,
                      _output: &mut OutputPort<(u64, (S, Vec<u64>))>,
                      notify: &Notify| {
                    let mut state = recv_state.borrow_mut();
                    states.for_each(|time, data| {
                        let entry = state.entry(time).or_insert_with(|| {
                            notify.notify_at(time);
                            Default::default()
                        });
                        for (v, s) in data {
                            entry.0.insert(v, s);
                        }
                    });
                    adj.for_each(|time, data| {
                        let entry = state.entry(time).or_insert_with(|| {
                            notify.notify_at(time);
                            Default::default()
                        });
                        for (v, _) in data {
                            entry.1.insert(v);
                        }
                    });
                },
                move |time: Timestamp,
                      output: &mut OutputPort<(u64, (S, Vec<u64>))>,
                      _notify: &Notify| {
                    if let Some((states, with_edges)) = state.borrow_mut().remove(&time) {
                        let mut session = output.session(time);
                        for (v, s) in states {
                            if !with_edges.contains(&v) {
                                session.give((v, (s, Vec::new())));
                            }
                        }
                    }
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    /// Propagate the minimum label (connected components by min-id).
    struct MinLabel;
    impl VertexProgram for MinLabel {
        type State = u64;
        type Msg = u64;
        fn compute(&mut self, ctx: &mut Compute<'_, Self>) {
            let incoming = ctx.messages().iter().copied().min();
            let improved = match incoming {
                Some(l) if l < *ctx.state() => {
                    *ctx.state_mut() = l;
                    true
                }
                _ => ctx.superstep() == 0,
            };
            if improved {
                let label = *ctx.state();
                ctx.send_to_all(label);
            }
            ctx.vote_to_halt();
        }
        fn combine(&self, a: u64, b: u64) -> Option<u64> {
            Some(a.min(b))
        }
    }

    fn run_min_label(workers: usize, edges: Vec<(u64, u64)>, n: u64) -> Vec<(u64, u64)> {
        let edges = std::sync::Arc::new(edges);
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut seeds, captured) = worker.dataflow(|scope| {
                let (input, seed_stream) = scope.new_input::<(u64, (u64, Vec<u64>))>();
                let out = pregel(&seed_stream, MinLabel, 32);
                (input, out.capture())
            });
            if worker.index() == 0 {
                // Symmetrize and seed every vertex with its own id.
                let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
                for &(a, b) in edges.iter() {
                    adj.entry(a).or_default().push(b);
                    adj.entry(b).or_default().push(a);
                }
                for v in 0..n {
                    let neighbours = adj.remove(&v).unwrap_or_default();
                    seeds.send((v, (v, neighbours)));
                }
            }
            seeds.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<(u64, u64)> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        all.sort();
        all
    }

    #[test]
    fn min_label_finds_components() {
        for workers in [1, 2] {
            let labels = run_min_label(workers, vec![(0, 1), (1, 2), (3, 4)], 6);
            assert_eq!(
                labels,
                vec![(0, 0), (1, 0), (2, 0), (3, 3), (4, 3), (5, 5)],
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn epochs_are_independent_runs() {
        let results = execute(Config::single_process(1), |worker| {
            let (mut seeds, captured) = worker.dataflow(|scope| {
                let (input, seed_stream) = scope.new_input::<(u64, (u64, Vec<u64>))>();
                let out = pregel(&seed_stream, MinLabel, 8);
                (input, out.capture())
            });
            // Epoch 0: two vertices linked; epoch 1: the same ids isolated.
            seeds.send((0, (0, vec![1])));
            seeds.send((1, (1, vec![0])));
            seeds.advance_to(1);
            seeds.send((0, (0, vec![])));
            seeds.send((1, (1, vec![])));
            seeds.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut by_epoch: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for (epoch, data) in results.into_iter().flatten() {
            by_epoch.entry(epoch).or_default().extend(data);
        }
        let mut e0 = by_epoch.remove(&0).unwrap();
        let mut e1 = by_epoch.remove(&1).unwrap();
        e0.sort();
        e1.sort();
        assert_eq!(e0, vec![(0, 0), (1, 0)]);
        assert_eq!(e1, vec![(0, 0), (1, 1)], "epoch 1 vertices are isolated");
    }

    /// A program that rewires the graph while it runs: vertex 0 starts
    /// pointing at 1, swings its edge to 2 at superstep 0, then floods;
    /// only 2 must hear it.
    struct Rewire;
    impl VertexProgram for Rewire {
        type State = u64; // number of messages ever received
        type Msg = u64;
        fn compute(&mut self, ctx: &mut Compute<'_, Self>) {
            if !ctx.messages().is_empty() {
                *ctx.state_mut() += ctx.messages().len() as u64;
            }
            match ctx.superstep() {
                0 if ctx.vertex() == 0 => {
                    ctx.remove_edge(1);
                    ctx.add_edge(2);
                }
                1 if ctx.vertex() == 0 => {
                    ctx.send_to_all(7);
                }
                _ => {}
            }
            // Vertex 0 stays live through superstep 1 so it can flood
            // after its mutation takes effect; everyone else halts (and
            // reactivates on mail).
            if ctx.vertex() != 0 || ctx.superstep() >= 1 {
                ctx.vote_to_halt();
            }
        }
    }

    #[test]
    fn graph_mutations_apply_before_the_next_superstep() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut seeds, captured) = worker.dataflow(|scope| {
                let (input, seed_stream) = scope.new_input::<(u64, (u64, Vec<u64>))>();
                let out = pregel(&seed_stream, Rewire, 8);
                (input, out.capture())
            });
            if worker.index() == 0 {
                seeds.send((0, (0, vec![1])));
                seeds.send((1, (0, vec![])));
                seeds.send((2, (0, vec![])));
            }
            seeds.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut counts: Vec<(u64, u64)> =
            results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        counts.sort();
        assert_eq!(counts, vec![(0, 0), (1, 0), (2, 1)]);
    }

    #[test]
    fn seeds_from_joins_states_and_edges() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut states, mut edges, captured) = worker.dataflow(|scope| {
                let (s_in, states) = scope.new_input::<(u64, u64)>();
                let (e_in, edges) = scope.new_input::<(u64, u64)>();
                let seeds = seeds_from(&states, &edges);
                (s_in, e_in, seeds.capture())
            });
            if worker.index() == 0 {
                states.send_batch([(0, 100), (1, 101), (2, 102)]);
                edges.send_batch([(0, 1), (0, 2)]);
            }
            states.close();
            edges.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<(u64, (u64, Vec<u64>))> =
            results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        all.sort();
        for (_, (_, edges)) in all.iter_mut() {
            edges.sort_unstable();
        }
        assert_eq!(
            all,
            vec![
                (0, (100, vec![1, 2])),
                (1, (101, vec![])),
                (2, (102, vec![])),
            ]
        );
    }
}
