//! Randomized tests: every `Wire` impl round-trips and reports exact
//! lengths. Deterministic seeded generation (`naiad-rng`) replaces an
//! external property-testing framework: each case fixes a seed, so a
//! failure reproduces exactly.

use naiad_rng::Xorshift;
use naiad_wire::{decode_from_slice, encode_to_vec, Wire};

const CASES: usize = 512;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode_to_vec(value);
    assert_eq!(bytes.len(), value.encoded_len(), "length of {value:?}");
    let back: T = decode_from_slice(&bytes).unwrap();
    assert_eq!(&back, value);
}

/// Integers spanning all varint widths: raw 64-bit draws masked to a
/// random bit width, so short encodings are exercised as often as long.
fn gen_u64(rng: &mut Xorshift) -> u64 {
    let width = rng.below(65) as u32;
    if width == 0 {
        0
    } else {
        rng.next_u64() >> (64 - width)
    }
}

fn gen_string(rng: &mut Xorshift) -> String {
    let len = rng.below_usize(24);
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte code points.
            match rng.below(4) {
                0..=2 => char::from(b' ' + rng.below(95) as u8),
                _ => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('λ'),
            }
        })
        .collect()
}

fn gen_vec<T>(rng: &mut Xorshift, mut f: impl FnMut(&mut Xorshift) -> T) -> Vec<T> {
    let len = rng.below_usize(12);
    (0..len).map(|_| f(rng)).collect()
}

#[test]
fn unsigned_ints_roundtrip() {
    let mut rng = Xorshift::new(0x11);
    for _ in 0..CASES {
        roundtrip(&gen_u64(&mut rng));
        roundtrip(&(gen_u64(&mut rng) as u32));
        roundtrip(&(gen_u64(&mut rng) as u16));
        roundtrip(&(gen_u64(&mut rng) as u8));
        roundtrip(&(gen_u64(&mut rng) as usize));
    }
    for v in [0u64, 1, 127, 128, u64::MAX] {
        roundtrip(&v);
    }
}

#[test]
fn signed_ints_roundtrip() {
    let mut rng = Xorshift::new(0x22);
    for _ in 0..CASES {
        roundtrip(&(gen_u64(&mut rng) as i64));
        roundtrip(&(gen_u64(&mut rng) as i32));
    }
    for v in [i64::MIN, -1, 0, 1, i64::MAX] {
        roundtrip(&v);
    }
}

#[test]
fn floats_roundtrip_bit_exactly() {
    let mut rng = Xorshift::new(0x33);
    for _ in 0..CASES {
        // Raw bit patterns cover NaNs, infinities, and subnormals.
        let v = f64::from_bits(rng.next_u64());
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), v.encoded_len());
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
        let w = f32::from_bits(rng.next_u64() as u32);
        let back: f32 = decode_from_slice(&encode_to_vec(&w)).unwrap();
        assert_eq!(w.to_bits(), back.to_bits());
    }
}

#[test]
fn strings_roundtrip() {
    let mut rng = Xorshift::new(0x44);
    for _ in 0..CASES {
        roundtrip(&gen_string(&mut rng));
    }
    roundtrip(&String::new());
}

#[test]
fn collections_roundtrip() {
    let mut rng = Xorshift::new(0x55);
    for _ in 0..CASES {
        roundtrip(&gen_vec(&mut rng, gen_u64));
        roundtrip(&gen_vec(&mut rng, gen_string));
    }
    roundtrip(&Vec::<u64>::new());
}

#[test]
fn tuples_and_options_roundtrip() {
    let mut rng = Xorshift::new(0x66);
    for _ in 0..CASES {
        roundtrip(&(gen_u64(&mut rng), gen_string(&mut rng)));
        let nested: Vec<(u32, Option<String>, Vec<i32>)> = gen_vec(&mut rng, |rng| {
            (
                gen_u64(rng) as u32,
                if rng.chance(0.5) {
                    Some(gen_string(rng))
                } else {
                    None
                },
                gen_vec(rng, |rng| gen_u64(rng) as i32),
            )
        });
        roundtrip(&nested);
    }
}

#[test]
fn decoding_arbitrary_bytes_never_panics() {
    // Decoding untrusted input must fail cleanly, not panic or OOM.
    let mut rng = Xorshift::new(0x77);
    for _ in 0..CASES {
        let bytes = gen_vec(&mut rng, |rng| rng.next_u64() as u8);
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<String>(&bytes);
        let _ = decode_from_slice::<(u8, i64, bool)>(&bytes);
    }
}

#[test]
fn values_concatenate() {
    // Encoding is prefix-free per value: sequential decodes recover
    // sequentially encoded values.
    let mut rng = Xorshift::new(0x88);
    for _ in 0..CASES {
        let a = gen_u64(&mut rng);
        let b = gen_string(&mut rng);
        let c = gen_vec(&mut rng, |rng| gen_u64(rng) as i32);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        c.encode(&mut buf);
        let mut slice = &buf[..];
        assert_eq!(u64::decode(&mut slice).unwrap(), a);
        assert_eq!(String::decode(&mut slice).unwrap(), b);
        assert_eq!(Vec::<i32>::decode(&mut slice).unwrap(), c);
        assert!(slice.is_empty());
    }
}
