//! Property tests: every `Wire` impl round-trips and reports exact lengths.

use naiad_wire::{decode_from_slice, encode_to_vec, Wire};
use proptest::prelude::*;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode_to_vec(value);
    assert_eq!(bytes.len(), value.encoded_len());
    let back: T = decode_from_slice(&bytes).unwrap();
    assert_eq!(&back, value);
}

proptest! {
    #[test]
    fn u64_roundtrips(v: u64) { roundtrip(&v); }

    #[test]
    fn i64_roundtrips(v: i64) { roundtrip(&v); }

    #[test]
    fn u32_roundtrips(v: u32) { roundtrip(&v); }

    #[test]
    fn f64_roundtrips(v: f64) {
        let bytes = encode_to_vec(&v);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn string_roundtrips(v: String) { roundtrip(&v); }

    #[test]
    fn vec_u64_roundtrips(v: Vec<u64>) { roundtrip(&v); }

    #[test]
    fn vec_string_roundtrips(v: Vec<String>) { roundtrip(&v); }

    #[test]
    fn pair_roundtrips(v: (u64, String)) { roundtrip(&v); }

    #[test]
    fn nested_roundtrips(v: Vec<(u32, Option<String>, Vec<i32>)>) { roundtrip(&v); }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes: Vec<u8>) {
        // Decoding untrusted input must fail cleanly, not panic or OOM.
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<String>(&bytes);
        let _ = decode_from_slice::<(u8, i64, bool)>(&bytes);
    }

    #[test]
    fn values_concatenate(a: u64, b: String, c: Vec<i32>) {
        // Encoding is prefix-free per value: sequential decodes recover
        // sequentially encoded values.
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        c.encode(&mut buf);
        let mut slice = &buf[..];
        prop_assert_eq!(u64::decode(&mut slice).unwrap(), a);
        prop_assert_eq!(String::decode(&mut slice).unwrap(), b);
        prop_assert_eq!(Vec::<i32>::decode(&mut slice).unwrap(), c);
        prop_assert!(slice.is_empty());
    }
}
