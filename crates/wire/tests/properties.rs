//! Property tests for the codec laws the zero-copy data plane rests on
//! (DESIGN.md §16), over every `Wire` and `WireRef` implementation:
//!
//! 1. **Prefix-freedom** — no strict prefix of a valid encoding decodes;
//!    truncation anywhere fails with a typed error, never a panic.
//! 2. **Owned == borrowed** — `decode_ref` views agree byte-for-byte and
//!    value-for-value with the owned `decode` of the same frame.
//! 3. **Hostile input never panics** — random bytes thrown at every
//!    decoder (owned and borrowed) fail cleanly or round-trip.
//! 4. **Varint boundaries** — exact widths at every 7-bit threshold,
//!    overflow and truncation rejection, zigzag involution.
//!
//! Deterministic seeded generation (`naiad-rng`) stands in for an
//! external property-testing framework: each case fixes a seed, so any
//! failure reproduces exactly.

use std::collections::{HashMap, HashSet};

use naiad_rng::Xorshift;
use naiad_wire::varint::{decode_u64, encode_u64, len_u64, unzigzag, zigzag};
use naiad_wire::{
    decode_from_slice, decode_ref_from_slice, encode_to_vec, KeyedBatch, KeyedBatchView, SeqView,
    Wire, WireError, WireRef,
};

const CASES: usize = 256;

fn gen_u64(rng: &mut Xorshift) -> u64 {
    let width = rng.below(65) as u32;
    if width == 0 {
        0
    } else {
        rng.next_u64() >> (64 - width)
    }
}

fn gen_string(rng: &mut Xorshift) -> String {
    let len = rng.below_usize(24);
    (0..len)
        .map(|_| match rng.below(4) {
            0..=2 => char::from(b' ' + rng.below(95) as u8),
            _ => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('λ'),
        })
        .collect()
}

fn gen_vec<T>(rng: &mut Xorshift, mut f: impl FnMut(&mut Xorshift) -> T) -> Vec<T> {
    let len = rng.below_usize(12);
    (0..len).map(|_| f(rng)).collect()
}

fn gen_batch(rng: &mut Xorshift) -> KeyedBatch<u64> {
    let mut batch = KeyedBatch::new();
    for _ in 0..rng.below_usize(12) {
        let s = gen_string(rng);
        batch.push(gen_u64(rng), &s);
    }
    batch
}

/// Law 1: every strict prefix of a valid encoding fails to decode, and a
/// valid encoding with trailing junk reports `TrailingBytes`. Neither
/// ever panics (a panic aborts the test, so running IS the assertion).
fn prefix_law<T: Wire>(value: &T) {
    let bytes = encode_to_vec(value);
    assert_eq!(bytes.len(), value.encoded_len());
    for cut in 0..bytes.len() {
        assert!(
            decode_from_slice::<T>(&bytes[..cut]).is_err(),
            "a strict {cut}-byte prefix of a {}-byte encoding decoded",
            bytes.len()
        );
    }
    let mut extended = bytes;
    extended.push(0);
    assert!(matches!(
        decode_from_slice::<T>(&extended),
        Err(WireError::TrailingBytes(1))
    ));
}

#[test]
fn every_impl_is_prefix_free_under_truncation() {
    let mut rng = Xorshift::new(0xA1);
    for _ in 0..CASES {
        prefix_law(&(gen_u64(&mut rng) as u8));
        prefix_law(&(gen_u64(&mut rng) as u16));
        prefix_law(&(gen_u64(&mut rng) as u32));
        prefix_law(&gen_u64(&mut rng));
        prefix_law(&(gen_u64(&mut rng) as usize));
        prefix_law(&(gen_u64(&mut rng) as i8));
        prefix_law(&(gen_u64(&mut rng) as i16));
        prefix_law(&(gen_u64(&mut rng) as i32));
        prefix_law(&(gen_u64(&mut rng) as i64));
        prefix_law(&(gen_u64(&mut rng) as isize));
        prefix_law(&rng.chance(0.5));
        prefix_law(&f32::from_bits(rng.next_u64() as u32));
        prefix_law(&f64::from_bits(rng.next_u64()));
        prefix_law(&gen_string(&mut rng));
        prefix_law(&gen_vec(&mut rng, gen_u64));
        prefix_law(&gen_vec(&mut rng, gen_string));
        prefix_law(&if rng.chance(0.5) {
            Some(gen_string(&mut rng))
        } else {
            None
        });
        prefix_law(&(gen_u64(&mut rng), gen_string(&mut rng), rng.chance(0.5)));
        prefix_law(&gen_batch(&mut rng));
    }
    // Char: drawn from valid scalar values only (surrogates don't exist
    // as `char`), plus the extremes.
    for c in ['\0', 'a', 'λ', '\u{D7FF}', '\u{E000}', char::MAX] {
        prefix_law(&c);
    }
    // Keyed collections, fixed small cases (iteration order is unordered
    // but the law only cuts bytes).
    let map: HashMap<u64, String> = [(1, "a".into()), (900, "bb".into())].into();
    prefix_law(&map);
    let set: HashSet<u32> = [3, 5, 70_000].into();
    prefix_law(&set);
    prefix_law(&[7u32, 8, 9, 10]);
}

/// Law 2 for scalar views: `decode_ref` must agree with `decode`.
fn scalar_view_law<T>(value: &T)
where
    T: Wire + PartialEq + std::fmt::Debug + for<'a> WireRef<'a>,
{
    let bytes = encode_to_vec(value);
    let view: T = decode_ref_from_slice(&bytes).unwrap();
    assert_eq!(&view, value);
}

#[test]
fn borrowed_decode_agrees_with_owned_decode() {
    let mut rng = Xorshift::new(0xB2);
    for _ in 0..CASES {
        scalar_view_law(&(gen_u64(&mut rng) as u8));
        scalar_view_law(&(gen_u64(&mut rng) as u32));
        scalar_view_law(&gen_u64(&mut rng));
        scalar_view_law(&(gen_u64(&mut rng) as i64));
        scalar_view_law(&rng.chance(0.5));
        scalar_view_law(&(gen_u64(&mut rng) as usize));

        // String ↔ &str share one framing: length prefix + raw UTF-8.
        let s = gen_string(&mut rng);
        let bytes = encode_to_vec(&s);
        let view: &str = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view, s);
        // ... and `&[u8]` is the raw-bytes reading of that same framing.
        let raw: &[u8] = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(raw, s.as_bytes());

        // Options and tuples compose views exactly as owned decode does.
        let opt = if rng.chance(0.5) { Some(s.clone()) } else { None };
        let bytes = encode_to_vec(&opt);
        let view: Option<&str> = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view, opt.as_deref());

        let tup = (gen_u64(&mut rng), gen_string(&mut rng), rng.chance(0.5));
        let bytes = encode_to_vec(&tup);
        let view: (u64, &str, bool) = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view, (tup.0, tup.1.as_str(), tup.2));

        // Sequences: a SeqView iterates the same records Vec decodes.
        let records: Vec<(u64, String)> =
            gen_vec(&mut rng, |rng| (gen_u64(rng), gen_string(rng)));
        let bytes = encode_to_vec(&records);
        let owned: Vec<(u64, String)> = decode_from_slice(&bytes).unwrap();
        let view: SeqView<(u64, &str)> = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view.len(), owned.len());
        let viewed: Vec<(u64, String)> = view
            .iter()
            .map(|item| item.map(|(k, s)| (k, s.to_owned())))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(viewed, owned);

        // Columnar batches: the view yields the rows the owned batch holds.
        let batch = gen_batch(&mut rng);
        let bytes = encode_to_vec(&batch);
        let owned: KeyedBatch<u64> = decode_from_slice(&bytes).unwrap();
        assert_eq!(owned, batch);
        let view: KeyedBatchView<u64> = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view.len(), batch.len());
        let mut rows = Vec::new();
        view.try_for_each(|k, s| rows.push((k, s.to_owned()))).unwrap();
        let expect: Vec<(u64, String)> =
            batch.iter().map(|(k, s)| (*k, s.to_owned())).collect();
        assert_eq!(rows, expect);
    }
}

#[test]
fn hostile_bytes_never_panic_any_decoder() {
    let mut rng = Xorshift::new(0xC3);
    for _ in 0..CASES {
        let len = rng.below_usize(48);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Owned decoders.
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<HashMap<u64, Vec<i32>>>(&bytes);
        let _ = decode_from_slice::<KeyedBatch<u64>>(&bytes);
        let _ = decode_from_slice::<char>(&bytes);
        let _ = decode_from_slice::<[u16; 3]>(&bytes);
        // Borrowed decoders — including the lazy iterators, which must
        // surface corruption as `Err` items, not panics.
        let _ = decode_ref_from_slice::<&str>(&bytes);
        let _ = decode_ref_from_slice::<(u64, &str, Option<&[u8]>)>(&bytes);
        if let Ok(view) = decode_ref_from_slice::<SeqView<(u64, &str)>>(&bytes) {
            for item in view.iter() {
                let _ = item;
            }
        }
        if let Ok(view) = decode_ref_from_slice::<KeyedBatchView<u64>>(&bytes) {
            for row in view.iter() {
                let _ = row;
            }
        }
    }
}

#[test]
fn varint_widths_step_at_every_seven_bit_boundary() {
    for k in 1..=9u32 {
        let boundary = 1u64 << (7 * k);
        for v in [boundary - 1, boundary] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            let expect = if v < boundary { k as usize } else { k as usize + 1 };
            assert_eq!(buf.len(), expect, "width of {v:#x}");
            assert_eq!(len_u64(v), expect);
            let mut slice = &buf[..];
            assert_eq!(decode_u64(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }
    let mut buf = Vec::new();
    encode_u64(u64::MAX, &mut buf);
    assert_eq!(buf.len(), 10);
}

#[test]
fn varint_rejects_overflow_and_truncation_at_boundaries() {
    // Ten continuation bytes: valid length, but the tenth byte may carry
    // at most one payload bit.
    let mut bytes = [0x80u8; 10];
    bytes[9] = 0x01; // payload bit 63 — the last representable bit
    let mut slice = &bytes[..];
    assert!(decode_u64(&mut slice).is_ok());
    bytes[9] = 0x02; // payload bit 64 → overflow
    let mut slice = &bytes[..];
    assert_eq!(decode_u64(&mut slice), Err(WireError::VarintOverflow));
    // Every truncated all-continuation run is UnexpectedEof.
    let run = [0x80u8; 9];
    for cut in 0..=run.len() {
        let mut slice = &run[..cut];
        assert_eq!(decode_u64(&mut slice), Err(WireError::UnexpectedEof));
    }
    // Narrow integer types reject values that fit u64 but not themselves.
    let mut buf = Vec::new();
    encode_u64(256, &mut buf);
    assert_eq!(
        decode_from_slice::<u8>(&buf),
        Err(WireError::VarintOverflow)
    );
}

#[test]
fn zigzag_is_an_involution_and_orders_by_magnitude() {
    let mut rng = Xorshift::new(0xD4);
    for _ in 0..CASES {
        let v = rng.next_u64() as i64;
        assert_eq!(unzigzag(zigzag(v)), v);
    }
    for (v, expect) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
        assert_eq!(zigzag(v), expect);
    }
    assert_eq!(zigzag(i64::MIN), u64::MAX);
    // Small magnitudes stay in one byte either sign.
    for v in -64i64..64 {
        assert_eq!(len_u64(zigzag(v)), 1, "width of {v}");
    }
}
