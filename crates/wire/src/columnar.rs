//! Columnar keyed-record batches (DESIGN.md §16).
//!
//! Row-major `Vec<(K, String)>` framing interleaves varints and string
//! payloads, so a borrowed decode must validate UTF-8 once per record —
//! and short-slice validation dominates the decode cost (EXPERIMENTS.md).
//! [`KeyedBatch`] stores the same records as three columns:
//!
//! * the keys, varint-encoded back to back,
//! * the *end offset* of each payload in the text column,
//! * one contiguous text blob holding every payload.
//!
//! Each column is length-prefixed as raw bytes, so [`KeyedBatchView`]
//! decodes in `O(1)` plus a single UTF-8 validation of the whole blob —
//! which takes the word-at-a-time fast path instead of the byte-at-a-time
//! short-string path. Iteration walks the key and offset varints and
//! slices the already-validated text.

use std::marker::PhantomData;

use crate::{varint, Wire, WireError, WireRef};

/// An owned columnar batch of `(key, text payload)` records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyedBatch<K> {
    keys: Vec<K>,
    /// `ends[i]` is the byte offset one past record `i`'s payload in
    /// `text`; strictly for `i == 0`, `ends[i - 1]..ends[i]` is record
    /// `i`'s payload.
    ends: Vec<usize>,
    text: String,
}

impl<K: Wire> KeyedBatch<K> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        KeyedBatch {
            // slab-exempt: zero-capacity columns never touch the
            // allocator; growth is amortized across reused batches.
            keys: Vec::new(),
            // slab-exempt: as above.
            ends: Vec::new(),
            text: String::new(),
        }
    }

    /// Appends one record.
    pub fn push(&mut self, key: K, payload: &str) {
        self.text.push_str(payload);
        self.ends.push(self.text.len());
        self.keys.push(key);
    }

    /// The number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the batch holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Empties the batch, retaining all three columns' capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.ends.clear();
        self.text.clear();
    }

    /// Iterates the records as `(&key, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &str)> {
        self.keys.iter().zip(self.ends.iter().scan(0usize, |pos, &end| {
            let start = std::mem::replace(pos, end);
            Some(&self.text[start..end])
        }))
    }
}

/// Encodes one varint-composed column as length-prefixed raw bytes.
fn encode_column(byte_len: usize, buf: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    varint::encode_u64(byte_len as u64, buf);
    let start = buf.len();
    fill(buf);
    debug_assert_eq!(buf.len() - start, byte_len, "column length mismatch");
}

impl<K: Wire> Wire for KeyedBatch<K> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(self.keys.len() as u64, buf);
        let keys_len: usize = self.keys.iter().map(Wire::encoded_len).sum();
        encode_column(keys_len, buf, |buf| {
            for key in &self.keys {
                key.encode(buf);
            }
        });
        let ends_len: usize = self.ends.iter().map(Wire::encoded_len).sum();
        encode_column(ends_len, buf, |buf| {
            for &end in &self.ends {
                varint::encode_u64(end as u64, buf);
            }
        });
        self.text.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        let mut keys_col = <&[u8]>::decode_ref(input)?;
        let mut ends_col = <&[u8]>::decode_ref(input)?;
        let text = String::decode(input)?;
        if len > keys_col.len() || len > ends_col.len() {
            // Sound bound: every varint is at least one byte.
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: keys_col.len().min(ends_col.len()),
            });
        }
        // slab-exempt: decode materializes owned columns once per
        // received batch, sized exactly from the validated header; the
        // zero-copy path is `KeyedBatchRef`, which borrows instead.
        let mut keys = Vec::with_capacity(len);
        // slab-exempt: as above.
        let mut ends = Vec::with_capacity(len);
        let mut pos = 0usize;
        for _ in 0..len {
            keys.push(K::decode(&mut keys_col)?);
            let end = usize::decode(&mut ends_col)?;
            if end < pos || !text.is_char_boundary(end) {
                return Err(WireError::InvalidValue);
            }
            pos = end;
            ends.push(end);
        }
        if !keys_col.is_empty() || !ends_col.is_empty() {
            return Err(WireError::TrailingBytes(keys_col.len() + ends_col.len()));
        }
        if pos != text.len() {
            // Text not covered by any record is framing garbage.
            return Err(WireError::TrailingBytes(text.len() - pos));
        }
        Ok(KeyedBatch { keys, ends, text })
    }

    fn encoded_len(&self) -> usize {
        let keys_len: usize = self.keys.iter().map(Wire::encoded_len).sum();
        let ends_len: usize = self.ends.iter().map(Wire::encoded_len).sum();
        varint::len_u64(self.keys.len() as u64)
            + varint::len_u64(keys_len as u64)
            + keys_len
            + varint::len_u64(ends_len as u64)
            + ends_len
            + self.text.encoded_len()
    }
}

/// The borrowed view of [`KeyedBatch`] framing: three column slices into
/// the frame, constructed in `O(1)` plus one whole-blob UTF-8 check.
pub struct KeyedBatchView<'a, K> {
    len: usize,
    keys: &'a [u8],
    ends: &'a [u8],
    text: &'a str,
    _marker: PhantomData<fn() -> K>,
}

impl<K> Clone for KeyedBatchView<'_, K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for KeyedBatchView<'_, K> {}

impl<'a, K: WireRef<'a>> KeyedBatchView<'a, K> {
    /// The number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the records, decoding key and offset varints lazily and
    /// slicing the pre-validated text column.
    ///
    /// Items are `Err` if a column is malformed (truncated varints,
    /// non-monotone offsets, offsets off a char boundary).
    pub fn iter(&self) -> KeyedBatchIter<'a, K> {
        KeyedBatchIter {
            remaining: self.len,
            keys: self.keys,
            ends: self.ends,
            text: self.text,
            pos: 0,
            _marker: PhantomData,
        }
    }

    /// Decodes every record in order, passing each to `f`; stops at the
    /// first malformed record and returns its error.
    ///
    /// Internal iteration: no per-item `Result` to unwrap, which is
    /// measurably faster than [`KeyedBatchView::iter`] on the microbench
    /// hot path (EXPERIMENTS.md).
    #[inline]
    pub fn try_for_each(&self, mut f: impl FnMut(K, &'a str)) -> Result<(), WireError> {
        let mut keys = self.keys;
        let mut ends = self.ends;
        let mut pos = 0usize;
        for _ in 0..self.len {
            let key = K::decode_ref(&mut keys)?;
            let end = usize::decode(&mut ends)?;
            let payload = self.text.get(pos..end).ok_or(WireError::InvalidValue)?;
            pos = end;
            f(key, payload);
        }
        Ok(())
    }
}

impl<'a, K: WireRef<'a>> WireRef<'a> for KeyedBatchView<'a, K> {
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        let keys = <&'a [u8]>::decode_ref(input)?;
        let ends = <&'a [u8]>::decode_ref(input)?;
        let blob = <&'a [u8]>::decode_ref(input)?;
        // One validation for the whole text column: this is the entire
        // point of the columnar layout.
        let text = std::str::from_utf8(blob).map_err(|_| WireError::InvalidValue)?;
        if len > keys.len() || len > ends.len() {
            // Sound bound: every varint is at least one byte.
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: keys.len().min(ends.len()),
            });
        }
        Ok(KeyedBatchView {
            len,
            keys,
            ends,
            text,
            _marker: PhantomData,
        })
    }
}

impl<'a, K: WireRef<'a>> IntoIterator for &KeyedBatchView<'a, K> {
    type Item = Result<(K, &'a str), WireError>;
    type IntoIter = KeyedBatchIter<'a, K>;
    fn into_iter(self) -> KeyedBatchIter<'a, K> {
        self.iter()
    }
}

/// Iterator over a [`KeyedBatchView`], decoding one record per step.
pub struct KeyedBatchIter<'a, K> {
    remaining: usize,
    keys: &'a [u8],
    ends: &'a [u8],
    text: &'a str,
    pos: usize,
    _marker: PhantomData<fn() -> K>,
}

impl<'a, K: WireRef<'a>> KeyedBatchIter<'a, K> {
    #[inline]
    fn next_record(&mut self) -> Option<Result<(K, &'a str), WireError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = match K::decode_ref(&mut self.keys) {
            Ok(key) => key,
            Err(e) => {
                self.remaining = 0; // poisoned
                return Some(Err(e));
            }
        };
        let end = match usize::decode(&mut self.ends) {
            Ok(end) => end,
            Err(e) => {
                self.remaining = 0;
                return Some(Err(e));
            }
        };
        // `get` rejects non-monotone offsets, overruns, and offsets off
        // a char boundary in one bounds-checked slice.
        let Some(payload) = self.text.get(self.pos..end) else {
            self.remaining = 0;
            return Some(Err(WireError::InvalidValue));
        };
        self.pos = end;
        Some(Ok((key, payload)))
    }
}

impl<'a, K: WireRef<'a>> Iterator for KeyedBatchIter<'a, K> {
    type Item = Result<(K, &'a str), WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, decode_ref_from_slice, encode_to_vec};

    fn sample(n: u64) -> KeyedBatch<u64> {
        let mut batch = KeyedBatch::new();
        for i in 0..n {
            batch.push(i, &format!("record-{i}"));
        }
        batch
    }

    #[test]
    fn owned_roundtrip() {
        let batch = sample(100);
        let bytes = encode_to_vec(&batch);
        assert_eq!(bytes.len(), batch.encoded_len());
        let back: KeyedBatch<u64> = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn view_matches_owned_records() {
        let batch = sample(50);
        let bytes = encode_to_vec(&batch);
        let view: KeyedBatchView<'_, u64> = decode_ref_from_slice(&bytes).unwrap();
        assert_eq!(view.len(), 50);
        assert!(!view.is_empty());
        for (got, (key, payload)) in view.iter().zip(batch.iter()) {
            let (k, p) = got.unwrap();
            assert_eq!(k, *key);
            assert_eq!(p, payload);
        }
    }

    #[test]
    fn view_borrows_the_frame() {
        let batch = sample(3);
        let bytes = encode_to_vec(&batch);
        let view: KeyedBatchView<'_, u64> = decode_ref_from_slice(&bytes).unwrap();
        let (_, first) = view.iter().next().unwrap().unwrap();
        let frame = bytes.as_ptr() as usize;
        let payload = first.as_ptr() as usize;
        assert!(payload >= frame && payload < frame + bytes.len());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = KeyedBatch::<u64>::new();
        let bytes = encode_to_vec(&batch);
        let view: KeyedBatchView<'_, u64> = decode_ref_from_slice(&bytes).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut batch = sample(10);
        let cap = batch.text.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.text.capacity(), cap);
        batch.push(1, "again");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn invalid_utf8_blob_is_rejected_at_construction() {
        let batch = sample(2);
        let mut bytes = encode_to_vec(&batch);
        // Corrupt the final byte, which lies inside the text column.
        *bytes.last_mut().unwrap() = 0xff;
        assert!(matches!(
            decode_ref_from_slice::<KeyedBatchView<'_, u64>>(&bytes),
            Err(WireError::InvalidValue)
        ));
        assert!(matches!(
            decode_from_slice::<KeyedBatch<u64>>(&bytes),
            Err(WireError::InvalidValue)
        ));
    }

    #[test]
    fn non_monotone_offsets_error_lazily() {
        let mut bad = Vec::new();
        varint::encode_u64(2, &mut bad); // two records
        encode_column(2, &mut bad, |b| {
            varint::encode_u64(7, b);
            varint::encode_u64(8, b);
        });
        encode_column(2, &mut bad, |b| {
            varint::encode_u64(2, b); // end 2
            varint::encode_u64(1, b); // end 1 < 2: not monotone
        });
        String::from("ab").encode(&mut bad);
        let view: KeyedBatchView<'_, u64> = decode_ref_from_slice(&bad).unwrap();
        let mut it = view.iter();
        assert_eq!(it.next(), Some(Ok((7, "ab"))));
        assert!(matches!(it.next(), Some(Err(WireError::InvalidValue))));
        assert_eq!(it.next(), None, "iterator poisons after an error");
    }

    #[test]
    fn truncated_input_never_panics() {
        let batch = sample(20);
        let bytes = encode_to_vec(&batch);
        for cut in 0..bytes.len() {
            // Either an Err, or (for prefixes that happen to parse) a
            // view whose iteration errors; never a panic.
            if let Ok(view) = decode_ref_from_slice::<KeyedBatchView<'_, u64>>(&bytes[..cut]) {
                let _ = view.iter().collect::<Vec<_>>();
            }
        }
    }

    #[test]
    fn absurd_count_is_rejected() {
        let mut bad = Vec::new();
        varint::encode_u64(1_000_000, &mut bad);
        encode_column(1, &mut bad, |b| b.push(0));
        encode_column(1, &mut bad, |b| b.push(0));
        String::new().encode(&mut bad);
        assert!(matches!(
            decode_ref_from_slice::<KeyedBatchView<'_, u64>>(&bad),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn try_for_each_matches_iter() {
        let batch = sample(30);
        let bytes = encode_to_vec(&batch);
        let view: KeyedBatchView<'_, u64> = decode_ref_from_slice(&bytes).unwrap();
        let mut collected = Vec::new();
        view.try_for_each(|k, p| collected.push((k, p.to_string())))
            .unwrap();
        assert_eq!(collected.len(), 30);
        assert_eq!(collected[7], (7, "record-7".to_string()));
    }
}
