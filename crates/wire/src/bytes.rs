//! A cheaply cloneable, immutable byte buffer with pool recycling.
//!
//! The fabric broadcasts the same serialized payload to many endpoints;
//! reference counting makes that fan-out free. This is a minimal,
//! dependency-free stand-in for the `bytes` crate's `Bytes`, covering
//! what the runtime uses: construction from a `Vec<u8>` *without a copy*,
//! cheap clones, cheap sub-slices, and read-only slice access. A `Bytes`
//! frozen out of a [`BytesSlab`](crate::BytesSlab) additionally returns
//! its backing buffer to the originating [`SlabPool`](crate::SlabPool)
//! when the last clone drops (DESIGN.md §16).

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

use crate::slab::SlabPool;

/// The shared backing store of one or more [`Bytes`] views.
///
/// Exactly one `Shared` exists per checked-out slab, and its `Drop` runs
/// exactly once — that is the whole double-return argument: the buffer
/// can only re-enter the pool through this path.
struct Shared {
    buf: Vec<u8>,
    pool: Option<Arc<SlabPool>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

/// An immutable, reference-counted byte buffer.
///
/// Cloning and slicing are O(1): all clones and sub-slices share one
/// allocation.
#[derive(Clone)]
pub struct Bytes {
    shared: Arc<Shared>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            shared: Arc::new(Shared {
                // slab-exempt: a zero-capacity Vec never touches the
                // allocator; empty Bytes are placeholders, not payloads.
                buf: Vec::new(),
                pool: None,
            }),
            offset: 0,
            len: 0,
        }
    }

    /// A buffer copied from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes)
    }

    /// Wraps a pool-owned buffer; the buffer returns to `pool` when the
    /// last clone drops. Called from
    /// [`BytesSlab::freeze`](crate::BytesSlab::freeze) only.
    pub(crate) fn pooled(buf: Vec<u8>, pool: Arc<SlabPool>) -> Self {
        let len = buf.len();
        Bytes {
            shared: Arc::new(Shared {
                buf,
                pool: Some(pool),
            }),
            offset: 0,
            len,
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-slice sharing this buffer's allocation (and its pool
    /// return, if any).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for {} bytes",
            self.len
        );
        Bytes {
            shared: self.shared.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.shared.buf[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of `v` without copying (unpooled: the allocation
    /// is freed, not recycled, when the last clone drops).
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            shared: Arc::new(Shared { buf: v, pool: None }),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        // slab-exempt: the borrowed-slice conversion is a convenience
        // constructor for tests and control frames; the data plane
        // freezes pooled slabs instead of copying slices.
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_derefs() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b[0], 1);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn clones_share_storage() {
        let b: Bytes = vec![0u8; 1024].into();
        let c = b.clone();
        assert!(std::ptr::eq(b.as_ref().as_ptr(), c.as_ref().as_ptr()));
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(&[9, 8]);
        assert_eq!(&s[..], &[9, 8]);
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn from_vec_does_not_copy() {
        let v = vec![7u8; 64];
        let ptr = v.as_ptr();
        let b: Bytes = v.into();
        assert!(std::ptr::eq(ptr, b.as_ref().as_ptr()));
    }

    #[test]
    fn slices_share_storage_and_nest() {
        let b: Bytes = (0u8..32).collect::<Vec<_>>().into();
        let s = b.slice(4..20);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0], 4);
        assert!(std::ptr::eq(&b[4], &s[0]));
        let t = s.slice(..=3);
        assert_eq!(&t[..], &[4, 5, 6, 7]);
        let all = b.slice(..);
        assert_eq!(all, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let b: Bytes = vec![1u8, 2].into();
        let _ = b.slice(1..5);
    }

    #[test]
    fn slices_keep_the_slab_alive_and_return_it_last() {
        let pool = Arc::new(SlabPool::default());
        let mut slab = pool.get(16);
        slab.buffer().extend_from_slice(b"0123456789");
        let bytes = slab.freeze();
        let tail = bytes.slice(5..);
        drop(bytes);
        assert_eq!(pool.gauges().in_use_slabs, 1, "the sub-slice pins the slab");
        assert_eq!(&tail[..], b"56789");
        drop(tail);
        assert_eq!(pool.gauges().in_use_slabs, 0);
        assert_eq!(pool.gauges().slab_returns, 1, "returned exactly once");
    }
}
