//! A cheaply cloneable, immutable byte buffer.
//!
//! The fabric broadcasts the same serialized payload to many endpoints;
//! reference counting makes that fan-out free. This is a minimal,
//! dependency-free stand-in for the `bytes` crate's `Bytes`, covering
//! exactly what the runtime uses: construction from a `Vec<u8>`, cheap
//! clones, and read-only slice access.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1): all clones share one allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// A buffer copied from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_derefs() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b[0], 1);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn clones_share_storage() {
        let b: Bytes = vec![0u8; 1024].into();
        let c = b.clone();
        assert!(std::ptr::eq(b.as_ref().as_ptr(), c.as_ref().as_ptr()));
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(&[9, 8]);
        assert_eq!(&s[..], &[9, 8]);
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }
}
