//! Decoding errors.

use std::fmt;

/// An error produced while decoding a [`Wire`](crate::Wire) value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A varint ran past its maximum width or overflowed the target type.
    VarintOverflow,
    /// A one-byte tag (e.g. for `bool` or `Option`) held an invalid value.
    InvalidTag(u8),
    /// A decoded scalar is not a valid value of the target type
    /// (e.g. a `char` surrogate).
    InvalidValue,
    /// A declared length exceeds the remaining input, which would otherwise
    /// trigger a pathological allocation.
    LengthOverrun { declared: usize, remaining: usize },
    /// `decode_from_slice` finished with this many bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::VarintOverflow => write!(f, "varint too long for target type"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::InvalidValue => write!(f, "decoded bits are not a valid value"),
            WireError::LengthOverrun {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining input {remaining}"
            ),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs: Vec<String> = [
            WireError::UnexpectedEof,
            WireError::VarintOverflow,
            WireError::InvalidTag(3),
            WireError::InvalidValue,
            WireError::LengthOverrun {
                declared: 10,
                remaining: 2,
            },
            WireError::TrailingBytes(4),
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
