//! [`Wire`] implementations for tuples up to arity 8.
//!
//! Tuples are the workhorse record type of the operator library
//! (key/value pairs, `(src, dst)` edges, `(user, hashtag, mentions)`
//! tweets), so they encode with zero framing overhead: parts are simply
//! concatenated.

use crate::{Wire, WireError};

macro_rules! wire_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(buf);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(input)?,)+))
            }
            fn encoded_len(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.encoded_len())+
            }
        }
    )+};
}

wire_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use crate::{decode_from_slice, encode_to_vec, Wire};

    #[test]
    fn tuples_roundtrip() {
        let v = (1u8, -2i32, String::from("x"), vec![true, false]);
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), v.encoded_len());
        let back: (u8, i32, String, Vec<bool>) = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn tuple_encoding_is_concatenation() {
        let v = (7u32, 9u64);
        let mut manual = Vec::new();
        7u32.encode(&mut manual);
        9u64.encode(&mut manual);
        assert_eq!(encode_to_vec(&v), manual);
    }

    #[test]
    fn arity_eight_roundtrips() {
        let v = (1u8, 2u8, 3u8, 4u8, 5u8, 6u8, 7u8, 8u8);
        let bytes = encode_to_vec(&v);
        let back: (u8, u8, u8, u8, u8, u8, u8, u8) = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
