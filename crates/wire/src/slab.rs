//! Pool-recycled byte slabs for the zero-copy data plane.
//!
//! Every remote batch the runtime emits is serialized into a byte buffer
//! that lives exactly as long as the fabric and the receiving endpoint
//! need it. Allocating that buffer fresh per batch made allocation count
//! scale with traffic (DESIGN.md §16); a [`SlabPool`] breaks the link by
//! recycling buffers through size-classed free lists. A [`BytesSlab`] is
//! a writable arena checked out of the pool; freezing it yields a
//! [`Bytes`](crate::Bytes) whose *last* clone returns the backing buffer
//! to the pool when dropped. Double-return is impossible by construction:
//! the buffer is moved out of the shared allocation exactly once, inside
//! `Drop`.
//!
//! The pool is all safe code, honouring the workspace-wide
//! `forbid(unsafe_code)`: recycling is `Mutex<Vec<Vec<u8>>>` free lists,
//! sharing is `Arc`, and the return path is an ordinary `Drop` impl.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::Bytes;

/// Interleaving pause points for `--cfg loom` builds: the core crate's
/// explorer registers its yield function here, and `get`/`put` call it
/// at the steps whose orderings matter (counter updates vs. free-list
/// mutation). Off-loom the calls compile to nothing; on-loom with no
/// hook registered they are no-ops, so ordinary tests still pass under
/// `RUSTFLAGS="--cfg loom"`.
#[cfg(loom)]
mod loom_hook {
    use std::sync::OnceLock;

    static HOOK: OnceLock<fn()> = OnceLock::new();

    /// Registers the explorer's yield point (first registration wins;
    /// the hook is process-global like the explorer itself).
    pub fn set(hook: fn()) {
        let _ = HOOK.set(hook);
    }

    pub(crate) fn point() {
        if let Some(hook) = HOOK.get() {
            hook();
        }
    }
}

/// Registers the interleaving explorer's yield point (loom builds only).
#[cfg(loom)]
pub fn slab_loom_hook(hook: fn()) {
    loom_hook::set(hook);
}

/// A schedulable step under the interleaving explorer; nothing otherwise.
fn pause_point() {
    #[cfg(loom)]
    loom_hook::point();
}

/// Capacity of the smallest size class (4 KiB).
const MIN_CLASS_BYTES: usize = 1 << 12;
/// Capacity of the largest pooled size class (4 MiB); larger slabs are
/// handed out exactly sized and dropped on return instead of pooled.
const MAX_CLASS_BYTES: usize = 1 << 22;
/// Number of power-of-two size classes between the bounds above.
const CLASSES: usize = (MAX_CLASS_BYTES / MIN_CLASS_BYTES).trailing_zeros() as usize + 1;

/// Point-in-time counters for one [`SlabPool`] (telemetry surface; the
/// runtime folds these into its snapshot as `SlabGauges`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabGauges {
    /// Slabs allocated fresh because no pooled buffer fit.
    pub slab_allocs: u64,
    /// Slabs served from a free list instead of the allocator.
    pub slab_reuses: u64,
    /// Buffers returned to a free list.
    pub slab_returns: u64,
    /// Buffers dropped on return (over the resident cap or oversized).
    pub slab_discards: u64,
    /// Bytes currently held in free lists, ready for reuse.
    pub pool_resident_bytes: u64,
    /// Buffers currently held in free lists.
    pub resident_slabs: u64,
    /// Slabs checked out and not yet returned or discarded.
    pub in_use_slabs: u64,
}

/// A per-process pool of reusable byte buffers, size-classed by powers of
/// two from 4 KiB to 4 MiB.
///
/// `get` serves the smallest class that fits (allocating only on a pool
/// miss); buffers come back automatically when the last
/// [`Bytes`](crate::Bytes) clone referencing them drops, or when an
/// unfrozen [`BytesSlab`] drops. Free-list growth is bounded by the
/// resident-byte cap: returns past the cap are dropped, so a traffic
/// spike cannot permanently pin its high-water mark in memory.
pub struct SlabPool {
    classes: [Mutex<Vec<Vec<u8>>>; CLASSES],
    resident_bytes: AtomicUsize,
    resident_cap: AtomicUsize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    in_use: AtomicU64,
}

impl Default for SlabPool {
    fn default() -> Self {
        // 32 MiB of resident slack: enough to absorb the steady-state
        // working set of every in-repo benchmark without pinning a
        // burst's worth of slabs forever.
        SlabPool::with_resident_cap(32 << 20)
    }
}

impl SlabPool {
    /// A pool that keeps at most `cap` bytes resident in free lists.
    pub fn with_resident_cap(cap: usize) -> Self {
        SlabPool {
            classes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            resident_bytes: AtomicUsize::new(0),
            resident_cap: AtomicUsize::new(cap),
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discards: AtomicU64::new(0),
            in_use: AtomicU64::new(0),
        }
    }

    /// The resident-byte cap currently in force.
    pub fn resident_cap(&self) -> usize {
        self.resident_cap.load(Ordering::Relaxed)
    }

    /// Adjusts the resident-byte cap (the autotuner's pool-size knob).
    /// Takes effect on the next return; an over-cap pool drains as its
    /// slabs are re-served or discarded.
    pub fn set_resident_cap(&self, cap: usize) {
        self.resident_cap.store(cap, Ordering::Relaxed);
    }

    /// The smallest class index whose capacity is at least `capacity`,
    /// or `None` if the request exceeds the largest pooled class.
    fn class_for(capacity: usize) -> Option<usize> {
        if capacity > MAX_CLASS_BYTES {
            return None;
        }
        let wanted = capacity.max(MIN_CLASS_BYTES).next_power_of_two();
        Some((wanted / MIN_CLASS_BYTES).trailing_zeros() as usize)
    }

    fn free_list(&self, class: usize) -> std::sync::MutexGuard<'_, Vec<Vec<u8>>> {
        self.classes[class]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks a writable slab with at least `capacity_hint` bytes of room
    /// out of the pool. The hint is a sizing heuristic, not a bound: the
    /// slab grows like any `Vec` if the payload runs larger, and the
    /// grown buffer re-enters the pool at its new class on return.
    pub fn get(self: &Arc<Self>, capacity_hint: usize) -> BytesSlab {
        pause_point();
        self.in_use.fetch_add(1, Ordering::Relaxed);
        let buf = match Self::class_for(capacity_hint) {
            Some(class) => {
                pause_point();
                let recycled = self.free_list(class).pop();
                match recycled {
                    Some(buf) => {
                        self.reuses.fetch_add(1, Ordering::Relaxed);
                        self.resident_bytes
                            .fetch_sub(buf.capacity(), Ordering::Relaxed);
                        buf
                    }
                    None => {
                        self.allocs.fetch_add(1, Ordering::Relaxed);
                        Vec::with_capacity(MIN_CLASS_BYTES << class)
                    }
                }
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity_hint)
            }
        };
        BytesSlab {
            buf,
            pool: self.clone(),
            frozen: false,
        }
    }

    /// Returns a spent buffer to its size class, or drops it if it is
    /// oversized or the pool is at its resident cap. Called exactly once
    /// per checked-out slab, from `Drop` glue — never directly — which is
    /// what makes double-return unrepresentable.
    pub(crate) fn put(&self, mut buf: Vec<u8>) {
        pause_point();
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        let capacity = buf.capacity();
        if capacity == 0 {
            return;
        }
        // A grown buffer files under the largest class it can fully
        // serve (round down), so `get` never yields a smaller slab than
        // the class promises.
        let class = match Self::class_for(capacity) {
            Some(class) if (MIN_CLASS_BYTES << class) == capacity => Some(class),
            Some(class) => class.checked_sub(1),
            None => None,
        };
        let Some(class) = class else {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let resident = self.resident_bytes.load(Ordering::Relaxed);
        if resident + capacity > self.resident_cap() {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        pause_point();
        self.resident_bytes.fetch_add(capacity, Ordering::Relaxed);
        self.returns.fetch_add(1, Ordering::Relaxed);
        pause_point();
        self.free_list(class).push(buf);
    }

    /// Current pool counters.
    pub fn gauges(&self) -> SlabGauges {
        let resident_slabs = self
            .classes
            .iter()
            .map(|c| c.lock().unwrap_or_else(PoisonError::into_inner).len() as u64)
            .sum();
        SlabGauges {
            slab_allocs: self.allocs.load(Ordering::Relaxed),
            slab_reuses: self.reuses.load(Ordering::Relaxed),
            slab_returns: self.returns.load(Ordering::Relaxed),
            slab_discards: self.discards.load(Ordering::Relaxed),
            pool_resident_bytes: self.resident_bytes.load(Ordering::Relaxed) as u64,
            resident_slabs,
            in_use_slabs: self.in_use.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SlabPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.gauges();
        write!(
            f,
            "SlabPool(resident {} B / cap {} B, {} in use, {} allocs, {} reuses)",
            g.pool_resident_bytes,
            self.resident_cap(),
            g.in_use_slabs,
            g.slab_allocs,
            g.slab_reuses
        )
    }
}

/// A writable byte arena checked out of a [`SlabPool`].
///
/// Encode into [`BytesSlab::buffer`], then [`BytesSlab::freeze`] into an
/// immutable, cheaply-cloneable [`Bytes`]. Dropping an unfrozen slab
/// returns its buffer to the pool untouched.
pub struct BytesSlab {
    buf: Vec<u8>,
    pool: Arc<SlabPool>,
    frozen: bool,
}

impl BytesSlab {
    /// The writable buffer (append encoded bytes here).
    pub fn buffer(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// The backing buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the slab into an immutable [`Bytes`]. The backing buffer
    /// returns to the pool when the last clone of the result drops.
    pub fn freeze(mut self) -> Bytes {
        self.frozen = true;
        let buf = std::mem::take(&mut self.buf);
        Bytes::pooled(buf, self.pool.clone())
    }
}

impl Drop for BytesSlab {
    fn drop(&mut self) {
        if !self.frozen {
            self.pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl std::fmt::Debug for BytesSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesSlab({} bytes written)", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_allocates_then_reuses() {
        let pool = Arc::new(SlabPool::default());
        let slab = pool.get(100);
        assert!(slab.capacity() >= MIN_CLASS_BYTES);
        drop(slab); // unfrozen: straight back to the pool
        let g = pool.gauges();
        assert_eq!((g.slab_allocs, g.slab_returns, g.in_use_slabs), (1, 1, 0));
        let slab = pool.get(100);
        assert_eq!(pool.gauges().slab_reuses, 1);
        drop(slab);
    }

    #[test]
    fn freeze_returns_via_last_bytes_drop() {
        let pool = Arc::new(SlabPool::default());
        let mut slab = pool.get(16);
        slab.buffer().extend_from_slice(b"hello");
        let bytes = slab.freeze();
        assert_eq!(&bytes[..], b"hello");
        let clone = bytes.clone();
        drop(bytes);
        assert_eq!(pool.gauges().in_use_slabs, 1, "a clone still holds the slab");
        drop(clone);
        let g = pool.gauges();
        assert_eq!((g.in_use_slabs, g.slab_returns), (0, 1));
        assert!(g.pool_resident_bytes >= MIN_CLASS_BYTES as u64);
    }

    #[test]
    fn size_classes_round_up_on_get_and_down_on_put() {
        assert_eq!(SlabPool::class_for(0), Some(0));
        assert_eq!(SlabPool::class_for(MIN_CLASS_BYTES), Some(0));
        assert_eq!(SlabPool::class_for(MIN_CLASS_BYTES + 1), Some(1));
        assert_eq!(SlabPool::class_for(MAX_CLASS_BYTES), Some(CLASSES - 1));
        assert_eq!(SlabPool::class_for(MAX_CLASS_BYTES + 1), None);
        // A grown (odd-capacity) buffer re-enters one class down, so the
        // class's capacity promise holds.
        let pool = Arc::new(SlabPool::default());
        let mut slab = pool.get(MIN_CLASS_BYTES);
        slab.buffer().reserve_exact(3 * MIN_CLASS_BYTES / 2);
        drop(slab);
        let recycled = pool.get(MIN_CLASS_BYTES);
        assert!(recycled.capacity() >= MIN_CLASS_BYTES);
        assert_eq!(pool.gauges().slab_reuses, 1);
    }

    #[test]
    fn resident_cap_bounds_the_pool() {
        let pool = Arc::new(SlabPool::with_resident_cap(MIN_CLASS_BYTES));
        let a = pool.get(16);
        let b = pool.get(16);
        drop(a);
        drop(b);
        let g = pool.gauges();
        assert_eq!(g.slab_returns, 1, "second return exceeds the cap");
        assert_eq!(g.slab_discards, 1);
        assert!(g.pool_resident_bytes <= MIN_CLASS_BYTES as u64);
        // Raising the cap lets returns land again.
        pool.set_resident_cap(64 << 10);
        let c = pool.get(16);
        drop(c);
        assert_eq!(pool.gauges().slab_returns, 2);
    }

    #[test]
    fn oversize_requests_are_exact_and_never_pooled() {
        let pool = Arc::new(SlabPool::default());
        let slab = pool.get(MAX_CLASS_BYTES + 1);
        assert!(slab.capacity() > MAX_CLASS_BYTES);
        drop(slab);
        let g = pool.gauges();
        assert_eq!((g.slab_discards, g.resident_slabs), (1, 0));
    }

    #[test]
    fn growth_past_the_hint_is_absorbed() {
        let pool = Arc::new(SlabPool::default());
        let mut slab = pool.get(16);
        slab.buffer().extend(std::iter::repeat_n(7u8, 2 * MIN_CLASS_BYTES));
        let bytes = slab.freeze();
        assert_eq!(bytes.len(), 2 * MIN_CLASS_BYTES);
        drop(bytes);
        // The grown buffer re-entered the pool and can serve its class.
        let slab = pool.get(2 * MIN_CLASS_BYTES);
        assert!(slab.capacity() >= 2 * MIN_CLASS_BYTES);
        assert_eq!(pool.gauges().slab_reuses, 1);
    }
}
