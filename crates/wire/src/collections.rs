//! [`Wire`] implementations for sequences, strings, options, and maps.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::varint;
use crate::{Wire, WireError};

/// Checks a decoded length against the bytes actually remaining so a
/// malicious or corrupt length prefix cannot trigger a huge allocation.
///
/// Every element encodes to at least one byte except `()`-like zero-width
/// types; for those the bound below is still sound because we cap by the
/// declared length itself only when elements are zero-width.
fn check_len(declared: usize, remaining: usize, min_elem_bytes: usize) -> Result<(), WireError> {
    if min_elem_bytes > 0 && declared > remaining / min_elem_bytes {
        Err(WireError::LengthOverrun {
            declared,
            remaining,
        })
    } else {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(self.len() as u64, buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        let (head, rest) = input.split_at(len);
        *input = rest;
        String::from_utf8(head.to_vec()).map_err(|_| WireError::InvalidValue)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        check_len(len, input.len(), 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        match tag {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(WireError::InvalidTag(other)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl<K: Wire + Eq + Hash, V: Wire> Wire for HashMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Iteration order is nondeterministic; that is acceptable because
        // decoding rebuilds the same map regardless of entry order. Callers
        // needing canonical bytes should encode sorted pairs instead.
        varint::encode_u64(self.len() as u64, buf);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        check_len(len, input.len(), 2)?;
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Wire + Eq + Hash> Wire for HashSet<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Like HashMap: order is nondeterministic but decoding rebuilds
        // the same set.
        varint::encode_u64(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        check_len(len, input.len(), 1)?;
        let mut out = HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        // Build into a Vec first; `try_into` cannot fail since we push N items.
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(input)?);
        }
        items.try_into().map_err(|_| WireError::InvalidValue)
    }
    fn encoded_len(&self) -> usize {
        self.iter().map(Wire::encoded_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};

    #[test]
    fn string_roundtrips() {
        for s in ["", "a", "héllo wörld", "🦀🦀🦀"] {
            let v = s.to_string();
            let bytes = encode_to_vec(&v);
            assert_eq!(bytes.len(), v.encoded_len());
            assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut bytes = Vec::new();
        varint::encode_u64(2, &mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_from_slice::<String>(&bytes),
            Err(WireError::InvalidValue)
        );
    }

    #[test]
    fn vec_roundtrips() {
        let v: Vec<u32> = (0..1000).collect();
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), v.encoded_len());
        assert_eq!(decode_from_slice::<Vec<u32>>(&bytes).unwrap(), v);
    }

    #[test]
    fn nested_vec_roundtrips() {
        let v = vec![vec![1u8, 2], vec![], vec![3]];
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_from_slice::<Vec<Vec<u8>>>(&bytes).unwrap(), v);
    }

    #[test]
    fn length_overrun_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        varint::encode_u64(u32::MAX as u64, &mut bytes);
        bytes.push(7);
        let err = decode_from_slice::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverrun { .. }));
    }

    #[test]
    fn option_roundtrips() {
        for v in [None, Some(42u64)] {
            let bytes = encode_to_vec(&v);
            assert_eq!(bytes.len(), v.encoded_len());
            assert_eq!(decode_from_slice::<Option<u64>>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert_eq!(
            decode_from_slice::<Option<u8>>(&[9]),
            Err(WireError::InvalidTag(9))
        );
    }

    #[test]
    fn hashmap_roundtrips() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        let bytes = encode_to_vec(&m);
        assert_eq!(
            decode_from_slice::<HashMap<String, u32>>(&bytes).unwrap(),
            m
        );
    }

    #[test]
    fn hashset_roundtrips() {
        let s: HashSet<u64> = [3, 1, 4, 1, 5].into_iter().collect();
        let bytes = encode_to_vec(&s);
        assert_eq!(decode_from_slice::<HashSet<u64>>(&bytes).unwrap(), s);
    }

    #[test]
    fn array_roundtrips() {
        let v = [3u16, 1, 4, 1, 5];
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), v.encoded_len());
        assert_eq!(decode_from_slice::<[u16; 5]>(&bytes).unwrap(), v);
    }
}
