//! [`Wire`] implementations for scalar types.

use crate::varint;
use crate::{Wire, WireError};

macro_rules! wire_unsigned {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                varint::encode_u64(u64::from(*self), buf);
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let v = varint::decode_u64(input)?;
                <$t>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
            #[inline]
            fn encoded_len(&self) -> usize {
                varint::len_u64(u64::from(*self))
            }
        }
    )*};
}

wire_unsigned!(u8, u16, u32, u64);

impl Wire for usize {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(*self as u64, buf);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = varint::decode_u64(input)?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        varint::len_u64(*self as u64)
    }
}

macro_rules! wire_signed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                varint::encode_u64(varint::zigzag(i64::from(*self)), buf);
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let v = varint::unzigzag(varint::decode_u64(input)?);
                <$t>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
            #[inline]
            fn encoded_len(&self) -> usize {
                varint::len_u64(varint::zigzag(i64::from(*self)))
            }
        }
    )*};
}

wire_signed!(i8, i16, i32, i64);

impl Wire for isize {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(varint::zigzag(*self as i64), buf);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = varint::unzigzag(varint::decode_u64(input)?);
        isize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        varint::len_u64(varint::zigzag(*self as i64))
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&byte, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidTag(other)),
        }
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for f32 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if input.len() < 4 {
            return Err(WireError::UnexpectedEof);
        }
        let (head, rest) = input.split_at(4);
        *input = rest;
        Ok(f32::from_le_bytes(head.try_into().expect("split_at(4)")))
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for f64 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if input.len() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        let (head, rest) = input.split_at(8);
        *input = rest;
        Ok(f64::from_le_bytes(head.try_into().expect("split_at(8)")))
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for char {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(u64::from(u32::from(*self)), buf);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = u32::decode(input)?;
        char::from_u32(v).ok_or(WireError::InvalidValue)
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        varint::len_u64(u64::from(u32::from(*self)))
    }
}

impl Wire for () {
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn decode(_input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use crate::{decode_from_slice, encode_to_vec, Wire, WireError};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = encode_to_vec(v);
        assert_eq!(bytes.len(), v.encoded_len());
        assert_eq!(decode_from_slice::<T>(&bytes).unwrap(), *v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&u16::MAX);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&i8::MIN);
        roundtrip(&i16::MIN);
        roundtrip(&i32::MIN);
        roundtrip(&i64::MIN);
        roundtrip(&isize::MIN);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&1.5f32);
        roundtrip(&-0.0f64);
        roundtrip(&'é');
        roundtrip(&'\u{10FFFF}');
        roundtrip(&());
    }

    #[test]
    fn narrow_types_reject_wide_values() {
        let bytes = encode_to_vec(&300u64);
        assert_eq!(
            decode_from_slice::<u8>(&bytes),
            Err(WireError::VarintOverflow)
        );
        let bytes = encode_to_vec(&(-200i64));
        assert_eq!(
            decode_from_slice::<i8>(&bytes),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn bool_rejects_other_tags() {
        assert_eq!(
            decode_from_slice::<bool>(&[2]),
            Err(WireError::InvalidTag(2))
        );
    }

    #[test]
    fn char_rejects_surrogates() {
        let bytes = encode_to_vec(&0xD800u32);
        assert_eq!(
            decode_from_slice::<char>(&bytes),
            Err(WireError::InvalidValue)
        );
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = f64::NAN;
        let bytes = encode_to_vec(&v);
        let back = decode_from_slice::<f64>(&bytes).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }
}
