//! Borrowed (zero-copy) decoding.
//!
//! [`Wire::decode`](crate::Wire::decode) materializes owned values —
//! every `String` copies its bytes out of the frame and every `Vec`
//! allocates. That made decode ~6× the cost of encode on the keyed-record
//! microbench (EXPERIMENTS.md). [`WireRef`] is the borrowing counterpart:
//! a `WireRef<'a>` value is a *view* into the encoded frame, valid for as
//! long as the frame (`'a`), decoded without copying payload bytes.
//!
//! The pairing rules (DESIGN.md §16):
//!
//! * scalars decode by value exactly as [`Wire`](crate::Wire) does,
//! * `&'a str` is the borrowed view of `String` framing,
//! * `&'a [u8]` is the borrowed view of the same length-prefixed raw-byte
//!   framing (`String` without the UTF-8 check) — note this is *not* the
//!   `Vec<u8>` encoding, which varint-encodes each element,
//! * [`SeqView`] is the borrowed view of `Vec<T>` framing: it holds the
//!   element bytes and decodes elements lazily on iteration,
//! * tuples and `Option` concatenate views just like their owned duals.
//!
//! Borrowed and owned decode of the same frame must agree; the property
//! suite in `crates/wire/tests/properties.rs` pins that law for every
//! implementation.

use std::marker::PhantomData;

use crate::{Wire, WireError};

/// A type decodable as a borrowed view of an encoded frame.
///
/// Like [`Wire::decode`](crate::Wire::decode), `decode_ref` consumes
/// exactly the bytes of one value and advances the input past them, so
/// views concatenate the same way owned values do.
pub trait WireRef<'a>: Sized {
    /// Decodes a view from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// Returns an error if the input is truncated or malformed; `input`
    /// is left in an unspecified position on error.
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError>;
}

/// Decodes a borrowed view from a slice, requiring every byte be consumed.
pub fn decode_ref_from_slice<'a, T: WireRef<'a>>(mut input: &'a [u8]) -> Result<T, WireError> {
    let value = T::decode_ref(&mut input)?;
    if input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(input.len()))
    }
}

/// Scalars have no payload to borrow; the view *is* the value.
macro_rules! wire_ref_by_value {
    ($($t:ty),* $(,)?) => {$(
        impl<'a> WireRef<'a> for $t {
            fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
                <$t as Wire>::decode(input)
            }
        }
    )*};
}

wire_ref_by_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64, char, ());

impl<'a> WireRef<'a> for &'a str {
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
        let bytes = <&'a [u8]>::decode_ref(input)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidValue)
    }
}

impl<'a> WireRef<'a> for &'a [u8] {
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        let (head, rest) = input.split_at(len);
        *input = rest;
        Ok(head)
    }
}

impl<'a, T: WireRef<'a>> WireRef<'a> for Option<T> {
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
        let (&tag, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        match tag {
            0 => Ok(None),
            1 => Ok(Some(T::decode_ref(input)?)),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

macro_rules! wire_ref_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<'a, $($name: WireRef<'a>),+> WireRef<'a> for ($($name,)+) {
            fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
                Ok(($($name::decode_ref(input)?,)+))
            }
        }
    )+};
}

wire_ref_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A lazy, borrowed view of `Vec<T>` framing: the element count plus the
/// raw bytes of the elements, decoded one at a time on iteration instead
/// of materialized up front.
///
/// [`WireRef::decode_ref`] must honor the concatenation law — a view
/// consumes exactly its value's bytes — so constructing a `SeqView` in
/// the middle of a frame walks (and thereby validates) the elements once
/// to find where they end, without allocating. When the sequence is the
/// *last* field of a frame, [`SeqView::tail`] skips even that walk; its
/// iterator then reports any malformed element lazily.
pub struct SeqView<'a, T> {
    len: usize,
    bytes: &'a [u8],
    _marker: PhantomData<fn() -> T>,
}

// Derived Clone/Copy would bound T; views are copyable regardless of T.
impl<T> Clone for SeqView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SeqView<'_, T> {}

impl<'a, T: WireRef<'a>> SeqView<'a, T> {
    /// Wraps an entire remaining frame (`varint` count + elements) as a
    /// sequence view without walking the elements.
    ///
    /// Consumes all of `input`; malformed elements surface as `Err` items
    /// during iteration rather than here.
    pub fn tail(mut input: &'a [u8]) -> Result<Self, WireError> {
        let len = usize::decode(&mut input)?;
        if len > input.len() {
            // Cheapest sound bound: every element is at least one byte.
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        Ok(SeqView {
            len,
            bytes: input,
            _marker: PhantomData,
        })
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes every element in order, passing each to `f`; stops at the
    /// first malformed element and returns its error.
    ///
    /// Internal iteration: unlike [`SeqView::iter`] there is no per-item
    /// `Result` to unwrap, which is measurably faster on the microbench
    /// hot path (EXPERIMENTS.md).
    #[inline]
    pub fn try_for_each(&self, mut f: impl FnMut(T)) -> Result<(), WireError> {
        let mut rest = self.bytes;
        for _ in 0..self.len {
            f(T::decode_ref(&mut rest)?);
        }
        Ok(())
    }

    /// Iterates the elements, decoding each lazily.
    ///
    /// Items are `Err` only for views built with [`SeqView::tail`];
    /// views from [`WireRef::decode_ref`] were validated on construction.
    pub fn iter(&self) -> SeqViewIter<'a, T> {
        SeqViewIter {
            remaining: self.len,
            rest: self.bytes,
            _marker: PhantomData,
        }
    }
}

impl<'a, T: WireRef<'a>> WireRef<'a> for SeqView<'a, T> {
    fn decode_ref(input: &mut &'a [u8]) -> Result<Self, WireError> {
        let len = usize::decode(input)?;
        // Walk the elements once to find the frame boundary; this both
        // validates them and lets the view consume exactly its bytes.
        let start = *input;
        for _ in 0..len {
            T::decode_ref(input)?;
        }
        let consumed = start.len() - input.len();
        Ok(SeqView {
            len,
            bytes: &start[..consumed],
            _marker: PhantomData,
        })
    }
}

impl<'a, T: WireRef<'a>> IntoIterator for &SeqView<'a, T> {
    type Item = Result<T, WireError>;
    type IntoIter = SeqViewIter<'a, T>;
    fn into_iter(self) -> SeqViewIter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`SeqView`], decoding one element per step.
pub struct SeqViewIter<'a, T> {
    remaining: usize,
    rest: &'a [u8],
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: WireRef<'a>> Iterator for SeqViewIter<'a, T> {
    type Item = Result<T, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match T::decode_ref(&mut self.rest) {
            Ok(item) => Some(Ok(item)),
            Err(e) => {
                // Poisoned: stop after reporting the malformed element.
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

impl<T> std::fmt::Debug for SeqView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SeqView({} elements, {} bytes)", self.len, self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_to_vec, varint};

    #[test]
    fn str_view_borrows_the_frame() {
        let frame = encode_to_vec(&String::from("naiad"));
        let view: &str = decode_ref_from_slice(&frame).unwrap();
        assert_eq!(view, "naiad");
        // Zero-copy: the view points into the frame itself.
        let payload_start = frame.len() - view.len();
        assert!(std::ptr::eq(view.as_ptr(), frame[payload_start..].as_ptr()));
    }

    #[test]
    fn str_view_rejects_invalid_utf8() {
        let mut frame = Vec::new();
        varint::encode_u64(2, &mut frame);
        frame.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_ref_from_slice::<&str>(&frame),
            Err(WireError::InvalidValue)
        );
    }

    #[test]
    fn scalars_and_tuples_match_owned_decode() {
        let record = (42u64, String::from("key"), -7i32);
        let frame = encode_to_vec(&record);
        let (n, s, i): (u64, &str, i32) = decode_ref_from_slice(&frame).unwrap();
        assert_eq!((n, s, i), (42, "key", -7));
    }

    #[test]
    fn option_views_roundtrip() {
        let frame = encode_to_vec(&Some(String::from("x")));
        let view: Option<&str> = decode_ref_from_slice(&frame).unwrap();
        assert_eq!(view, Some("x"));
        let frame = encode_to_vec(&None::<String>);
        let view: Option<&str> = decode_ref_from_slice(&frame).unwrap();
        assert_eq!(view, None);
    }

    #[test]
    fn seq_view_iterates_without_materializing() {
        let records: Vec<(u64, String)> =
            (0..100).map(|i| (i, format!("record-{i}"))).collect();
        let frame = encode_to_vec(&records);
        let view: SeqView<'_, (u64, &str)> = decode_ref_from_slice(&frame).unwrap();
        assert_eq!(view.len(), 100);
        assert!(!view.is_empty());
        for (i, item) in view.iter().enumerate() {
            let (n, s) = item.unwrap();
            assert_eq!(n, i as u64);
            assert_eq!(s, format!("record-{i}"));
        }
    }

    #[test]
    fn seq_view_honors_concatenation() {
        // A sequence in the *middle* of a frame must consume exactly its
        // bytes so the field after it decodes correctly.
        let value = (vec![1u32, 2, 3], String::from("after"));
        let frame = encode_to_vec(&value);
        let (seq, tail): (SeqView<'_, u32>, &str) = decode_ref_from_slice(&frame).unwrap();
        let items: Vec<u32> = seq.iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(items, vec![1, 2, 3]);
        assert_eq!(tail, "after");
    }

    #[test]
    fn seq_view_mid_frame_validates_elements() {
        // Truncated element inside a mid-frame sequence fails at
        // construction, not iteration.
        let mut frame = Vec::new();
        varint::encode_u64(2, &mut frame); // two elements promised
        varint::encode_u64(1, &mut frame); // only one present
        let r = decode_ref_from_slice::<(SeqView<'_, u64>, u8)>(&frame);
        assert!(r.is_err());
    }

    #[test]
    fn tail_skips_the_walk_and_reports_errors_lazily() {
        let records: Vec<String> = (0..4).map(|i| format!("s{i}")).collect();
        let frame = encode_to_vec(&records);
        let view: SeqView<'_, &str> = SeqView::tail(&frame).unwrap();
        let items: Vec<&str> = view.iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(items, vec!["s0", "s1", "s2", "s3"]);

        // Truncated element: construction succeeds, iteration errors once.
        let mut bad = Vec::new();
        varint::encode_u64(2, &mut bad);
        String::from("ok").encode(&mut bad);
        varint::encode_u64(40, &mut bad); // claims 40 bytes, none follow
        let view: SeqView<'_, &str> = SeqView::tail(&bad).unwrap();
        let mut it = view.iter();
        assert_eq!(it.next(), Some(Ok("ok")));
        assert!(matches!(it.next(), Some(Err(_))));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn tail_rejects_absurd_lengths() {
        let mut bad = Vec::new();
        varint::encode_u64(1_000_000, &mut bad);
        bad.push(0);
        assert!(matches!(
            SeqView::<'_, u64>::tail(&bad),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn byte_view_reads_raw_framing() {
        // &[u8] shares String's framing: varint length + raw bytes.
        let frame = encode_to_vec(&String::from("ab"));
        let view: &[u8] = decode_ref_from_slice(&frame).unwrap();
        assert_eq!(view, b"ab");
    }
}
