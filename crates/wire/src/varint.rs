//! LEB128 variable-length integers and the zigzag mapping.
//!
//! Progress-protocol updates are dominated by small integers (stage ids,
//! epochs, loop counters, ±1 deltas), so a varint representation is what
//! makes the Figure 6c byte counts meaningful.

use crate::WireError;

/// Appends `value` to `buf` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn encode_u64(mut value: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes an LEB128 varint from the front of `input`.
#[inline]
pub fn decode_u64(input: &mut &[u8]) -> Result<u64, WireError> {
    // Fast path: single-byte varints dominate real frames (lengths,
    // small keys, ±1 progress deltas).
    let (&byte, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
    if byte & 0x80 == 0 {
        *input = rest;
        return Ok(u64::from(byte));
    }
    decode_u64_multibyte(byte, rest, input)
}

/// The multi-byte continuation of [`decode_u64`]: `first` had its
/// continuation bit set and `rest` holds the bytes after it.
#[inline]
fn decode_u64_multibyte<'a>(
    first: u8,
    mut rest: &'a [u8],
    input: &mut &'a [u8],
) -> Result<u64, WireError> {
    // Two-byte varints (128..16384) are the next most common case:
    // record keys, batch lengths, stage counts.
    let (&b1, tail) = rest.split_first().ok_or(WireError::UnexpectedEof)?;
    if b1 & 0x80 == 0 {
        *input = tail;
        return Ok(u64::from(first & 0x7f) | u64::from(b1) << 7);
    }
    let mut value = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let (&byte, tail) = rest.split_first().ok_or(WireError::UnexpectedEof)?;
        rest = tail;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            *input = rest;
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
}

/// The number of bytes [`encode_u64`] writes for `value`.
#[inline]
pub fn len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Maps a signed integer to an unsigned one so small magnitudes stay small.
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        assert_eq!(buf.len(), len_u64(v), "len_u64 mismatch for {v}");
        let mut slice = &buf[..];
        assert_eq!(decode_u64(&mut slice).unwrap(), v);
        assert!(slice.is_empty());
    }

    #[test]
    fn roundtrips_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128 {
            assert_eq!(len_u64(v), 1);
        }
        assert_eq!(len_u64(128), 2);
    }

    #[test]
    fn rejects_overflow() {
        // Eleven continuation bytes can never be a valid u64.
        let bytes = [0x80u8; 10];
        let mut slice = &bytes[..];
        assert!(decode_u64(&mut slice).is_err());
        // Ten bytes whose top byte has payload > 1 overflows 64 bits.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        let mut slice = &bytes[..];
        assert_eq!(decode_u64(&mut slice), Err(WireError::VarintOverflow));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = [0x80u8, 0x80];
        let mut slice = &bytes[..];
        assert_eq!(decode_u64(&mut slice), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn zigzag_is_involutive_and_compact() {
        for v in [-2i64, -1, 0, 1, 2, i64::MIN, i64::MAX, -64, 63] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        // Progress deltas of ±1 encode in one byte.
        assert_eq!(len_u64(zigzag(1)), 1);
        assert_eq!(len_u64(zigzag(-1)), 1);
    }
}
