//! A compact binary codec with exact byte accounting.
//!
//! Naiad exchanges typed records between workers in different processes and
//! broadcasts progress-protocol updates; both paths must be metered in bytes
//! to regenerate the paper's Figures 6a and 6c. This crate provides the
//! [`Wire`] trait — a small, deterministic, self-contained encoding — so the
//! runtime controls every encoded byte rather than delegating to an opaque
//! serializer.
//!
//! The encoding rules are:
//!
//! * unsigned integers use LEB128 variable-length encoding ([`varint`]),
//! * signed integers are zigzag-mapped to unsigned first,
//! * floating-point values are little-endian IEEE-754 bit patterns,
//! * sequences are a varint length followed by the elements,
//! * tuples and `Option` concatenate their parts (with a one-byte tag for
//!   `Option`).
//!
//! # Examples
//!
//! ```
//! use naiad_wire::{decode_from_slice, encode_to_vec};
//!
//! let record = (42u64, String::from("naiad"), vec![1u32, 2, 3]);
//! let bytes = encode_to_vec(&record);
//! let back: (u64, String, Vec<u32>) = decode_from_slice(&bytes).unwrap();
//! assert_eq!(record, back);
//! ```

#![forbid(unsafe_code)]

mod bytes;
mod collections;
mod columnar;
mod decode_ref;
mod error;
mod primitives;
mod slab;
mod tuples;
pub mod varint;

pub use bytes::Bytes;
pub use columnar::{KeyedBatch, KeyedBatchIter, KeyedBatchView};
pub use decode_ref::{decode_ref_from_slice, SeqView, SeqViewIter, WireRef};
pub use error::WireError;
pub use slab::{BytesSlab, SlabGauges, SlabPool};
#[cfg(loom)]
pub use slab::slab_loom_hook;

/// A type with a deterministic binary encoding.
///
/// Implementations must round-trip: decoding the bytes produced by
/// [`Wire::encode`] yields a value equal to the original, and consumes
/// exactly the bytes that were written (so values can be concatenated).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// Returns an error if the input is truncated or malformed; `input` is
    /// left in an unspecified position on error.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// The number of bytes [`Wire::encode`] would append.
    ///
    /// The default implementation encodes into a scratch buffer; impls
    /// override it with a direct computation where that is cheap.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    value.encode(&mut buf);
    buf
}

/// Decodes a value from a slice, requiring that every byte is consumed.
///
/// Use [`Wire::decode`] directly to decode a prefix of a longer buffer.
pub fn decode_from_slice<T: Wire>(mut input: &[u8]) -> Result<T, WireError> {
    let value = T::decode(&mut input)?;
    if input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(input.len()))
    }
}

/// Marker for record types that can cross worker boundaries.
///
/// This is the bound Naiad places on data flowing over exchange connectors:
/// the value must be sendable to another worker thread, clonable for
/// broadcast connectors, and encodable for inter-process links.
pub trait ExchangeData: Clone + Send + 'static + Wire {}
impl<T: Clone + Send + 'static + Wire> ExchangeData for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_to_vec_matches_manual_encode() {
        let v = 12345u64;
        let mut manual = Vec::new();
        v.encode(&mut manual);
        assert_eq!(encode_to_vec(&v), manual);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0xff);
        let err = decode_from_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes(1)));
    }

    #[test]
    fn default_encoded_len_matches_encoding() {
        let value = (1u8, String::from("xyz"));
        assert_eq!(value.encoded_len(), encode_to_vec(&value).len());
    }
}
