//! The NS rule catalog (DESIGN.md §17).
//!
//! Pattern rules (NS0001–NS0004) walk one file's token stream; structural
//! rules (NS0005 conservation, NS0006 lock order) correlate across files.
//! Every rule honors `// lint-allow(NSxxxx): why` suppressions; NS0001
//! and NS0002 additionally honor the domain markers the old grep gates
//! used (`// flow-exempt:`, `// slab-exempt:`), so existing annotations
//! keep their meaning.

pub mod locks;
pub mod telemetry;

use crate::diag::{Code, Diagnostic, Severity};
use crate::source::SourceFile;
use crate::lexer::{Tok, TokKind};

/// Paths (relative, `/`-separated) a rule applies to.
fn in_runtime(rel: &str) -> bool {
    rel.starts_with("crates/core/src/runtime/")
}

fn is_hot_path(rel: &str) -> bool {
    rel == "crates/core/src/runtime/channels.rs"
        || rel == "crates/wire/src/bytes.rs"
        || rel == "crates/wire/src/columnar.rs"
}

fn is_deterministic_module(rel: &str) -> bool {
    rel == "crates/core/src/progress/protocol.rs"
        || rel.starts_with("crates/core/src/progress/modelcheck/")
        || rel.starts_with("crates/netsim/src/")
}

/// The first line of the statement containing token `ti` (for marker
/// attachment on multi-line statements).
pub(crate) fn stmt_start_line(toks: &[Tok], ti: usize) -> u32 {
    let mut i = ti;
    let mut depth = 0i32;
    while i > 0 {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth += 1,
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    toks.get(i).map_or(1, |t| t.line)
}

/// Whether a domain marker or a `lint-allow` suppression covers the
/// statement containing token `ti`.
fn excused(f: &SourceFile, ti: usize, marker: Option<&str>, code: Code) -> bool {
    let line = f.toks[ti].line;
    let start = stmt_start_line(&f.toks, ti);
    if f.allowed(code.as_str(), line) || f.allowed(code.as_str(), start) {
        return true;
    }
    match marker {
        Some(m) => f.exempt(m, line) || f.exempt(m, start),
        None => false,
    }
}

/// Token index spans inside deliberate-panic macros (`assert!`,
/// `panic!`, ...) — intended panic sites NS0004 must not flag.
fn deliberate_panic_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    const MACROS: [&str; 10] = [
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
    ];
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let named = toks[i]
            .ident()
            .is_some_and(|s| MACROS.contains(&s));
        if named && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('(') {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((i, j));
            i = j;
        }
        i += 1;
    }
    spans
}

fn diag(code: Code, f: &SourceFile, line: u32, message: String, suggestion: &str) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Error,
        file: f.rel.clone(),
        line,
        message,
        suggestion: suggestion.to_string(),
    }
}

/// NS0001: unbounded channel/queue creation in `runtime/` without a
/// `// flow-exempt:` justification. Supersedes the verify.sh `grep -B4`
/// gate: attachment is scope-aware (contiguous comments above the
/// creating statement), not a fixed four-line window.
pub fn ns0001(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_runtime(&f.rel) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.in_test(toks[i].line) {
            continue;
        }
        let hit = match toks[i].ident() {
            // `ring()` / `ring::<T>()` queue constructor — skip its
            // definition (`fn ring`) and imports (`use ...::ring`).
            Some("ring") => {
                let call = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    || (toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct('<')));
                let defn = i > 0 && toks[i - 1].is_ident("fn");
                let import = stmt_first_ident(toks, i) == Some("use");
                call && !defn && !import
            }
            // `mpsc::channel(...)` / `sync_channel(...)` / `channel::<T>()`.
            Some("channel") => {
                let qualified = i >= 2
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks.get(i.wrapping_sub(3)).is_some_and(|t| t.is_ident("mpsc"));
                let turbofish = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('<'));
                qualified || turbofish
            }
            Some("sync_channel") => toks.get(i + 1).is_some_and(|t| t.is_punct('(')),
            _ => false,
        };
        if hit && !excused(f, i, Some("flow-exempt:"), Code::UnboundedChannel) {
            out.push(diag(
                Code::UnboundedChannel,
                f,
                toks[i].line,
                "unbounded channel created in runtime/ without a flow-control justification"
                    .to_string(),
                "credit the queue via runtime::flow, or justify with `// flow-exempt: <why \
                 bounding is unsound>` on the creating statement (DESIGN.md \u{a7}15)",
            ));
        }
    }
}

/// NS0002: fresh `Vec` allocation in the zero-copy hot-path modules
/// without a `// slab-exempt:` justification (DESIGN.md §16).
pub fn ns0002(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_hot_path(&f.rel) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.in_test(toks[i].line) {
            continue;
        }
        let hit = match toks[i].ident() {
            Some("Vec") => {
                toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks
                        .get(i + 3)
                        .is_some_and(|t| t.is_ident("new") || t.is_ident("with_capacity"))
            }
            Some("vec") => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
            Some("to_vec") => i > 0 && toks[i - 1].is_punct('.'),
            _ => false,
        };
        if hit && !excused(f, i, Some("slab-exempt:"), Code::HotPathAlloc) {
            out.push(diag(
                Code::HotPathAlloc,
                f,
                toks[i].line,
                "fresh Vec allocation in a zero-copy hot-path module".to_string(),
                "recycle through SparePool/SlabPool, or justify with `// slab-exempt: <why this \
                 is not a per-record or per-batch allocation>` (DESIGN.md \u{a7}16)",
            ));
        }
    }
}

/// NS0003: nondeterminism sources inside modules whose outputs must be
/// bit-identical across runs (`progress::{protocol,modelcheck}` feed the
/// model-checker's replay; `netsim` feeds the seeded chaos soaks):
/// wall-clock reads, hasher randomness, and iteration over
/// `HashMap`/`HashSet` bindings (order varies per process).
pub fn ns0003(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_module(&f.rel) {
        return;
    }
    let toks = &f.toks;

    // Pass 1: names bound to hash-ordered collections in this file
    // (struct fields, params, and `let` bindings).
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let is_hash = toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet");
        if !is_hash {
            continue;
        }
        // `name: HashMap<...>` (field/param/ascription).
        if i >= 2 && toks[i - 1].is_punct(':') {
            if let Some(name) = toks[i - 2].ident() {
                hash_names.push(name.to_string());
            }
        }
        // `name = HashMap::new()` / `= HashMap::with_capacity(..)`.
        if i >= 2 && toks[i - 1].is_punct('=') {
            if let Some(name) = toks[i - 2].ident() {
                hash_names.push(name.to_string());
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    const ITERATORS: [&str; 8] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "retain",
    ];

    for i in 0..toks.len() {
        if f.in_test(toks[i].line) {
            continue;
        }
        let mut finding: Option<String> = None;
        match toks[i].ident() {
            Some("Instant")
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("now")) =>
            {
                finding = Some("wall-clock read (`Instant::now`)".to_string());
            }
            Some("SystemTime") => {
                finding = Some("wall-clock read (`SystemTime`)".to_string());
            }
            Some("RandomState") => {
                finding = Some("hasher randomness (`RandomState`)".to_string());
            }
            Some(m) if ITERATORS.contains(&m) => {
                // `<recv>.iter()` where the receiver's tail identifier is
                // a known hash-collection binding.
                let method_call = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if method_call && i >= 2 {
                    if let Some(recv) = toks[i - 2].ident() {
                        if hash_names.iter().any(|n| n == recv) {
                            finding = Some(format!(
                                "iteration over hash-ordered collection `{recv}` (`.{m}()`)"
                            ));
                        }
                    }
                }
            }
            Some("in") => {
                // `for x in [&]name {` over a hash binding.
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.is_punct('&') || t.is_punct('*'))
                    || toks.get(j).is_some_and(|t| t.is_ident("mut"))
                {
                    j += 1;
                }
                // Skip a leading `self .`.
                if toks.get(j).is_some_and(|t| t.is_ident("self"))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                {
                    j += 2;
                }
                if let (Some(name), Some(open)) = (
                    toks.get(j).and_then(Tok::ident),
                    toks.get(j + 1),
                ) {
                    if open.is_punct('{') && hash_names.iter().any(|n| n == name) {
                        finding = Some(format!(
                            "`for` loop over hash-ordered collection `{name}`"
                        ));
                    }
                }
            }
            _ => {}
        }
        if let Some(what) = finding {
            if !excused(f, i, None, Code::Nondeterminism) {
                out.push(diag(
                    Code::Nondeterminism,
                    f,
                    toks[i].line,
                    format!("{what} inside a deterministic-by-contract module"),
                    "use the seeded naiad-rng streams / the shared ClusterClock / a BTree \
                     collection (or sort before the order can leak), or justify with \
                     `// lint-allow(NS0003): <why order or time cannot reach an output>`",
                ));
            }
        }
    }
}

/// NS0004: implicit panic paths in `runtime/` outside `#[cfg(test)]`:
/// `unwrap`, `expect`, and slice/array indexing. Deliberate panics
/// (`assert!`-family, `panic!`) are the program stating an invariant and
/// are not flagged.
pub fn ns0004(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_runtime(&f.rel) {
        return;
    }
    let toks = &f.toks;
    let deliberate = deliberate_panic_spans(toks);
    let in_deliberate =
        |i: usize| deliberate.iter().any(|&(a, b)| a <= i && i <= b);
    const KEYWORDS: [&str; 12] = [
        "let", "in", "match", "return", "if", "else", "mut", "ref", "move", "as", "box", "dyn",
    ];
    for i in 0..toks.len() {
        if f.in_test(toks[i].line) || in_deliberate(i) {
            continue;
        }
        let mut what: Option<&str> = None;
        if let Some(name) = toks[i].ident() {
            let method_call = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if method_call && name == "unwrap" {
                what = Some("`unwrap()`");
            } else if method_call && name == "expect" {
                what = Some("`expect()`");
            }
        } else if toks[i].is_punct('[') && i > 0 {
            // Indexing: `expr[...]` where expr ends in an identifier, a
            // call, or another index. Type syntax, slices-of-types,
            // attributes, and macro brackets all have non-expression
            // predecessors and fall through.
            let prev = &toks[i - 1];
            let indexable = match &prev.kind {
                TokKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            // An empty `[]` or `[..]`-style full-range slice of a Vec
            // still panics only on OOB starts; keep them all flagged
            // except `[..]` (infallible full-range borrow).
            let full_range = toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(']'));
            if indexable && !full_range {
                what = Some("slice/array indexing");
            }
        }
        if let Some(what) = what {
            if !excused(f, i, None, Code::PanicPath) {
                out.push(diag(
                    Code::PanicPath,
                    f,
                    toks[i].line,
                    format!("{what} in runtime/ is an implicit panic path"),
                    "return a typed error, use an infallible wrapper (like sync::Mutex::lock) \
                     or get()/get_mut(), or justify with `// lint-allow(NS0004): <why this \
                     cannot fail>` on the item or statement",
                ));
            }
        }
    }
}

/// First identifier of the statement containing token `ti` (used to
/// recognize `use` statements).
fn stmt_first_ident(toks: &[Tok], ti: usize) -> Option<&str> {
    let mut i = ti;
    let mut depth = 0i32;
    while i > 0 {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth += 1,
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    toks.get(i).and_then(Tok::ident)
}
