//! NS0006: lock-order cycle detection across `crates/core/src/runtime/`.
//!
//! A heuristic whole-module analysis, not a proof: lock identity is the
//! receiver's tail identifier at each `.lock()` site (`self.in_flight
//! .lock()` → lock `in_flight`). Per function we approximate guard
//! liveness — a `let`-bound guard lives to the end of its enclosing
//! block (or an explicit `drop(guard)`), a temporary to the end of its
//! statement — and record an ordered edge `A → B` whenever `B` is
//! acquired while `A` is live. `self.helper(..)` and plain `helper(..)`
//! calls made while holding a lock propagate the callee's lock summary
//! (computed to a fixpoint over the runtime call graph, resolved
//! same-file first, then by unique name); other call shapes are not
//! tracked because bare-name resolution would fabricate edges. Any cycle
//! in the resulting order graph is a potential deadlock and is denied
//! with a witness path; benign edges are suppressed at the acquisition
//! site with `// lint-allow(NS0006): <why the order cannot invert>`.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// One acquisition event inside a function body.
struct LockEv {
    id: String,
    ti: usize,
    /// Last token index at which the guard is (conservatively) live.
    end: usize,
    line: u32,
}

/// One call made inside a function body.
struct CallEv {
    name: String,
    ti: usize,
    line: u32,
}

struct FnInfo {
    file: usize,
    name: String,
    locks: Vec<LockEv>,
    calls: Vec<CallEv>,
}

/// An ordered edge `from → to`, acquired (or entered via a call) at
/// `file:line`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    to: String,
    file: String,
    line: u32,
}

pub fn ns0006(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut infos: Vec<FnInfo> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.rel.starts_with("crates/core/src/runtime/") {
            continue;
        }
        for (xi, item) in f.fns.iter().enumerate() {
            if f.in_test(item.line) {
                continue;
            }
            // Token ranges of fns nested inside this one: their code does
            // not run at the definition site.
            let nested: Vec<(usize, usize)> = f
                .fns
                .iter()
                .enumerate()
                .filter(|(oi, o)| {
                    *oi != xi && o.body_open > item.body_open && o.body_close < item.body_close
                })
                .map(|(_, o)| (o.body_open, o.body_close))
                .collect();
            let in_nested = |ti: usize| nested.iter().any(|&(a, b)| a <= ti && ti <= b);

            let toks = &f.toks;
            let mut locks = Vec::new();
            let mut calls = Vec::new();
            let mut i = item.body_open + 1;
            while i < item.body_close {
                if in_nested(i) || f.in_test(toks[i].line) {
                    i += 1;
                    continue;
                }
                let prev_dot = i > 0 && toks[i - 1].is_punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if let Some(name) = toks[i].ident() {
                    if name == "lock" && prev_dot && next_paren {
                        if let Some(id) = receiver_tail(toks, i - 1) {
                            let (let_bound, binding) = let_binding(toks, i);
                            let end = live_end(
                                toks,
                                i,
                                item.body_close,
                                let_bound,
                                binding.as_deref(),
                            );
                            locks.push(LockEv {
                                id,
                                ti: i,
                                end,
                                line: toks[i].line,
                            });
                        }
                    } else if next_paren && is_callee(toks, i, name) {
                        calls.push(CallEv {
                            name: name.to_string(),
                            ti: i,
                            line: toks[i].line,
                        });
                    }
                }
                i += 1;
            }
            infos.push(FnInfo {
                file: fi,
                name: item.name.clone(),
                locks,
                calls,
            });
        }
    }

    // Fixpoint lock summaries: every lock a call to fn `k` may acquire.
    let mut summaries: Vec<BTreeSet<String>> = infos
        .iter()
        .map(|fi| fi.locks.iter().map(|l| l.id.clone()).collect())
        .collect();
    for _round in 0..50 {
        let mut changed = false;
        for k in 0..infos.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in &infos[k].calls {
                if let Some(target) = resolve(&infos, k, &c.name) {
                    add.extend(summaries[target].iter().cloned());
                }
            }
            for id in add {
                changed |= summaries[k].insert(id);
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: direct nesting plus calls made under a held lock.
    let mut graph: BTreeMap<String, BTreeSet<Edge>> = BTreeMap::new();
    for (k, info) in infos.iter().enumerate() {
        let f = &files[info.file];
        let allowed = |line: u32| f.allowed(Code::LockOrderCycle.as_str(), line);
        for l in &info.locks {
            for l2 in &info.locks {
                if l2.ti > l.ti && l2.ti <= l.end && !allowed(l2.line) {
                    graph.entry(l.id.clone()).or_default().insert(Edge {
                        to: l2.id.clone(),
                        file: f.rel.clone(),
                        line: l2.line,
                    });
                }
            }
            for c in &info.calls {
                if c.ti > l.ti && c.ti <= l.end && !allowed(c.line) {
                    if let Some(target) = resolve(&infos, k, &c.name) {
                        for id in &summaries[target] {
                            graph.entry(l.id.clone()).or_default().insert(Edge {
                                to: id.clone(),
                                file: f.rel.clone(),
                                line: c.line,
                            });
                        }
                    }
                }
            }
        }
    }

    // Cycle detection with witness extraction, deduped by node set.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<String> = graph.keys().cloned().collect();
    for start in &nodes {
        let mut path: Vec<(String, Option<Edge>)> = vec![(start.clone(), None)];
        let mut on_path: BTreeSet<String> = [start.clone()].into();
        dfs_cycles(&graph, &mut path, &mut on_path, &mut seen, out);
    }
}

fn dfs_cycles(
    graph: &BTreeMap<String, BTreeSet<Edge>>,
    path: &mut Vec<(String, Option<Edge>)>,
    on_path: &mut BTreeSet<String>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    let here = path.last().expect("path nonempty").0.clone();
    let Some(edges) = graph.get(&here) else {
        return;
    };
    for e in edges {
        if on_path.contains(&e.to) {
            // Cycle: from the first occurrence of e.to on the path.
            let from = path.iter().position(|(n, _)| n == &e.to).unwrap_or(0);
            let mut names: Vec<String> =
                path[from..].iter().map(|(n, _)| n.clone()).collect();
            names.sort();
            if seen.insert(names) {
                report_cycle(&path[from..], e, out);
            }
            continue;
        }
        if path.len() > 32 {
            continue; // Depth bound; runtime lock graphs are tiny.
        }
        on_path.insert(e.to.clone());
        path.push((e.to.clone(), Some(e.clone())));
        dfs_cycles(graph, path, on_path, seen, out);
        let (popped, _) = path.pop().expect("pushed above");
        on_path.remove(&popped);
    }
}

fn report_cycle(segment: &[(String, Option<Edge>)], closing: &Edge, out: &mut Vec<Diagnostic>) {
    let mut witness = String::new();
    for (i, (node, via)) in segment.iter().enumerate() {
        if i > 0 {
            if let Some(e) = via {
                witness.push_str(&format!(" -> `{}` ({}:{})", node, e.file, e.line));
                continue;
            }
        }
        witness.push_str(&format!("`{node}`"));
    }
    witness.push_str(&format!(
        " -> `{}` ({}:{})",
        closing.to, closing.file, closing.line
    ));
    out.push(Diagnostic {
        code: Code::LockOrderCycle,
        severity: Severity::Error,
        file: closing.file.clone(),
        line: closing.line,
        message: format!("lock-order cycle: {witness}"),
        suggestion: "two threads taking these locks in opposite orders can deadlock; impose a \
                     single global acquisition order (or drop the first guard before taking \
                     the second), or justify the site with `// lint-allow(NS0006): <why the \
                     order cannot invert>`"
            .to_string(),
    });
}

/// Resolves a callee name: a fn in the same file wins, else a uniquely
/// named fn anywhere in the runtime set, else unknown.
fn resolve(infos: &[FnInfo], from: usize, name: &str) -> Option<usize> {
    let same_file = infos
        .iter()
        .position(|i| i.name == name && i.file == infos[from].file);
    if same_file.is_some() {
        return same_file;
    }
    let mut hits = infos.iter().enumerate().filter(|(_, i)| i.name == name);
    let first = hits.next()?;
    if hits.next().is_some() {
        return None; // Ambiguous across files: don't guess.
    }
    Some(first.0)
}

/// The identifier naming the lock receiver, given the token index of the
/// `.` before `lock`. `self.in_flight.lock()` → `in_flight`;
/// `cell.lock()` → `cell`; `).lock()` → unknown.
fn receiver_tail(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    match &toks[dot - 1].kind {
        TokKind::Ident(s) if s != "self" => Some(s.clone()),
        // `self.lock()` — the object itself is the lock.
        TokKind::Ident(s) => Some(s.clone()),
        _ => None,
    }
}

/// Whether the statement containing the `.lock()` at `ti` is a `let`
/// binding, and the binding name if it is a simple pattern.
fn let_binding(toks: &[Tok], ti: usize) -> (bool, Option<String>) {
    let mut i = ti;
    let mut depth = 0i32;
    while i > 0 {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth += 1,
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    if !toks.get(i).is_some_and(|t| t.is_ident("let")) {
        return (false, None);
    }
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    (true, toks.get(j).and_then(|t| t.ident().map(str::to_string)))
}

/// Conservative guard liveness: a temporary dies at the end of its
/// statement; a `let` guard at its enclosing block's `}` or at an
/// explicit `drop(binding)`.
fn live_end(
    toks: &[Tok],
    site: usize,
    body_close: usize,
    let_bound: bool,
    binding: Option<&str>,
) -> usize {
    let mut depth = 0i32;
    let mut k = site + 1;
    while k < body_close {
        if let_bound {
            if let Some(b) = binding {
                if toks[k].is_ident("drop")
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 2).is_some_and(|t| t.is_ident(b))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')'))
                {
                    return k;
                }
            }
        }
        match toks[k].kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            TokKind::Punct(';') if !let_bound && depth <= 0 => return k,
            _ => {}
        }
        k += 1;
    }
    body_close
}

/// Whether the identifier at `ti` is a call worth recording for
/// summary propagation. Only two shapes resolve reliably by bare name —
/// `self.helper(..)` (same impl, so same file) and plain `helper(..)` —
/// so only those are recorded. Arbitrary-receiver method calls
/// (`guard.pop()`) and path calls (`Box::new`) would collide with
/// same-named local fns and fabricate edges.
fn is_callee(toks: &[Tok], ti: usize, name: &str) -> bool {
    const SKIP: [&str; 20] = [
        "if",
        "while",
        "match",
        "return",
        "for",
        "loop",
        "let",
        "in",
        "as",
        "move",
        "fn",
        "lock",
        "try_lock",
        "wait",
        "wait_timeout",
        "wait_while",
        "notify_one",
        "notify_all",
        "drop",
        "Some",
    ];
    if SKIP.contains(&name) {
        return false;
    }
    if ti > 0 && toks[ti - 1].is_ident("fn") {
        return false;
    }
    // Macro invocation: `name!(...)` has `!` between name and paren — the
    // paren check already failed for that shape, but `name !` followed by
    // `(` is a different token order; guard anyway.
    if toks.get(ti + 1).is_some_and(|t| t.is_punct('!')) {
        return false;
    }
    if ti > 0 && toks[ti - 1].is_punct('.') {
        // Method call: only `self.name(..)` resolves to this file's fns.
        return ti >= 2 && toks[ti - 2].is_ident("self");
    }
    if ti > 0 && toks[ti - 1].is_punct(':') {
        return false; // Path-qualified: bare-name resolution would lie.
    }
    true
}
