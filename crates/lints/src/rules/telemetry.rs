//! NS0005: telemetry counter conservation.
//!
//! Two obligations, both cross-file:
//!
//! 1. Every `TelemetryEvent` variant declared in
//!    `crates/core/src/telemetry/event.rs` must be handled by the
//!    recorder (`EventLog::count`'s exhaustive match in `recorder.rs`) —
//!    an event that is emitted but never counted silently vanishes from
//!    `TelemetrySnapshot`.
//! 2. Every field of a `*Counters`/`*Gauges` struct in the telemetry
//!    module must be mentioned somewhere outside its own declaration —
//!    a counter nobody populates or merges is dead weight that reads as
//!    coverage.

use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::source::{matching_brace, SourceFile};

const EVENT_RS: &str = "crates/core/src/telemetry/event.rs";
const RECORDER_RS: &str = "crates/core/src/telemetry/recorder.rs";

pub fn ns0005(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    variant_coverage(files, out);
    field_conservation(files, out);
}

fn variant_coverage(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let Some(event) = files.iter().find(|f| f.rel == EVENT_RS) else {
        return;
    };
    let Some(recorder) = files.iter().find(|f| f.rel == RECORDER_RS) else {
        return;
    };
    for (variant, line) in enum_variants(event, "TelemetryEvent") {
        if event.allowed(Code::TelemetryConservation.as_str(), line) {
            continue;
        }
        let handled = recorder.toks.windows(4).any(|w| {
            w[0].is_ident("TelemetryEvent")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident(&variant)
        });
        if !handled {
            out.push(Diagnostic {
                code: Code::TelemetryConservation,
                severity: Severity::Error,
                file: event.rel.clone(),
                line,
                message: format!(
                    "TelemetryEvent::{variant} is declared but never matched by the recorder"
                ),
                suggestion: "count it in EventLog::count (recorder.rs) so it reaches \
                             TelemetrySnapshot, or justify with `// lint-allow(NS0005): <why \
                             this event is intentionally uncounted>`"
                    .to_string(),
            });
        }
    }
}

fn field_conservation(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for (fi, f) in files.iter().enumerate() {
        if !f.rel.starts_with("crates/core/src/telemetry/") {
            continue;
        }
        for (sname, fields, span) in counter_structs(f) {
            for (field, line) in fields {
                if f.allowed(Code::TelemetryConservation.as_str(), line) {
                    continue;
                }
                let used = files.iter().enumerate().any(|(oi, other)| {
                    other.toks.iter().any(|t| {
                        t.is_ident(&field)
                            && !(oi == fi && span.0 <= t.line && t.line <= span.1)
                    })
                });
                if !used {
                    out.push(Diagnostic {
                        code: Code::TelemetryConservation,
                        severity: Severity::Error,
                        file: f.rel.clone(),
                        line,
                        message: format!(
                            "counter field {sname}.{field} is declared but never populated or \
                             merged"
                        ),
                        suggestion: "wire the field through assemble/merge (snapshot.rs) or \
                                     delete it; a counter nobody writes misreports coverage"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Variants of `enum <name>` in `f`, with declaration lines.
fn enum_variants(f: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let close = matching_brace(toks, j);
        let mut vars = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Skip per-variant attributes.
            if toks[k].is_punct('#') {
                while k < close && !toks[k].is_punct(']') {
                    k += 1;
                }
                k += 1;
                continue;
            }
            if let Some(v) = toks[k].ident() {
                vars.push((v.to_string(), toks[k].line));
                // Skip the payload (tuple/struct body) to the `,`.
                k += 1;
                let mut depth = 0i32;
                while k < close {
                    match toks[k].kind {
                        TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                            depth += 1;
                        }
                        TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                            depth -= 1;
                        }
                        TokKind::Punct(',') if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        return vars;
    }
    Vec::new()
}

/// One `struct <X>Counters` / `struct <X>Gauges` declaration:
/// (struct name, fields with lines, declaration line span).
type CounterStruct = (String, Vec<(String, u32)>, (u32, u32));

fn counter_structs(f: &SourceFile) -> Vec<CounterStruct> {
    let toks = &f.toks;
    let mut found = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("struct") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !(name.ends_with("Counters") || name.ends_with("Gauges")) {
            continue;
        }
        // Find the body `{` (tuple structs end at `;` first — skip).
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            continue;
        };
        let close = matching_brace(toks, open);
        let span = (toks[i].line, toks[close].line);
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            if toks[k].is_punct('#') {
                while k < close && !toks[k].is_punct(']') {
                    k += 1;
                }
                k += 1;
                continue;
            }
            // `[pub [(crate)]] name: Type,`
            if toks[k].is_ident("pub") {
                k += 1;
                if toks.get(k).is_some_and(|t| t.is_punct('(')) {
                    while k < close && !toks[k].is_punct(')') {
                        k += 1;
                    }
                    k += 1;
                }
                continue;
            }
            if let Some(field) = toks[k].ident() {
                if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                {
                    fields.push((field.to_string(), toks[k].line));
                    // Skip the type to the `,` at depth 0.
                    k += 2;
                    let mut depth = 0i32;
                    while k < close {
                        match toks[k].kind {
                            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[')
                            | TokKind::Punct('<') => depth += 1,
                            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']')
                            | TokKind::Punct('>') => depth -= 1,
                            TokKind::Punct(',') if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    continue;
                }
            }
            k += 1;
        }
        found.push((name.to_string(), fields, span));
    }
    found
}
