//! A small Rust lexer: just enough token structure for the source rules.
//!
//! The workspace is dependency-free by design (no `syn`), so the linter
//! carries its own tokenizer. It understands the lexical shapes that
//! would otherwise corrupt a textual scan — line/block comments (nested),
//! string/char/byte/raw-string literals, lifetimes vs. char literals —
//! and flattens everything else into identifier, number, and punctuation
//! tokens tagged with 1-based line numbers. No parse tree: the rules
//! layer walks the token stream with explicit brace matching.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `Vec`, ...).
    Ident(String),
    /// Integer/float literal (value text dropped; rules never need it).
    Number,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Char literal (`'x'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// One punctuation character (`{`, `.`, `<`, ...). Multi-character
    /// operators arrive as consecutive tokens; the rules only ever match
    /// single characters.
    Punct(char),
    /// A `//` comment, text including the slashes.
    LineComment(String),
    /// A `/* ... */` comment (possibly nested), text included.
    BlockComment(String),
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// Tokenizes `src`. Never fails: malformed trailing input degrades into
/// punctuation tokens, which at worst makes a rule miss — the compiler,
/// not the linter, owns syntax errors.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Counts newlines in `bytes[from..to]`.
    let newlines = |from: usize, to: usize| -> u32 {
        bytes[from..to].iter().filter(|&&b| b == b'\n').count() as u32
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment(src[start..i].to_string()),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment(src[start..i].to_string()),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start = i;
                let start_line = line;
                // Skip `r`/`br`/`b` prefix, count `#`s, then scan to the
                // matching `"###...` closer.
                while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < bytes.len() && bytes[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if bytes.get(i) == Some(&b'"') {
                    i += 1;
                    'scan: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut j = 0usize;
                            while j < hashes && bytes.get(i + 1 + j) == Some(&b'#') {
                                j += 1;
                            }
                            if j == hashes {
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                    line += newlines(start, i);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        line: start_line,
                    });
                } else {
                    // `b` or `r` that was a plain identifier after all.
                    i = start;
                    let (tok, next) = lex_ident(src, bytes, i, line);
                    toks.push(tok);
                    i = next;
                }
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if char_literal_len(bytes, i).is_some() {
                    let len = char_literal_len(bytes, i).unwrap_or(1);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        line,
                    });
                    i += len;
                } else {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a number before `..` (range) or a method call
                    // on a literal.
                    if bytes[i] == b'.'
                        && (bytes.get(i + 1) == Some(&b'.')
                            || bytes.get(i + 1).is_some_and(u8::is_ascii_alphabetic))
                    {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    line,
                });
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let (tok, next) = lex_ident(src, bytes, i, line);
                toks.push(tok);
                i = next;
            }
            other => {
                toks.push(Tok {
                    kind: TokKind::Punct(other as char),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn lex_ident(src: &str, bytes: &[u8], start: usize, line: u32) -> (Tok, usize) {
    let mut i = start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    (
        Tok {
            kind: TokKind::Ident(src[start..i].to_string()),
            line,
        },
        i,
    )
}

/// Whether position `i` starts a raw/byte string (`r"`, `r#"`, `br#"`,
/// `b"`), as opposed to an identifier that begins with `r`/`b`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // `b"..."` byte string with no `r`.
    bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"')
}

/// If position `i` (a `'`) starts a char literal, its byte length.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote (handles \n \u{..} etc.).
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                j += 1;
            }
            (bytes.get(j) == Some(&b'\'')).then_some(j + 1 - i)
        }
        _ => {
            // `'x'` — exactly one char then a quote; otherwise lifetime.
            let ch_len = utf8_len(bytes[i + 1]);
            (bytes.get(i + 1 + ch_len) == Some(&b'\'')).then_some(ch_len + 2)
        }
    }
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b < 0xE0 {
        2
    } else if b < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_do_not_leak_tokens() {
        let src = r##"
// a fake .lock() in a comment
fn f<'a>(x: &'a str) {
    let s = "y.lock()"; let c = 'l'; let r = r#"z.lock()"#;
    x.len();
}
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()), "{ids:?}");
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* one\ntwo */\nfn f() {}\n";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ fn");
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokKind::BlockComment(_)))
                .count(),
            1
        );
    }

    #[test]
    fn char_literal_is_not_a_lifetime() {
        let toks = lex("let c = 'x'; fn g<'a>() {}");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokKind::Char))
                .count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokKind::Lifetime))
                .count(),
            1
        );
    }
}
