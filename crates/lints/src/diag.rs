//! Structured diagnostics, mirroring `naiad::analysis` ergonomics
//! (`Diagnostic{code, severity, file:line, message, suggestion}` with
//! rustc-style text and JSON renderings).

/// How serious a finding is. All NSxxxx rules default to [`Severity::Error`]:
/// the tree must lint clean, and justified exceptions are annotated at
/// the site (`// lint-allow(NSxxxx): why`), not downgraded globally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but not certainly wrong.
    Warning,
    /// An invariant violation: fix it or justify it at the site.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable rule codes, one per source rule (DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `NS0001`: un-annotated unbounded channel creation in `runtime/`.
    UnboundedChannel,
    /// `NS0002`: fresh hot-path allocation without `// slab-exempt:`.
    HotPathAlloc,
    /// `NS0003`: nondeterminism source inside deterministic-by-contract
    /// modules (`progress::{protocol,modelcheck}`, `netsim`).
    Nondeterminism,
    /// `NS0004`: panic path (`unwrap`/`expect`/indexing) in `runtime/`.
    PanicPath,
    /// `NS0005`: telemetry counter declared but never merged/surfaced.
    TelemetryConservation,
    /// `NS0006`: lock-order cycle (potential deadlock) in `runtime/`.
    LockOrderCycle,
}

/// Every rule code, in catalog order.
pub const ALL_CODES: [Code; 6] = [
    Code::UnboundedChannel,
    Code::HotPathAlloc,
    Code::Nondeterminism,
    Code::PanicPath,
    Code::TelemetryConservation,
    Code::LockOrderCycle,
];

impl Code {
    /// The stable `NSxxxx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnboundedChannel => "NS0001",
            Code::HotPathAlloc => "NS0002",
            Code::Nondeterminism => "NS0003",
            Code::PanicPath => "NS0004",
            Code::TelemetryConservation => "NS0005",
            Code::LockOrderCycle => "NS0006",
        }
    }

    /// Short rule title (report headers, DESIGN.md §17).
    pub fn title(self) -> &'static str {
        match self {
            Code::UnboundedChannel => "un-annotated unbounded channel",
            Code::HotPathAlloc => "fresh hot-path allocation",
            Code::Nondeterminism => "nondeterminism source",
            Code::PanicPath => "panic path",
            Code::TelemetryConservation => "telemetry counter conservation",
            Code::LockOrderCycle => "lock-order cycle",
        }
    }

    /// Parses `"NS0001"`-style code strings.
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.into_iter().find(|c| c.as_str() == s)
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Root-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    pub suggestion: String,
}

impl Diagnostic {
    /// `error[NS0004]: message` / ` --> file:line` / ` = help: ...`
    pub fn render_text(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}\n  = help: {}\n",
            self.severity.label(),
            self.code.as_str(),
            self.message,
            self.file,
            self.line,
            self.suggestion,
        )
    }

    /// One JSON object (hand-rolled; the workspace has no serde).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suggestion\":\"{}\"}}",
            self.code.as_str(),
            self.severity.label(),
            escape(&self.file),
            self.line,
            escape(&self.message),
            escape(&self.suggestion),
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for code in ALL_CODES {
            assert_eq!(Code::parse(code.as_str()), Some(code));
        }
        assert_eq!(Code::parse("NS9999"), None);
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            code: Code::PanicPath,
            severity: Severity::Error,
            file: "a.rs".into(),
            line: 3,
            message: "call to `unwrap` (\"x\")".into(),
            suggestion: "use get()".into(),
        };
        let json = d.render_json();
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\"line\":3"));
    }
}
