//! Per-file source model: code tokens, comment map, `#[cfg(test)]`
//! regions, function items, and suppression/exemption comment scopes.

use crate::lexer::{lex, Tok, TokKind};

/// One scanned source file.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// Code tokens (comments removed).
    pub toks: Vec<Tok>,
    /// Comment text by starting line.
    pub comments: Vec<(u32, String)>,
    /// Line spans (1-based, inclusive) of `#[cfg(test)]`-gated items.
    pub test_spans: Vec<(u32, u32)>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Line spans suppressed per rule code, from `lint-allow(NSxxxx):`
    /// comments.
    pub allows: Vec<(String, u32, u32)>,
    /// Total lines (for rendering).
    pub line_count: u32,
}

/// One `fn` item: its name and body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{` in `SourceFile::toks`.
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
}

impl SourceFile {
    /// Lexes and indexes `src`.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let all = lex(src);
        let mut toks = Vec::with_capacity(all.len());
        let mut comments = Vec::new();
        for t in all {
            match t.kind {
                TokKind::LineComment(text) | TokKind::BlockComment(text) => {
                    comments.push((t.line, text));
                }
                _ => toks.push(t),
            }
        }
        let line_count = src.lines().count() as u32;
        let test_spans = find_cfg_spans(&toks, |args| args.iter().any(|a| a == "test"));
        let fns = find_fns(&toks);
        let allows = find_allows(&comments, &toks, &fns);
        SourceFile {
            rel: rel.to_string(),
            toks,
            comments,
            test_spans,
            fns,
            allows,
            line_count,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether diagnostics with `code` are suppressed at `line`.
    pub fn allowed(&self, code: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(c, a, b)| c == code && *a <= line && line <= *b)
    }

    /// Whether an exemption marker (e.g. `flow-exempt:`) is attached to
    /// `line`: on the same line, or in the contiguous run of comment
    /// lines immediately above it. Scope-aware replacement for the old
    /// `grep -B4 | awk` gates — attachment follows comment adjacency, not
    /// a fixed window.
    pub fn exempt(&self, marker: &str, line: u32) -> bool {
        let has = |l: u32| {
            self.comments
                .iter()
                .any(|(cl, text)| *cl == l && text.contains(marker))
        };
        if has(line) {
            return true;
        }
        // Walk up through lines that hold only comments (no code token).
        let mut l = line;
        while l > 1 {
            l -= 1;
            let code_here = self.toks.iter().any(|t| t.line == l);
            let comment_here = self.comments.iter().any(|(cl, _)| *cl == l);
            if code_here || !comment_here {
                return false;
            }
            if has(l) {
                return true;
            }
        }
        false
    }

    /// The function item whose body contains token index `ti`, if any
    /// (innermost wins).
    pub fn enclosing_fn(&self, ti: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body_open <= ti && ti <= f.body_close)
            .max_by_key(|f| f.body_open)
    }
}

/// Finds the token index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Line spans of items behind `#[cfg(...)]` attributes whose argument
/// list satisfies `pred` (e.g. contains `test`). Handles `cfg(test)`,
/// `cfg(all(test, loom))`, and attribute-on-`use`/statement forms.
fn find_cfg_spans(toks: &[Tok], pred: impl Fn(&[String]) -> bool) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 4 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
        {
            // Collect idents up to the attribute's closing `]`.
            let mut args = Vec::new();
            let mut j = i + 4;
            let mut depth = 1usize; // inside the `(`
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => depth -= 1,
                    TokKind::Ident(s) => args.push(s.clone()),
                    _ => {}
                }
                j += 1;
            }
            // Skip to past `]`.
            while j < toks.len() && !toks[j].is_punct(']') {
                j += 1;
            }
            j += 1;
            if pred(&args) {
                let start = toks[i].line;
                // Span: to the end of the gated item — the matching brace
                // of its first block, or the first `;` if none comes
                // first.
                let mut k = j;
                let mut end = toks.get(j).map_or(start, |t| t.line);
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        end = toks[matching_brace(toks, k)].line;
                        break;
                    }
                    if toks[k].is_punct(';') {
                        end = toks[k].line;
                        break;
                    }
                    k += 1;
                }
                spans.push((start, end));
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Extracts every `fn` item with a brace body (trait-method declarations
/// without bodies are skipped).
fn find_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks[i + 1].ident() {
                // Find the body `{`, skipping the signature. Generic
                // bounds and where-clauses may contain `{}`? No — only
                // `(`/`<`/`->` forms; the first `{` at signature level
                // opens the body. A `;` first means no body.
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => angle -= 1,
                        TokKind::Punct('(') => paren += 1,
                        TokKind::Punct(')') => paren -= 1,
                        TokKind::Punct('{') if angle <= 0 && paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    fns.push(FnItem {
                        name: name.to_string(),
                        line: toks[i].line,
                        body_open: open,
                        body_close: matching_brace(toks, open),
                    });
                }
            }
        }
        i += 1;
    }
    fns
}

/// Builds suppression spans from `lint-allow(NSxxxx):` comments. A
/// comment directly above an item header (`fn`/`impl`/`mod`/`struct`/
/// `enum`/`trait`, possibly behind `pub`/attributes) suppresses the whole
/// item; otherwise it suppresses its own line and the next code line.
fn find_allows(
    comments: &[(u32, String)],
    toks: &[Tok],
    fns: &[FnItem],
) -> Vec<(String, u32, u32)> {
    let mut allows = Vec::new();
    for (cl, text) in comments {
        let Some(pos) = text.find("lint-allow(") else {
            continue;
        };
        let rest = &text[pos + "lint-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let code = rest[..close].trim().to_string();
        // The next code token at or after this comment's line.
        let next = toks.iter().enumerate().find(|(_, t)| t.line >= *cl);
        let Some((ti, t)) = next else {
            continue;
        };
        // Item-level: does an item header start here? Look through
        // visibility/attribute prefixes on the same statement.
        let mut j = ti;
        let mut item_end = None;
        let mut guard = 0;
        while j < toks.len() && guard < 16 {
            match &toks[j].kind {
                TokKind::Ident(s)
                    if matches!(
                        s.as_str(),
                        "fn" | "impl" | "mod" | "struct" | "enum" | "trait"
                    ) =>
                {
                    // Span to the item's closing brace (or `;`).
                    let mut k = j;
                    while k < toks.len() {
                        if toks[k].is_punct('{') {
                            item_end = Some(toks[matching_brace(toks, k)].line);
                            break;
                        }
                        if toks[k].is_punct(';') {
                            item_end = Some(toks[k].line);
                            break;
                        }
                        k += 1;
                    }
                    break;
                }
                TokKind::Ident(s)
                    if matches!(s.as_str(), "pub" | "crate" | "unsafe" | "const" | "async") =>
                {
                    j += 1;
                }
                TokKind::Punct('(') | TokKind::Punct(')') => j += 1, // pub(crate)
                TokKind::Punct('#') | TokKind::Punct('[') => {
                    // Attribute between comment and item: skip it.
                    while j < toks.len() && !toks[j].is_punct(']') {
                        j += 1;
                    }
                    j += 1;
                }
                _ => break,
            }
            guard += 1;
        }
        let end = match item_end {
            Some(e) => e,
            // Line-level: this line and the next code line (the comment
            // usually sits just above the flagged statement). Cover the
            // whole statement the next token starts.
            None => statement_end_line(toks, ti).max(t.line),
        };
        allows.push((code, *cl, end));
    }
    // A comment inside a function body that is NOT on an item header
    // still frequently wants to cover a multi-line statement; the
    // statement_end_line above handles that. Item-level fn allows also
    // arrive via `fns` when the comment line is just above the fn line.
    let _ = fns;
    allows
}

/// The line where the statement starting at token `ti` ends (`;` or the
/// matching brace of a block it opens, whichever comes first at depth 0).
fn statement_end_line(toks: &[Tok], ti: usize) -> u32 {
    let mut depth = 0i32;
    for t in toks.iter().skip(ti) {
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if depth <= 0 && t.is_punct('}') {
                    return t.line;
                }
            }
            TokKind::Punct(';') if depth <= 0 => return t.line,
            _ => {}
        }
    }
    toks.last().map_or(1, |t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let f = SourceFile::parse(
            "x.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n",
        );
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_all_test_loom_counts_as_test() {
        let f = SourceFile::parse(
            "x.rs",
            "#[cfg(all(test, loom))]\nmod loom_tests {\n    fn b() {}\n}\n",
        );
        assert!(f.in_test(3));
    }

    #[test]
    fn exemption_attaches_through_contiguous_comments_only() {
        let src = "\
fn f() {
    // flow-exempt: reason spans
    // two comment lines
    let x = 1;

    let y = 2;
}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.exempt("flow-exempt:", 4));
        assert!(!f.exempt("flow-exempt:", 6), "blank line breaks attachment");
    }

    #[test]
    fn item_level_allow_covers_the_whole_fn() {
        let src = "\
// lint-allow(NS0004): indices pinned at construction
pub(crate) fn hot(&self) {
    let a = self.buffers[0].len();
    let b = self.buffers[1].len();
}
fn other() { let c = x[0]; }
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("NS0004", 3));
        assert!(f.allowed("NS0004", 4));
        assert!(!f.allowed("NS0004", 6));
    }

    #[test]
    fn line_level_allow_covers_next_statement_only() {
        let src = "\
fn f() {
    let a = x[0];
    // lint-allow(NS0004): checked above
    let b = x[1];
    let c = x[2];
}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allowed("NS0004", 2));
        assert!(f.allowed("NS0004", 4));
        assert!(!f.allowed("NS0004", 5));
    }

    #[test]
    fn fns_are_extracted_with_bodies() {
        let f = SourceFile::parse(
            "x.rs",
            "impl T { fn a(&self) -> u32 { 1 } }\nfn b<X: Ord>(x: X) { drop(x) }\n",
        );
        let names: Vec<_> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
