//! `naiad-lints`: source-level invariant linter for the workspace.
//!
//! A lexer-based analysis (no rustc plumbing, no dependencies) that
//! enforces the repo's cross-cutting invariants as first-class rules
//! (NS0001–NS0006, DESIGN.md §17) instead of the grep/awk gates
//! `scripts/verify.sh` used to carry. Run it with the `naiad-lint-src`
//! binary; suppress a justified site with `// lint-allow(NSxxxx): why`.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{Code, Diagnostic, Severity, ALL_CODES};
pub use source::SourceFile;

/// What to lint.
#[derive(Default)]
pub struct LintConfig {
    /// Restrict to these codes (`--only`); `None` runs the full catalog.
    pub only: Option<Vec<Code>>,
}

impl LintConfig {
    fn wants(&self, code: Code) -> bool {
        match &self.only {
            Some(set) => set.contains(&code),
            None => true,
        }
    }
}

/// Recursively collects and parses every `.rs` file under `root`,
/// skipping build output (`target/`), VCS metadata, and lint fixtures
/// (`fixtures/` directories hold deliberately-failing trees). Paths are
/// returned root-relative with `/` separators, sorted, so runs are
/// deterministic regardless of directory-entry order.
pub fn scan_tree(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&p)?;
        files.push(SourceFile::parse(&rel, &src));
    }
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the rule catalog over already-parsed files.
pub fn lint_files(files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if cfg.wants(Code::UnboundedChannel) {
            rules::ns0001(f, &mut out);
        }
        if cfg.wants(Code::HotPathAlloc) {
            rules::ns0002(f, &mut out);
        }
        if cfg.wants(Code::Nondeterminism) {
            rules::ns0003(f, &mut out);
        }
        if cfg.wants(Code::PanicPath) {
            rules::ns0004(f, &mut out);
        }
    }
    if cfg.wants(Code::TelemetryConservation) {
        rules::telemetry::ns0005(files, &mut out);
    }
    if cfg.wants(Code::LockOrderCycle) {
        rules::locks::ns0006(files, &mut out);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code))
    });
    out
}

/// Scans and lints the tree rooted at `root`.
pub fn lint_tree(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let files = scan_tree(root)?;
    Ok(lint_files(&files, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_filter_restricts_codes() {
        let f = SourceFile::parse(
            "crates/core/src/runtime/x.rs",
            "fn f(v: &[u8]) -> u8 { v[0] }\n",
        );
        let all = lint_files(std::slice::from_ref(&f), &LintConfig::default());
        assert!(all.iter().any(|d| d.code == Code::PanicPath));
        let none = lint_files(
            std::slice::from_ref(&f),
            &LintConfig {
                only: Some(vec![Code::UnboundedChannel]),
            },
        );
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let f = SourceFile::parse(
            "crates/core/src/runtime/x.rs",
            "fn f(v: &[u8]) -> u8 { v[1] + v[0].min(v.iter().copied().max().unwrap()) }\n",
        );
        let a = lint_files(std::slice::from_ref(&f), &LintConfig::default());
        let b = lint_files(std::slice::from_ref(&f), &LintConfig::default());
        let render = |ds: &[Diagnostic]| {
            ds.iter().map(Diagnostic::render_text).collect::<String>()
        };
        assert_eq!(render(&a), render(&b));
        assert!(a.len() >= 3);
    }
}
