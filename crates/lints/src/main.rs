//! `naiad-lint-src` — source-level invariant linter CLI.
//!
//! Mirrors `examples/naiad_lint.rs` ergonomics for the source-rule
//! catalog: structured diagnostics, `--format json`, `--only NSxxxx`,
//! nonzero exit when errors remain. Run from the workspace root (or
//! point `--root` at it); `scripts/verify.sh` and the `lint-src` CI job
//! both call this binary.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use naiad_lints::{lint_tree, Code, LintConfig, Severity, ALL_CODES};

const USAGE: &str = "\
naiad-lint-src: source-level invariant linter (rules NS0001-NS0006)

USAGE:
    naiad-lint-src [OPTIONS]

OPTIONS:
    --root PATH        tree to lint (default: current directory)
    --format FORMAT    text (default) or json
    --only CODES       comma-separated rule codes to run (e.g. NS0004,NS0006)
    --list             print the rule catalog and exit
    --help             print this help

Suppress a justified finding at its site with `// lint-allow(NSxxxx): why`.
Exits 1 if any error-severity diagnostics remain, 2 on usage errors.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut only: Option<Vec<Code>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for code in ALL_CODES {
                    println!("{}  {}", code.as_str(), code.title());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root requires a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => return usage_error("--format must be text or json"),
            },
            "--only" => match args.next() {
                Some(list) => {
                    let mut codes = only.unwrap_or_default();
                    for part in list.split(',') {
                        match Code::parse(part.trim()) {
                            Some(c) => codes.push(c),
                            None => {
                                return usage_error(&format!("unknown rule code `{part}`"));
                            }
                        }
                    }
                    only = Some(codes);
                }
                None => return usage_error("--only requires rule codes"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let diags = match lint_tree(&root, &LintConfig { only }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("naiad-lint-src: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();

    if format == "json" {
        let body: Vec<String> = diags.iter().map(|d| d.render_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for d in &diags {
            println!("{}", d.render_text());
        }
        println!(
            "naiad-lint-src: {} diagnostic{} ({} error{})",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
        );
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("naiad-lint-src: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
