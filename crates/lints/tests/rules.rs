//! Committed trigger/pass fixture pair for every NS rule.
//!
//! The fixture trees under `tests/fixtures/{trigger,pass}/` mirror real
//! workspace paths because every rule is path-gated (`scan_tree` skips
//! directories named `fixtures`, so the trees are invisible to the
//! whole-repo lint but scannable when passed as a root directly). Each
//! trigger file violates exactly one rule; each pass file shows the
//! compliant form — including the marker/`lint-allow` excusal paths —
//! at the same path.

use std::path::PathBuf;

use naiad_lints::{lint_tree, Code, Diagnostic, LintConfig, ALL_CODES};

fn fixture(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(which)
}

fn diags(which: &str, only: Option<Code>) -> Vec<Diagnostic> {
    let cfg = LintConfig {
        only: only.map(|c| vec![c]),
    };
    lint_tree(&fixture(which), &cfg).expect("fixture tree scans")
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::render_text)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn every_rule_fires_on_its_trigger_fixture() {
    for code in ALL_CODES {
        let found = diags("trigger", Some(code));
        assert!(
            !found.is_empty(),
            "{} found nothing in the trigger fixture",
            code.as_str()
        );
        assert!(
            found.iter().all(|d| d.code == code),
            "--only {} leaked other codes:\n{}",
            code.as_str(),
            render(&found)
        );
    }
}

#[test]
fn every_rule_is_silent_on_the_pass_fixture() {
    let found = diags("pass", None);
    assert!(
        found.is_empty(),
        "pass fixture must lint clean, got:\n{}",
        render(&found)
    );
}

#[test]
fn trigger_diagnostics_land_on_the_expected_files() {
    let found = diags("trigger", None);
    let expect = [
        (Code::UnboundedChannel, "crates/core/src/runtime/acks.rs"),
        (Code::HotPathAlloc, "crates/core/src/runtime/channels.rs"),
        (Code::Nondeterminism, "crates/core/src/progress/protocol.rs"),
        (Code::PanicPath, "crates/core/src/runtime/merge.rs"),
        (
            Code::TelemetryConservation,
            "crates/core/src/telemetry/event.rs",
        ),
        (Code::LockOrderCycle, "crates/core/src/runtime/ledger.rs"),
    ];
    for (code, file) in expect {
        assert!(
            found.iter().any(|d| d.code == code && d.file == file),
            "expected {} at {file}, got:\n{}",
            code.as_str(),
            render(&found)
        );
    }
    // The NS0004 fixture has two panic paths (an index and an unwrap);
    // everything else is a single deliberate violation.
    assert_eq!(
        found.len(),
        expect.len() + 1,
        "unexpected extra diagnostics:\n{}",
        render(&found)
    );
}
