//! Regression gate: the workspace's own sources lint clean.
//!
//! This is the in-tree twin of the `naiad-lint-src` verify.sh/CI gate —
//! it fails the ordinary test suite the moment a change reintroduces an
//! unjustified unbounded channel, hot-path allocation, nondeterminism
//! source, runtime panic path, telemetry leak, or lock-order cycle.

use std::path::PathBuf;

use naiad_lints::{lint_tree, Diagnostic, LintConfig};

#[test]
fn workspace_sources_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let found = lint_tree(&root, &LintConfig::default()).expect("workspace scans");
    assert!(
        found.is_empty(),
        "workspace must lint clean, got:\n{}",
        found
            .iter()
            .map(Diagnostic::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
