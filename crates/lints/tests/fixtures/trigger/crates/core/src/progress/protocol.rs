//! NS0003 trigger: a wall-clock read inside a deterministic-by-contract
//! module (the progress protocol must replay bit-identically).

pub fn stamp_frontier(seq: u64) -> (u64, std::time::Instant) {
    (seq, std::time::Instant::now())
}
