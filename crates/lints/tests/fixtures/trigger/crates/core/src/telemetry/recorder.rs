//! Recorder half of the NS0005 trigger: the wildcard arm swallows
//! `TelemetryEvent::BatchDropped` without ever naming it.

use super::event::TelemetryEvent;

pub fn count(ev: &TelemetryEvent) -> &'static str {
    match ev {
        TelemetryEvent::BatchSent => "batch_sent",
        _ => "uncounted",
    }
}
