//! NS0005 trigger: `BatchDropped` is declared but the recorder's match
//! (recorder.rs) never names it, so it would vanish from snapshots.

pub enum TelemetryEvent {
    BatchSent,
    BatchDropped,
}
