//! NS0001 trigger: an unbounded mpsc channel in runtime/ with no
//! flow-control justification attached to the creating statement.

use std::sync::mpsc;

pub fn ack_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}
