//! NS0006 trigger: `post` acquires credits → debits while `audit`
//! acquires debits → credits, a classic two-lock ordering cycle.

use std::sync::{Mutex, PoisonError};

pub struct Ledger {
    credits: Mutex<u64>,
    debits: Mutex<u64>,
}

impl Ledger {
    pub fn post(&self) -> u64 {
        let c = self.credits.lock().unwrap_or_else(PoisonError::into_inner);
        let d = self.debits.lock().unwrap_or_else(PoisonError::into_inner);
        *c + *d
    }

    pub fn audit(&self) -> u64 {
        let d = self.debits.lock().unwrap_or_else(PoisonError::into_inner);
        let c = self.credits.lock().unwrap_or_else(PoisonError::into_inner);
        *c - *d
    }
}
