//! NS0002 trigger: a fresh Vec allocation inside the zero-copy
//! hot-path module, without a slab-exempt justification.

pub fn stage_batch(payload: &[u8]) -> Vec<u8> {
    let mut staged = Vec::with_capacity(payload.len());
    staged.extend_from_slice(payload);
    staged
}
