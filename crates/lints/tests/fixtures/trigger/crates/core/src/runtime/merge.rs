//! NS0004 trigger: implicit panic paths (`unwrap` and bare indexing)
//! in runtime/ outside #[cfg(test)].

pub fn head_and_tail(values: &[u64]) -> (u64, u64) {
    let head = values[0];
    (head, *values.last().unwrap())
}
