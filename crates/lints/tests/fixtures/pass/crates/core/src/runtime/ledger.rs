//! NS0006 pass: both entry points acquire credits → debits, so the
//! order graph is acyclic.

use std::sync::{Mutex, PoisonError};

pub struct Ledger {
    credits: Mutex<u64>,
    debits: Mutex<u64>,
}

impl Ledger {
    pub fn post(&self) -> u64 {
        let c = self.credits.lock().unwrap_or_else(PoisonError::into_inner);
        let d = self.debits.lock().unwrap_or_else(PoisonError::into_inner);
        *c + *d
    }

    pub fn audit(&self) -> u64 {
        let c = self.credits.lock().unwrap_or_else(PoisonError::into_inner);
        let d = self.debits.lock().unwrap_or_else(PoisonError::into_inner);
        *c - *d
    }
}
