//! NS0004 pass: panic-free accessors, plus one justified index behind a
//! lint-allow whose reason the rule records.

pub fn head_and_tail(values: &[u64]) -> (u64, u64) {
    let head = values.first().copied().unwrap_or_default();
    let tail = values.last().copied().unwrap_or_default();
    (head, tail)
}

pub fn fixed_window(values: &[u64; 4]) -> u64 {
    // lint-allow(NS0004): the parameter type fixes the length at four.
    values[3]
}
