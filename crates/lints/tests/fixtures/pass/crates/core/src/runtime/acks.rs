//! NS0001 pass: the same channel, excused by a flow-exempt marker on
//! the creating statement (comment-adjacency attachment).

use std::sync::mpsc;

pub fn ack_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    // flow-exempt: acks are one-per-epoch, bounded by the epoch fence
    // cadence; crediting them would deadlock the fence itself.
    mpsc::channel()
}
