//! NS0003 pass: the deterministic module stamps with logical time only;
//! no wall clock, no hasher randomness, no hash-ordered iteration.

pub fn stamp_frontier(seq: u64) -> u64 {
    seq.wrapping_add(1)
}
