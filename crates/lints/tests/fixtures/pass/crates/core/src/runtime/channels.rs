//! NS0002 pass: the allocation carries a slab-exempt justification, so
//! the hot-path rule attaches the marker and stays quiet.

pub fn stage_batch(payload: &[u8]) -> Vec<u8> {
    // slab-exempt: one-time construction of the spare table at startup,
    // not a per-record or per-batch allocation.
    let mut staged = Vec::with_capacity(payload.len());
    staged.extend_from_slice(payload);
    staged
}
