//! NS0005 pass: every variant declared here is named by the recorder's
//! match in recorder.rs.

pub enum TelemetryEvent {
    BatchSent,
    BatchDropped,
}
