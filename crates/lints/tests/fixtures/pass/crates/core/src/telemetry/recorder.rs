//! Recorder half of the NS0005 pass: the match is exhaustive by name,
//! so every event reaches the snapshot.

use super::event::TelemetryEvent;

pub fn count(ev: &TelemetryEvent) -> &'static str {
    match ev {
        TelemetryEvent::BatchSent => "batch_sent",
        TelemetryEvent::BatchDropped => "batch_dropped",
    }
}
