//! Blocking keyed operators: `group_by` (LINQ `GroupBy`), `reduce`,
//! `count`, and `distinct_count` (the Figure 4 vertex).
//!
//! These buffer records per timestamp and emit from `OnNotify`, producing
//! exactly one output per key per completed time — the coordination-using
//! style §2.4 recommends at the boundary of composable sub-computations.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

use crate::hash_of;

/// A key type: hashable, comparable, exchangeable.
pub trait ExchangeKey: ExchangeData + Hash + Eq {}
impl<K: ExchangeData + Hash + Eq> ExchangeKey for K {}

/// Keyed blocking operators over `(key, value)` streams.
pub trait KeyedOps<K: ExchangeKey, V: ExchangeData> {
    /// Collates values by key within each time, then applies `reduce` to
    /// each group once the time completes (LINQ `GroupBy`).
    fn group_by<R: ExchangeData, I: IntoIterator<Item = R>>(
        &self,
        reduce: impl FnMut(&K, Vec<V>) -> I + 'static,
    ) -> Stream<R>;

    /// Folds each key's values within each time, emitting `(key, fold)`
    /// when the time completes.
    fn reduce<A: ExchangeData>(
        &self,
        init: impl Fn() -> A + 'static,
        fold: impl FnMut(&K, &mut A, V) + 'static,
    ) -> Stream<(K, A)>;

    /// Counts occurrences per key within each time.
    fn count(&self) -> Stream<(K, u64)>;
}

impl<K: ExchangeKey, V: ExchangeData> KeyedOps<K, V> for Stream<(K, V)> {
    fn group_by<R: ExchangeData, I: IntoIterator<Item = R>>(
        &self,
        mut reduce: impl FnMut(&K, Vec<V>) -> I + 'static,
    ) -> Stream<R> {
        self.unary_notify(
            Pact::exchange(|(k, _): &(K, V)| hash_of(k)),
            "GroupBy",
            move |_info| {
                let buffers: Rc<RefCell<HashMap<Timestamp, HashMap<K, Vec<V>>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_buffers = buffers.clone();
                (
                    move |input: &mut InputPort<(K, V)>,
                          _output: &mut OutputPort<R>,
                          notify: &Notify| {
                        let mut buffers = recv_buffers.borrow_mut();
                        input.for_each(|time, data| {
                            let groups = buffers.entry(time).or_insert_with(|| {
                                notify.notify_at(time);
                                HashMap::new()
                            });
                            for (k, v) in data {
                                groups.entry(k).or_default().push(v);
                            }
                        });
                    },
                    move |time: Timestamp, output: &mut OutputPort<R>, _notify: &Notify| {
                        if let Some(groups) = buffers.borrow_mut().remove(&time) {
                            let mut session = output.session(time);
                            for (k, vs) in groups {
                                session.give_iterator(reduce(&k, vs));
                            }
                        }
                    },
                )
            },
        )
    }

    fn reduce<A: ExchangeData>(
        &self,
        init: impl Fn() -> A + 'static,
        mut fold: impl FnMut(&K, &mut A, V) + 'static,
    ) -> Stream<(K, A)> {
        // Unlike group_by, reduce folds eagerly on receipt, keeping one
        // accumulator per key instead of buffering every value.
        self.unary_notify(
            Pact::exchange(|(k, _): &(K, V)| hash_of(k)),
            "Reduce",
            move |_info| {
                let accs: Rc<RefCell<HashMap<Timestamp, HashMap<K, A>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_accs = accs.clone();
                (
                    move |input: &mut InputPort<(K, V)>,
                          _output: &mut OutputPort<(K, A)>,
                          notify: &Notify| {
                        let mut accs = recv_accs.borrow_mut();
                        input.for_each(|time, data| {
                            let per_time = accs.entry(time).or_insert_with(|| {
                                notify.notify_at(time);
                                HashMap::new()
                            });
                            for (k, v) in data {
                                let acc = per_time.entry(k.clone()).or_insert_with(&init);
                                fold(&k, acc, v);
                            }
                        });
                    },
                    move |time: Timestamp, output: &mut OutputPort<(K, A)>, _notify: &Notify| {
                        if let Some(per_time) = accs.borrow_mut().remove(&time) {
                            output.session(time).give_iterator(per_time);
                        }
                    },
                )
            },
        )
    }

    fn count(&self) -> Stream<(K, u64)> {
        self.reduce(|| 0u64, |_k, acc, _v| *acc += 1)
    }
}

/// The Figure 4 vertex: one input, two conceptual outputs — distinct
/// records as soon as they are seen, per-record counts once the time is
/// complete.
pub trait DistinctCountOps<D: ExchangeData> {
    /// Returns `(distinct, counts)` streams.
    fn distinct_count(&self) -> (Stream<D>, Stream<(D, u64)>);
}

impl<D: ExchangeData + Hash + Eq> DistinctCountOps<D> for Stream<D> {
    fn distinct_count(&self) -> (Stream<D>, Stream<(D, u64)>) {
        // The paper's vertex has two outputs; we realize it as one stage
        // emitting an Either-style tag, split by two filters downstream —
        // equivalent dataflow, same notification structure.
        let tagged: Stream<(D, u64)> = self.unary_notify(
            Pact::exchange(|d: &D| hash_of(d)),
            "DistinctCount",
            |_info| {
                let counts: Rc<RefCell<HashMap<Timestamp, HashMap<D, u64>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_counts = counts.clone();
                (
                    move |input: &mut InputPort<D>,
                          output: &mut OutputPort<(D, u64)>,
                          notify: &Notify| {
                        let mut counts = recv_counts.borrow_mut();
                        input.for_each(|time, data| {
                            let per_time = counts.entry(time).or_insert_with(|| {
                                notify.notify_at(time);
                                HashMap::new()
                            });
                            let mut session = output.session(time);
                            for record in data {
                                let n = per_time.entry(record.clone()).or_insert(0);
                                if *n == 0 {
                                    // Output 1: distinct records may be sent
                                    // as soon as they are seen (count tag 0).
                                    session.give((record, 0));
                                }
                                *n += 1;
                            }
                        });
                    },
                    move |time: Timestamp, output: &mut OutputPort<(D, u64)>, _notify: &Notify| {
                        // Output 2: counts must wait until all records
                        // bearing this time have been received.
                        if let Some(per_time) = counts.borrow_mut().remove(&time) {
                            output.session(time).give_iterator(per_time);
                        }
                    },
                )
            },
        );
        let distinct = tagged.unary(Pact::Pipeline, "DistinctPart", |_info| {
            |input: &mut InputPort<(D, u64)>, output: &mut OutputPort<D>| {
                input.for_each(|time, data| {
                    output
                        .session(time)
                        .give_iterator(data.into_iter().filter(|(_, n)| *n == 0).map(|(d, _)| d));
                });
            }
        });
        let counts = tagged.unary(Pact::Pipeline, "CountPart", |_info| {
            |input: &mut InputPort<(D, u64)>, output: &mut OutputPort<(D, u64)>| {
                input.for_each(|time, data| {
                    output
                        .session(time)
                        .give_iterator(data.into_iter().filter(|(_, n)| *n > 0));
                });
            }
        });
        (distinct, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    fn kv(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn count_counts_per_key_per_epoch() {
        let out = run_epochs(
            2,
            vec![kv(&[("a", 0), ("b", 0), ("a", 0)]), kv(&[("a", 0)])],
            |s| s.count(),
        );
        assert_eq!(
            out,
            vec![
                (0, ("a".to_string(), 2)),
                (0, ("b".to_string(), 1)),
                (1, ("a".to_string(), 1)),
            ]
        );
    }

    #[test]
    fn group_by_collects_all_values() {
        let out = run_epochs(2, vec![kv(&[("x", 1), ("x", 2), ("y", 5)])], |s| {
            s.group_by(|k: &String, mut vs: Vec<u64>| {
                vs.sort_unstable();
                vec![(k.clone(), vs)]
            })
        });
        assert_eq!(
            out,
            vec![
                (0, ("x".to_string(), vec![1, 2])),
                (0, ("y".to_string(), vec![5])),
            ]
        );
    }

    #[test]
    fn reduce_folds_eagerly() {
        let out = run_epochs(2, vec![kv(&[("s", 3), ("s", 4), ("t", 10)])], |s| {
            s.reduce(|| 0u64, |_k, acc, v| *acc += v)
        });
        assert_eq!(
            out,
            vec![(0, ("s".to_string(), 7)), (0, ("t".to_string(), 10))]
        );
    }

    #[test]
    fn distinct_count_splits_outputs() {
        let out = run_epochs(1, vec![vec![7u64, 7, 8]], |s| {
            let (distinct, counts) = s.distinct_count();
            use crate::MapOps;
            let d = distinct.map(|x| (x, 0u64));
            use crate::ConcatOps;
            d.concat(&counts)
        });
        assert_eq!(
            out,
            vec![(0, (7, 0)), (0, (7, 2)), (0, (8, 0)), (0, (8, 1))]
        );
    }
}
