//! Stream merging: `concat` forwards records from both inputs immediately
//! (the specialized, coordination-free implementation of §4.2).

use naiad::dataflow::ops::concatenate;
use naiad::Stream;
use naiad_wire::ExchangeData;

/// Merging operators.
pub trait ConcatOps<D: ExchangeData> {
    /// Merges two streams, forwarding records from both as they arrive.
    fn concat(&self, other: &Stream<D>) -> Stream<D>;

    /// Merges any number of streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    fn concat_many(streams: Vec<Stream<D>>) -> Stream<D>;
}

impl<D: ExchangeData> ConcatOps<D> for Stream<D> {
    fn concat(&self, other: &Stream<D>) -> Stream<D> {
        concatenate(self, other)
    }

    fn concat_many(streams: Vec<Stream<D>>) -> Stream<D> {
        let mut iter = streams.into_iter();
        let first = iter
            .next()
            .expect("concat_many requires at least one stream");
        iter.fold(first, |acc, s| concatenate(&acc, &s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;
    use crate::MapOps;

    #[test]
    fn concat_merges_both_inputs() {
        let out = run_epochs(1, vec![vec![1u64, 2]], |s| {
            let tens = s.map(|x| x + 10);
            s.concat(&tens)
        });
        let values: Vec<u64> = out.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 11, 12]);
    }

    #[test]
    fn concat_many_folds() {
        let out = run_epochs(1, vec![vec![1u64]], |s| {
            Stream::concat_many(vec![s.clone(), s.map(|x| x + 1), s.map(|x| x + 2)])
        });
        let values: Vec<u64> = out.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 3]);
    }
}
