//! Monotonic aggregation (BloomL-style, §4.2): emit a key's aggregate the
//! moment it improves, with no coordination.
//!
//! Inside a loop this allows fast uncoordinated iteration at the cost of
//! emitting intermediate values (§2.4's trade-off); compose with a
//! blocking operator at the loop boundary when a single final value is
//! needed.

use std::collections::HashMap;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;
use naiad_wire::ExchangeData;

use crate::hash_of;
use crate::keyed::ExchangeKey;

/// Monotonic aggregation operators.
pub trait AggregateOps<K: ExchangeKey, V: ExchangeData> {
    /// Keeps one aggregate per key across *all* times; `improve` merges a
    /// new value into the aggregate and reports whether it changed. Emits
    /// `(key, aggregate)` on every improvement.
    fn aggregate_monotonic<A: ExchangeData>(
        &self,
        init: impl Fn(&V) -> A + 'static,
        improve: impl FnMut(&mut A, V) -> bool + 'static,
    ) -> Stream<(K, A)>;

    /// Monotonic minimum per key.
    fn min_monotonic(&self) -> Stream<(K, V)>
    where
        V: Ord;
}

impl<K: ExchangeKey, V: ExchangeData> AggregateOps<K, V> for Stream<(K, V)> {
    fn aggregate_monotonic<A: ExchangeData>(
        &self,
        init: impl Fn(&V) -> A + 'static,
        mut improve: impl FnMut(&mut A, V) -> bool + 'static,
    ) -> Stream<(K, A)> {
        self.unary(
            Pact::exchange(|(k, _): &(K, V)| hash_of(k)),
            "AggregateMonotonic",
            move |info| {
                let aggregates: std::rc::Rc<std::cell::RefCell<HashMap<K, A>>> =
                    std::rc::Rc::new(std::cell::RefCell::new(HashMap::new()));
                // Cross-time state, keyed by the exchange hash above: what
                // checkpoints capture and elastic rescales re-partition.
                info.register_keyed_state(aggregates.clone(), |k: &K| hash_of(k));
                move |input: &mut InputPort<(K, V)>, output: &mut OutputPort<(K, A)>| {
                    let mut aggregates = aggregates.borrow_mut();
                    input.for_each(|time, data| {
                        let mut session = output.session(time);
                        for (k, v) in data {
                            match aggregates.get_mut(&k) {
                                None => {
                                    let a = init(&v);
                                    aggregates.insert(k.clone(), a.clone());
                                    session.give((k, a));
                                }
                                Some(a) => {
                                    if improve(a, v) {
                                        session.give((k.clone(), a.clone()));
                                    }
                                }
                            }
                        }
                    });
                }
            },
        )
    }

    fn min_monotonic(&self) -> Stream<(K, V)>
    where
        V: Ord,
    {
        self.aggregate_monotonic(
            |v| v.clone(),
            |a, v| {
                if v < *a {
                    *a = v;
                    true
                } else {
                    false
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    #[test]
    fn min_emits_only_improvements() {
        let out = run_epochs(1, vec![vec![(1u64, 5u64), (1, 7), (1, 3), (1, 4)]], |s| {
            s.min_monotonic()
        });
        // 5 first seen, 7 ignored, 3 improves, 4 ignored.
        assert_eq!(out, vec![(0, (1, 3)), (0, (1, 5))]);
    }

    #[test]
    fn aggregates_persist_across_epochs() {
        let out = run_epochs(
            2,
            vec![vec![(1u64, 5u64)], vec![(1, 9)], vec![(1, 2)]],
            |s| s.min_monotonic(),
        );
        // Epoch 1's 9 does not improve on 5; epoch 2's 2 does.
        assert_eq!(out, vec![(0, (1, 5)), (2, (1, 2))]);
    }
}
