//! Epoch-based windows: tumbling and sliding aggregates over streams.
//!
//! The paper's streaming applications (§6.3–§6.4) aggregate per epoch;
//! windowing generalizes that to aggregates over *ranges* of epochs, using
//! the same notification machinery: a window's result is emitted at its
//! closing epoch, when the frontier guarantees every contributing epoch is
//! complete. (The paper notes Naiad can even express sliding-window
//! connected components; these operators are the keyed-aggregate
//! building blocks of that style.)

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

use crate::hash_of;
use crate::keyed::ExchangeKey;

/// Windowed aggregation over `(key, value)` streams at the top level.
///
/// Windows are measured in epochs. Results for a window are emitted at
/// its last epoch; epochs with no records for any key advance windows only
/// once a later data-bearing epoch closes (windows are data-driven, like
/// the rest of the dataflow).
pub trait WindowOps<K: ExchangeKey, V: ExchangeData> {
    /// Sums `fold`-ed values per key over consecutive disjoint windows of
    /// `width` epochs: window `w` covers epochs `[w·width, (w+1)·width)`,
    /// and `(key, w, aggregate)` is emitted at the window's final epoch.
    fn tumbling_fold<A: ExchangeData>(
        &self,
        width: u64,
        init: impl Fn() -> A + 'static,
        fold: impl FnMut(&mut A, V) + 'static,
    ) -> Stream<(K, u64, A)>;

    /// Per-epoch counts per key over the trailing `width` epochs:
    /// `(key, count)` emitted at every data-bearing epoch `e`, counting
    /// records with epochs in `(e − width, e]`.
    fn sliding_count(&self, width: u64) -> Stream<(K, u64)>;
}

impl<K: ExchangeKey, V: ExchangeData> WindowOps<K, V> for Stream<(K, V)> {
    fn tumbling_fold<A: ExchangeData>(
        &self,
        width: u64,
        init: impl Fn() -> A + 'static,
        mut fold: impl FnMut(&mut A, V) + 'static,
    ) -> Stream<(K, u64, A)> {
        assert!(width > 0, "window width must be positive");
        self.unary_notify(
            Pact::exchange(|(k, _): &(K, V)| hash_of(k)),
            "TumblingFold",
            move |_info| {
                // Partial aggregates per window per key, plus the set of
                // epochs we asked to be notified at (window closers).
                let state: Rc<RefCell<HashMap<u64, HashMap<K, A>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_state = state.clone();
                (
                    move |input: &mut InputPort<(K, V)>,
                          _output: &mut OutputPort<(K, u64, A)>,
                          notify: &Notify| {
                        let mut state = recv_state.borrow_mut();
                        input.for_each(|time, data| {
                            let window = time.epoch / width;
                            let close = window * width + width - 1;
                            state.entry(window).or_insert_with(|| {
                                // Ask to run when the window's last epoch
                                // completes.
                                notify.notify_at(Timestamp::new(close));
                                HashMap::new()
                            });
                            let per_key = state.get_mut(&window).expect("just inserted");
                            for (k, v) in data {
                                let acc = per_key.entry(k).or_insert_with(&init);
                                fold(acc, v);
                            }
                        });
                    },
                    move |time: Timestamp,
                          output: &mut OutputPort<(K, u64, A)>,
                          _notify: &Notify| {
                        let window = time.epoch / width;
                        if let Some(per_key) = state.borrow_mut().remove(&window) {
                            let mut session = output.session(time);
                            for (k, acc) in per_key {
                                session.give((k, window, acc));
                            }
                        }
                    },
                )
            },
        )
    }

    fn sliding_count(&self, width: u64) -> Stream<(K, u64)> {
        assert!(width > 0, "window width must be positive");
        self.unary_notify(
            Pact::exchange(|(k, _): &(K, V)| hash_of(k)),
            "SlidingCount",
            move |_info| {
                let state: Rc<RefCell<HashMap<u64, HashMap<K, u64>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_state = state.clone();
                (
                    move |input: &mut InputPort<(K, V)>,
                          _output: &mut OutputPort<(K, u64)>,
                          notify: &Notify| {
                        let mut state = recv_state.borrow_mut();
                        input.for_each(|time, data| {
                            state.entry(time.epoch).or_insert_with(|| {
                                notify.notify_at(time);
                                HashMap::new()
                            });
                            let per_key = state.get_mut(&time.epoch).expect("just inserted");
                            for (k, _v) in data {
                                *per_key.entry(k).or_insert(0) += 1;
                            }
                        });
                    },
                    move |time: Timestamp, output: &mut OutputPort<(K, u64)>, _n: &Notify| {
                        let state = state.borrow_mut();
                        let from = time.epoch.saturating_sub(width - 1);
                        let mut totals: HashMap<K, u64> = HashMap::new();
                        for (epoch, per_key) in state.iter() {
                            if (from..=time.epoch).contains(epoch) {
                                for (k, n) in per_key {
                                    *totals.entry(k.clone()).or_insert(0) += n;
                                }
                            }
                        }
                        // Epochs older than any future window could be
                        // purged here; kept simple since widths are small.
                        output.session(time).give_iterator(totals);
                    },
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    #[test]
    fn tumbling_folds_disjoint_windows() {
        // Width 2: epochs {0,1} → window 0, {2,3} → window 1.
        let out = run_epochs(
            2,
            vec![
                vec![(1u64, 5u64)],
                vec![(1, 7), (2, 1)],
                vec![(1, 100)],
                vec![],
            ],
            |s| s.tumbling_fold(2, || 0u64, |acc, v| *acc += v),
        );
        let mut rows: Vec<(u64, u64, u64)> = out.into_iter().map(|(_, r)| r).collect();
        rows.sort();
        assert_eq!(rows, vec![(1, 0, 12), (1, 1, 100), (2, 0, 1)]);
    }

    #[test]
    fn sliding_counts_trailing_epochs() {
        let out = run_epochs(
            1,
            vec![vec![(9u64, ())], vec![(9, ()), (9, ())], vec![(9, ())]],
            |s| s.sliding_count(2),
        );
        // Epoch 0: 1; epoch 1: 1+2 = 3; epoch 2: 2+1 = 3.
        assert_eq!(out, vec![(0, (9, 1)), (1, (9, 3)), (2, (9, 3))]);
    }

    #[test]
    fn windows_are_keyed() {
        // Single worker: windows are evaluated at data-bearing epochs of
        // the worker's whole partition, so key 2's trailing count appears
        // at epoch 1 even though only key 1 has epoch-1 records.
        let out = run_epochs(1, vec![vec![(1u64, ()), (2u64, ())], vec![(1, ())]], |s| {
            s.sliding_count(2)
        });
        let mut rows: Vec<(u64, (u64, u64))> = out;
        rows.sort();
        assert_eq!(
            rows,
            vec![(0, (1, 1)), (0, (2, 1)), (1, (1, 2)), (1, (2, 1))]
        );
    }
}
