//! Repartitioning operators: explicit exchange and broadcast.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;
use naiad_wire::ExchangeData;

/// Operators that move records between workers without transforming them.
pub trait ExchangeOps<D: ExchangeData> {
    /// Routes each record to the worker selected by `route(record) mod
    /// peers` (§3.1's partitioning function).
    fn exchange(&self, route: impl Fn(&D) -> u64 + 'static) -> Stream<D>;

    /// Delivers a copy of every record to every worker.
    fn broadcast(&self) -> Stream<D>;
}

impl<D: ExchangeData> ExchangeOps<D> for Stream<D> {
    fn exchange(&self, route: impl Fn(&D) -> u64 + 'static) -> Stream<D> {
        forward(self, Pact::exchange(route), "Exchange")
    }

    fn broadcast(&self) -> Stream<D> {
        forward(self, Pact::Broadcast, "Broadcast")
    }
}

fn forward<D: ExchangeData>(stream: &Stream<D>, pact: Pact<D>, name: &str) -> Stream<D> {
    stream.unary(pact, name, |_info| {
        |input: &mut InputPort<D>, output: &mut OutputPort<D>| {
            input.for_each_batch(|time, data| output.session(time).give_container(data));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;
    use crate::MapOps;

    #[test]
    fn exchange_preserves_records() {
        let out = run_epochs(3, vec![(0..30u64).collect()], |s| s.exchange(|x| *x));
        let values: Vec<u64> = out.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_duplicates_per_worker() {
        let out = run_epochs(3, vec![vec![7u64]], |s| s.broadcast().map(|x| x));
        assert_eq!(out.len(), 3, "one copy per worker");
        assert!(out.iter().all(|&(e, v)| e == 0 && v == 7));
    }
}
