//! Further relational operators in the LINQ style (§4.2): `cogroup`,
//! `semijoin`, `antijoin`, `top_k`, and numeric folds.
//!
//! Like `group_by`, these are blocking operators: they buffer per time and
//! emit once from `OnNotify`, giving the one-value-per-time guarantee that
//! makes them composable at sub-computation boundaries (§2.4).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

use crate::hash_of;
use crate::keyed::ExchangeKey;

/// Relational operators over `(key, value)` streams.
pub trait RelationalOps<K: ExchangeKey, V1: ExchangeData> {
    /// Pairs each key's full value lists from both inputs once the time
    /// completes: `reduce(key, lefts, rights)` runs exactly once per key
    /// appearing on either side.
    fn cogroup<V2: ExchangeData, R: ExchangeData, I: IntoIterator<Item = R>>(
        &self,
        other: &Stream<(K, V2)>,
        reduce: impl FnMut(&K, Vec<V1>, Vec<V2>) -> I + 'static,
    ) -> Stream<R>;

    /// Keeps `(k, v)` records whose key appears in `keys` at the same
    /// time.
    fn semijoin(&self, keys: &Stream<K>) -> Stream<(K, V1)>;

    /// Keeps `(k, v)` records whose key does *not* appear in `keys` at
    /// the same time.
    fn antijoin(&self, keys: &Stream<K>) -> Stream<(K, V1)>;

    /// The `k` largest values per key per time, descending.
    fn top_k(&self, k: usize) -> Stream<(K, Vec<V1>)>
    where
        V1: Ord;
}

impl<K: ExchangeKey, V1: ExchangeData> RelationalOps<K, V1> for Stream<(K, V1)> {
    fn cogroup<V2: ExchangeData, R: ExchangeData, I: IntoIterator<Item = R>>(
        &self,
        other: &Stream<(K, V2)>,
        mut reduce: impl FnMut(&K, Vec<V1>, Vec<V2>) -> I + 'static,
    ) -> Stream<R> {
        type Sides<K, V1, V2> = (HashMap<K, Vec<V1>>, HashMap<K, Vec<V2>>);
        self.binary_notify(
            other,
            Pact::exchange(|(k, _): &(K, V1)| hash_of(k)),
            Pact::exchange(|(k, _): &(K, V2)| hash_of(k)),
            "CoGroup",
            move |_info| {
                let state: Rc<RefCell<HashMap<Timestamp, Sides<K, V1, V2>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_state = state.clone();
                (
                    move |left: &mut InputPort<(K, V1)>,
                          right: &mut InputPort<(K, V2)>,
                          _output: &mut OutputPort<R>,
                          notify: &Notify| {
                        let mut state = recv_state.borrow_mut();
                        left.for_each(|time, data| {
                            let entry = state.entry(time).or_insert_with(|| {
                                notify.notify_at(time);
                                Default::default()
                            });
                            for (k, v) in data {
                                entry.0.entry(k).or_default().push(v);
                            }
                        });
                        right.for_each(|time, data| {
                            let entry = state.entry(time).or_insert_with(|| {
                                notify.notify_at(time);
                                Default::default()
                            });
                            for (k, v) in data {
                                entry.1.entry(k).or_default().push(v);
                            }
                        });
                    },
                    move |time: Timestamp, output: &mut OutputPort<R>, _notify: &Notify| {
                        if let Some((mut lefts, mut rights)) = state.borrow_mut().remove(&time) {
                            let keys: HashSet<K> =
                                lefts.keys().chain(rights.keys()).cloned().collect();
                            let mut session = output.session(time);
                            for k in keys {
                                let l = lefts.remove(&k).unwrap_or_default();
                                let r = rights.remove(&k).unwrap_or_default();
                                session.give_iterator(reduce(&k, l, r));
                            }
                        }
                    },
                )
            },
        )
    }

    fn semijoin(&self, keys: &Stream<K>) -> Stream<(K, V1)> {
        let tagged = keys.clone();
        self.cogroup(
            &key_units(&tagged),
            |k: &K, lefts: Vec<V1>, rights: Vec<()>| {
                let keep = !rights.is_empty();
                let k = k.clone();
                lefts
                    .into_iter()
                    .filter(move |_| keep)
                    .map(move |v| (k.clone(), v))
                    .collect::<Vec<_>>()
            },
        )
    }

    fn antijoin(&self, keys: &Stream<K>) -> Stream<(K, V1)> {
        let tagged = keys.clone();
        self.cogroup(
            &key_units(&tagged),
            |k: &K, lefts: Vec<V1>, rights: Vec<()>| {
                let keep = rights.is_empty();
                let k = k.clone();
                lefts
                    .into_iter()
                    .filter(move |_| keep)
                    .map(move |v| (k.clone(), v))
                    .collect::<Vec<_>>()
            },
        )
    }

    fn top_k(&self, k: usize) -> Stream<(K, Vec<V1>)>
    where
        V1: Ord,
    {
        use crate::keyed::KeyedOps;
        self.group_by(move |key: &K, mut values: Vec<V1>| {
            values.sort_unstable_by(|a, b| b.cmp(a));
            values.truncate(k);
            vec![(key.clone(), values)]
        })
    }
}

fn key_units<K: ExchangeKey>(keys: &Stream<K>) -> Stream<(K, ())> {
    use crate::map::MapOps;
    keys.map(|k| (k, ()))
}

/// Numeric folds over unkeyed streams.
pub trait NumericOps {
    /// Per-epoch sum, at one worker.
    fn sum(&self) -> Stream<f64>;
    /// Per-epoch arithmetic mean, at one worker.
    fn mean(&self) -> Stream<f64>;
}

impl NumericOps for Stream<f64> {
    fn sum(&self) -> Stream<f64> {
        use crate::reduction::ReductionOps;
        self.fold_all(|| 0.0f64, |acc, x| *acc += x)
    }

    fn mean(&self) -> Stream<f64> {
        use crate::map::MapOps;
        use crate::reduction::ReductionOps;
        self.fold_all(
            || (0.0f64, 0u64),
            |acc, x| {
                acc.0 += x;
                acc.1 += 1;
            },
        )
        .map(|(sum, n)| if n == 0 { 0.0 } else { sum / n as f64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    fn kv(pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        pairs.to_vec()
    }

    #[test]
    fn cogroup_sees_both_sides_and_absent_sides() {
        let out = run_epochs(2, vec![kv(&[(1, 10), (1, 11), (2, 20)])], |s| {
            use crate::map::MapOps;
            let rights = s.filter_map(|(k, v)| (k == 1).then_some((k, v + 100)));
            s.cogroup(&rights, |k, lefts, rights| {
                vec![(*k, lefts.len() as u64, rights.len() as u64)]
            })
        });
        let mut rows: Vec<(u64, u64, u64)> = out.into_iter().map(|(_, r)| r).collect();
        rows.sort();
        assert_eq!(rows, vec![(1, 2, 2), (2, 1, 0)]);
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let out = run_epochs(2, vec![kv(&[(1, 10), (2, 20), (3, 30)])], |s| {
            use crate::map::MapOps;
            let keys = s.filter_map(|(k, _)| (k != 2).then_some(k));
            let semi = s.semijoin(&keys).map(|(k, v)| (k, v, true));
            let anti = s.antijoin(&keys).map(|(k, v)| (k, v, false));
            use crate::concat::ConcatOps;
            semi.concat(&anti)
        });
        let mut rows: Vec<(u64, u64, bool)> = out.into_iter().map(|(_, r)| r).collect();
        rows.sort();
        assert_eq!(rows, vec![(1, 10, true), (2, 20, false), (3, 30, true)]);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let out = run_epochs(
            1,
            vec![kv(&[(7, 3), (7, 9), (7, 1), (7, 9), (8, 2)])],
            |s| s.top_k(2),
        );
        let mut rows: Vec<(u64, Vec<u64>)> = out.into_iter().map(|(_, r)| r).collect();
        rows.sort();
        assert_eq!(rows, vec![(7, vec![9, 9]), (8, vec![2])]);
    }

    #[test]
    fn sum_and_mean_fold_per_epoch() {
        // run_epochs sorts outputs, so emit tenths as integers.
        let out = run_epochs(3, vec![vec![1.0f64, 2.0, 3.0], vec![10.0]], |s| {
            use crate::concat::ConcatOps;
            use crate::map::MapOps;
            s.sum().concat(&s.mean()).map(|x| (x * 10.0).round() as u64)
        });
        let epoch0: Vec<u64> = out
            .iter()
            .filter(|(e, _)| *e == 0)
            .map(|(_, v)| *v)
            .collect();
        assert!(epoch0.contains(&60) && epoch0.contains(&20), "{epoch0:?}");
        let epoch1: Vec<u64> = out
            .iter()
            .filter(|(e, _)| *e == 1)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(epoch1, vec![100, 100]);
    }
}
