//! `distinct`: emit each record the first time it is seen at a time.
//!
//! This is the asynchronous specialization §4.2 calls out: a record is
//! forwarded from `OnRecv` the moment it is first observed, so `distinct`
//! adds no coordination — which is what lets Datalog-style loops built
//! from `Where`/`Concat`/`Distinct`/`Join` run fully asynchronously.
//! Per-time state is reclaimed by a purge notification (§2.4) that never
//! holds back the frontier.

use std::collections::{HashMap, HashSet};

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

use crate::hash_of;

/// Deduplication operators.
pub trait DistinctOps<D: ExchangeData> {
    /// Emits each distinct record once per timestamp, at first sight.
    ///
    /// Records are exchanged by hash so all copies of a record meet at one
    /// worker. Works inside loop contexts: distinctness is per full
    /// timestamp (epoch and loop counters), which is what fixed-point
    /// loops rely on for termination.
    fn distinct(&self) -> Stream<D>;
}

impl<D: ExchangeData + std::hash::Hash + Eq> DistinctOps<D> for Stream<D> {
    fn distinct(&self) -> Stream<D> {
        self.unary_notify(Pact::exchange(|d: &D| hash_of(d)), "Distinct", |_info| {
            let seen: std::rc::Rc<std::cell::RefCell<HashMap<Timestamp, HashSet<D>>>> =
                std::rc::Rc::new(std::cell::RefCell::new(HashMap::new()));
            let recv_seen = seen.clone();
            (
                move |input: &mut InputPort<D>, output: &mut OutputPort<D>, notify: &Notify| {
                    let mut seen = recv_seen.borrow_mut();
                    input.for_each(|time, data| {
                        let set = seen.entry(time).or_insert_with(|| {
                            notify.notify_at_purge(time);
                            HashSet::new()
                        });
                        let mut session = output.session(time);
                        for record in data {
                            if set.insert(record.clone()) {
                                session.give(record);
                            }
                        }
                    });
                },
                // Purge: the time is complete everywhere, free its set.
                move |time: Timestamp, _output: &mut OutputPort<D>, _notify: &Notify| {
                    seen.borrow_mut().remove(&time);
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    #[test]
    fn distinct_dedupes_within_epoch() {
        let out = run_epochs(2, vec![vec![1u64, 2, 1, 1, 2, 3], vec![1, 1]], |s| {
            s.distinct()
        });
        assert_eq!(out, vec![(0, 1), (0, 2), (0, 3), (1, 1)]);
    }

    #[test]
    fn distinct_keeps_epochs_separate() {
        let out = run_epochs(1, vec![vec![5u64], vec![5], vec![5]], |s| s.distinct());
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5)]);
    }
}
