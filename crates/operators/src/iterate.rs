//! Fixed-point iteration: a convenience wrapper over loop contexts.

use naiad::dataflow::ops::concatenate;
use naiad::Stream;
use naiad_wire::ExchangeData;

/// Loop-building conveniences.
pub trait IterateOps<D: ExchangeData> {
    /// Runs `body` inside a loop context: the body sees this stream merged
    /// with its own previous output (one loop counter deeper), and the
    /// body's output both feeds back and leaves the loop.
    ///
    /// Termination comes from the body eventually producing *no records*
    /// for an iteration: bodies that emit only changes (monotonic
    /// aggregates, improvement filters — see the WCC and ASP algorithms)
    /// drain at their fixed point, while bodies that re-emit their full
    /// result every round (naive Datalog evaluation) circulate forever —
    /// per-iteration [`distinct`](crate::DistinctOps::distinct)
    /// deduplicates *within* each iteration, not across them — and need a
    /// `max_iterations` bound.
    fn iterate(
        &self,
        max_iterations: Option<u64>,
        body: impl FnOnce(&Stream<D>) -> Stream<D>,
    ) -> Stream<D>;
}

impl<D: ExchangeData> IterateOps<D> for Stream<D> {
    fn iterate(
        &self,
        max_iterations: Option<u64>,
        body: impl FnOnce(&Stream<D>) -> Stream<D>,
    ) -> Stream<D> {
        let mut scope = self.scope();
        let lc = scope.loop_context(self.context());
        let entered = lc.enter(self);
        let (handle, cycle) = lc.feedback::<D>(max_iterations);
        let merged = concatenate(&entered, &cycle);
        let result = body(&merged);
        handle.connect(&result);
        lc.leave(&result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::testing::run_epochs;

    #[test]
    fn iterate_collatz_until_one() {
        // Iterate the Collatz step until every value reaches 1; emit only
        // fixed points out of the loop by filtering afterwards.
        let out = run_epochs(2, vec![vec![6u64, 7]], |s| {
            s.iterate(Some(64), |inner| {
                inner
                    .map(|x| {
                        if x == 1 {
                            1
                        } else if x % 2 == 0 {
                            x / 2
                        } else {
                            3 * x + 1
                        }
                    })
                    .distinct()
            })
            .filter(|&x| x == 1)
            .distinct()
        });
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn iterate_respects_max_iterations() {
        // Without the bound this doubling loop would diverge; the feedback
        // stage drops records at the limit.
        let out = run_epochs(1, vec![vec![1u64]], |s| {
            s.iterate(Some(4), |inner| inner.map(|x| x * 2))
        });
        // Outputs from every iteration leave the loop: 2, 4, 8, 16 then cut.
        let values: Vec<u64> = out.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![2, 4, 8, 16]);
    }
}
