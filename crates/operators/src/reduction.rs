//! Global reductions: per-epoch folds and the data-parallel AllReduce of
//! §6.2.
//!
//! The AllReduce follows the paper's design: each of `k` workers reduces
//! `1/k` of the vector and broadcasts its slice, rather than reducing over
//! a binary tree like Vowpal Wabbit — the variant the paper credits with
//! its 35% asymptotic improvement on full-bisection clusters.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

/// Whole-stream folds.
pub trait ReductionOps<D: ExchangeData> {
    /// Folds every record of each epoch into one value, emitted at one
    /// worker when the epoch completes.
    fn fold_all<A: ExchangeData>(
        &self,
        init: impl Fn() -> A + 'static,
        fold: impl FnMut(&mut A, D) + 'static,
    ) -> Stream<A>;
}

impl<D: ExchangeData> ReductionOps<D> for Stream<D> {
    fn fold_all<A: ExchangeData>(
        &self,
        init: impl Fn() -> A + 'static,
        mut fold: impl FnMut(&mut A, D) + 'static,
    ) -> Stream<A> {
        self.unary_notify(Pact::exchange(|_d: &D| 0), "FoldAll", move |_info| {
            let accs: Rc<RefCell<HashMap<Timestamp, A>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv_accs = accs.clone();
            (
                move |input: &mut InputPort<D>, _output: &mut OutputPort<A>, notify: &Notify| {
                    let mut accs = recv_accs.borrow_mut();
                    input.for_each(|time, data| {
                        accs.entry(time).or_insert_with(|| {
                            notify.notify_at(time);
                            init()
                        });
                        let acc = accs.get_mut(&time).expect("just inserted");
                        for d in data {
                            fold(acc, d);
                        }
                    });
                },
                move |time: Timestamp, output: &mut OutputPort<A>, _notify: &Notify| {
                    if let Some(acc) = accs.borrow_mut().remove(&time) {
                        output.session(time).give(acc);
                    }
                },
            )
        })
    }
}

/// The data-parallel AllReduce (§6.2).
pub trait AllReduceOps {
    /// Element-wise sums one vector per worker per epoch, delivering the
    /// complete reduced vector to *every* worker when its epoch's
    /// contributions have all arrived.
    ///
    /// Every worker must contribute exactly one vector per epoch, and all
    /// vectors in an epoch must have equal length. Slices are emitted as
    /// soon as the last contribution arrives — count-based, no
    /// coordination — which is what makes the tail latency competitive
    /// with a hand-built MPI-style implementation.
    fn all_reduce_sum(&self) -> Stream<Vec<f64>>;
}

impl AllReduceOps for Stream<Vec<f64>> {
    fn all_reduce_sum(&self) -> Stream<Vec<f64>> {
        // Phase 1: scatter — split each worker's vector into one slice per
        // peer, routed so slice i lands at worker i.
        let slices = self.unary(Pact::Pipeline, "AllReduceSplit", |info| {
            let peers = info.peers as u64;
            move |input: &mut InputPort<Vec<f64>>, output: &mut OutputPort<(u64, u64, Vec<f64>)>| {
                input.for_each(|time, data| {
                    let mut session = output.session(time);
                    for vector in data {
                        let len = vector.len() as u64;
                        for slice in 0..peers {
                            let start = (slice * len / peers) as usize;
                            let end = ((slice + 1) * len / peers) as usize;
                            session.give((slice, len, vector[start..end].to_vec()));
                        }
                    }
                });
            }
        });

        // Phase 2: reduce — worker i sums slice i over all contributions,
        // emitting the moment the count reaches `peers`.
        let reduced = slices.unary(
            Pact::exchange(|(slice, _, _): &(u64, u64, Vec<f64>)| *slice),
            "AllReduceSlice",
            |info| {
                let peers = info.peers;
                let mut partial: HashMap<(Timestamp, u64), (usize, Vec<f64>)> = HashMap::new();
                move |input: &mut InputPort<(u64, u64, Vec<f64>)>,
                      output: &mut OutputPort<(u64, u64, Vec<f64>)>| {
                    input.for_each(|time, data| {
                        let mut session = output.session(time);
                        for (slice, len, values) in data {
                            let entry = partial
                                .entry((time, slice))
                                .or_insert_with(|| (0, vec![0.0; values.len()]));
                            for (acc, v) in entry.1.iter_mut().zip(&values) {
                                *acc += v;
                            }
                            entry.0 += 1;
                            if entry.0 == peers {
                                let (_, summed) =
                                    partial.remove(&(time, slice)).expect("just updated");
                                session.give((slice, len, summed));
                            }
                        }
                    });
                }
            },
        );

        // Phase 3: gather — broadcast reduced slices; every worker
        // reassembles the full vector once all slices arrive.
        reduced.unary(Pact::Broadcast, "AllReduceGather", |info| {
            let peers = info.peers as u64;
            let mut pending: HashMap<Timestamp, Vec<Option<Vec<f64>>>> = HashMap::new();
            move |input: &mut InputPort<(u64, u64, Vec<f64>)>, output: &mut OutputPort<Vec<f64>>| {
                input.for_each(|time, data| {
                    for (slice, len, values) in data {
                        let slots = pending
                            .entry(time)
                            .or_insert_with(|| vec![None; peers as usize]);
                        slots[slice as usize] = Some(values);
                        if slots.iter().all(Option::is_some) {
                            let slots = pending.remove(&time).expect("just filled");
                            let mut full = Vec::with_capacity(len as usize);
                            for s in slots {
                                full.extend(s.expect("all present"));
                            }
                            output.session(time).give(full);
                        }
                    }
                });
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    #[test]
    fn fold_all_sums_an_epoch() {
        let out = crate::testing::run_epochs(3, vec![(1..=10u64).collect(), vec![5]], |s| {
            s.fold_all(|| 0u64, |acc, x| *acc += x)
        });
        assert_eq!(out, vec![(0, 55), (1, 5)]);
    }

    #[test]
    fn all_reduce_delivers_the_sum_everywhere() {
        for workers in [1, 2, 3] {
            let results = execute(Config::single_process(workers), |worker| {
                let (mut input, captured) = worker.dataflow(|scope| {
                    let (input, vectors) = scope.new_input::<Vec<f64>>();
                    let reduced = vectors.all_reduce_sum();
                    (input, reduced.capture())
                });
                let index = worker.index() as f64;
                // Length 7 exercises uneven slicing.
                for epoch in 0..2u64 {
                    input.send((0..7).map(|i| index + i as f64 + epoch as f64).collect());
                    if epoch == 0 {
                        input.advance_to(1);
                    }
                }
                input.close();
                worker.step_until_done();
                let result = captured.borrow().clone();
                result
            })
            .unwrap();
            let w = workers as f64;
            for (worker_out, _) in results.iter().zip(0..) {
                assert_eq!(worker_out.len(), 2, "one vector per epoch");
                for (epoch, vectors) in worker_out {
                    assert_eq!(vectors.len(), 1);
                    let base: f64 = (0..workers as u64).map(|i| i as f64).sum();
                    let expect: Vec<f64> = (0..7)
                        .map(|i| base + w * (i as f64 + *epoch as f64))
                        .collect();
                    assert_eq!(vectors[0], expect, "workers={workers} epoch={epoch}");
                }
            }
        }
    }
}
