//! The Naiad operator library (§4.2): LINQ-like incremental operators and
//! Bloom-style asynchronous operators, built entirely on the public timely
//! dataflow API — no private runtime hooks, exactly as the paper argues
//! libraries should be layered.
//!
//! Most operators come in two flavours, mirroring §2.4's discussion:
//!
//! * *asynchronous* operators ([`distinct`](DistinctOps::distinct),
//!   [`join`](JoinOps::join), [`concat`](ConcatOps::concat), monotonic
//!   [`aggregate`](AggregateOps::aggregate_monotonic)) emit from `OnRecv`
//!   without any coordination and free their state with purge
//!   notifications;
//! * *blocking* operators ([`count`](KeyedOps::count),
//!   [`group_by`](KeyedOps::group_by), [`reduce`](KeyedOps::reduce)) use
//!   `OnNotify` to emit once per completed time, giving the
//!   single-value-per-time guarantee that makes sub-computations
//!   composable.
//!
//! # Examples
//!
//! An incrementally updatable MapReduce, following §4.1's prototypical
//! program:
//!
//! ```
//! use naiad::{execute, Config};
//! use naiad_operators::prelude::*;
//!
//! let counts = execute(Config::single_process(2), |worker| {
//!     let (mut input, captured) = worker.dataflow(|scope| {
//!         let (input, lines) = scope.new_input::<String>();
//!         let counts = lines
//!             .flat_map(|line: String| {
//!                 line.split_whitespace()
//!                     .map(|w| (w.to_string(), 1u64))
//!                     .collect::<Vec<_>>()
//!             })
//!             .count();
//!         (input, counts.capture())
//!     });
//!     if worker.index() == 0 {
//!         input.send("a b a".to_string());
//!     }
//!     input.close();
//!     worker.step_until_done();
//!     let result = captured.borrow().clone();
//!     result
//! })
//! .unwrap();
//! let mut all: Vec<_> = counts.into_iter().flatten().flat_map(|(_, d)| d).collect();
//! all.sort();
//! assert_eq!(all, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
//! ```

#![forbid(unsafe_code)]

// Dataflow state cells are inherently nested (`Rc<RefCell<HashMap<…>>>`);
// naming each shape would add indirection without clarity.
#![allow(clippy::type_complexity)]

mod aggregate;
mod concat;
mod distinct;
mod exchange;
mod iterate;
mod join;
mod keyed;
mod map;
mod reduction;
mod relational;
mod staleness;
mod windows;

pub use aggregate::AggregateOps;
pub use concat::ConcatOps;
pub use distinct::DistinctOps;
pub use exchange::ExchangeOps;
pub use iterate::IterateOps;
pub use join::JoinOps;
pub use keyed::{DistinctCountOps, ExchangeKey, KeyedOps};
pub use map::MapOps;
pub use reduction::{AllReduceOps, ReductionOps};
pub use relational::{NumericOps, RelationalOps};
pub use staleness::StalenessOps;
pub use windows::WindowOps;

/// Everything, for glob import.
pub mod prelude {
    pub use crate::{
        hash_of, AggregateOps, AllReduceOps, ConcatOps, DistinctCountOps, DistinctOps, ExchangeOps,
        IterateOps, JoinOps, KeyedOps, MapOps, NumericOps, ReductionOps, RelationalOps,
        StalenessOps, WindowOps,
    };
    pub use naiad::runtime::Pact;
}

use std::hash::{Hash, Hasher};

/// A deterministic 64-bit hash used as the default partitioning function
/// for keyed operators ("group by" routing, §3.1).
pub fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
pub(crate) mod testing {
    //! Shared helpers for operator tests.

    use naiad::{execute, Config};
    use naiad_wire::ExchangeData;

    /// Runs a single-input dataflow on `workers` workers, feeding each
    /// worker its slice of `epochs` (a list of per-epoch record batches),
    /// and returns the merged, sorted `(epoch, record)` outputs of all
    /// workers.
    pub fn run_epochs<D, D2>(
        workers: usize,
        epochs: Vec<Vec<D>>,
        build: impl Fn(&naiad::Stream<D>) -> naiad::Stream<D2> + Send + Sync + 'static,
    ) -> Vec<(u64, D2)>
    where
        D: ExchangeData + Sync,
        D2: ExchangeData + Ord,
    {
        let epochs_shared = std::sync::Arc::new(epochs);
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<D>();
                let out = build(&stream);
                (input, out.capture())
            });
            let peers = worker.peers();
            let index = worker.index();
            for (e, records) in epochs_shared.iter().enumerate() {
                for (i, r) in records.iter().enumerate() {
                    if i % peers == index {
                        input.send(r.clone());
                    }
                }
                if e + 1 < epochs_shared.len() {
                    input.advance_to(e as u64 + 1);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut merged: Vec<(u64, D2)> = results
            .into_iter()
            .flatten()
            .flat_map(|(epoch, data)| data.into_iter().map(move |d| (epoch, d)))
            .collect();
        merged.sort();
        merged
    }
}
