//! Joins: the asynchronous per-time equijoin of §4.2 (suitable for
//! Datalog-style loops) and an accumulating variant for continually
//! growing relations (the Kineograph-style workloads of §6.3–§6.4).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

use crate::hash_of;
use crate::keyed::ExchangeKey;

/// Join operators over `(key, value)` streams.
pub trait JoinOps<K: ExchangeKey, V1: ExchangeData> {
    /// Per-time equijoin: pairs `(k, v1)` with every `(k, v2)` bearing the
    /// *same timestamp*. Matches are emitted from `OnRecv` as records
    /// arrive (no coordination); per-time state is freed by a purge
    /// notification.
    fn join<V2: ExchangeData, R: ExchangeData>(
        &self,
        other: &Stream<(K, V2)>,
        result: impl FnMut(&K, &V1, &V2) -> R + 'static,
    ) -> Stream<R>;

    /// Accumulating equijoin over top-level streams: pairs `(k, v1)` with
    /// every `(k, v2)` of any epoch, on either side. State grows
    /// monotonically — the paper's incremental applications (§6.4) join
    /// fresh records against an ever-growing relation, without retraction.
    ///
    /// Each match is emitted exactly once, at the *later* of the two
    /// records' epochs, so per-epoch outputs reflect exactly the matches
    /// that epoch completes.
    fn join_accumulate<V2: ExchangeData, R: ExchangeData>(
        &self,
        other: &Stream<(K, V2)>,
        result: impl FnMut(&K, &V1, &V2) -> R + 'static,
    ) -> Stream<R>;
}

impl<K: ExchangeKey, V1: ExchangeData> JoinOps<K, V1> for Stream<(K, V1)> {
    fn join<V2: ExchangeData, R: ExchangeData>(
        &self,
        other: &Stream<(K, V2)>,
        mut result: impl FnMut(&K, &V1, &V2) -> R + 'static,
    ) -> Stream<R> {
        type Sides<K, V1, V2> = (HashMap<K, Vec<V1>>, HashMap<K, Vec<V2>>);
        self.binary_notify(
            other,
            Pact::exchange(|(k, _): &(K, V1)| hash_of(k)),
            Pact::exchange(|(k, _): &(K, V2)| hash_of(k)),
            "Join",
            move |_info| {
                let state: Rc<RefCell<HashMap<Timestamp, Sides<K, V1, V2>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let recv_state = state.clone();
                (
                    move |left: &mut InputPort<(K, V1)>,
                          right: &mut InputPort<(K, V2)>,
                          output: &mut OutputPort<R>,
                          notify: &Notify| {
                        let mut state = recv_state.borrow_mut();
                        left.for_each(|time, data| {
                            let (lefts, rights) = state.entry(time).or_insert_with(|| {
                                notify.notify_at_purge(time);
                                (HashMap::new(), HashMap::new())
                            });
                            let mut session = output.session(time);
                            for (k, v1) in data {
                                if let Some(v2s) = rights.get(&k) {
                                    for v2 in v2s {
                                        session.give(result(&k, &v1, v2));
                                    }
                                }
                                lefts.entry(k).or_default().push(v1);
                            }
                        });
                        right.for_each(|time, data| {
                            let (lefts, rights) = state.entry(time).or_insert_with(|| {
                                notify.notify_at_purge(time);
                                (HashMap::new(), HashMap::new())
                            });
                            let mut session = output.session(time);
                            for (k, v2) in data {
                                if let Some(v1s) = lefts.get(&k) {
                                    for v1 in v1s {
                                        session.give(result(&k, v1, &v2));
                                    }
                                }
                                rights.entry(k).or_default().push(v2);
                            }
                        });
                    },
                    move |time: Timestamp, _output: &mut OutputPort<R>, _notify: &Notify| {
                        state.borrow_mut().remove(&time);
                    },
                )
            },
        )
    }

    fn join_accumulate<V2: ExchangeData, R: ExchangeData>(
        &self,
        other: &Stream<(K, V2)>,
        mut result: impl FnMut(&K, &V1, &V2) -> R + 'static,
    ) -> Stream<R> {
        self.binary(
            other,
            Pact::exchange(|(k, _): &(K, V1)| hash_of(k)),
            Pact::exchange(|(k, _): &(K, V2)| hash_of(k)),
            "JoinAccumulate",
            move |info| {
                let lefts: Rc<RefCell<HashMap<K, Vec<(V1, u64)>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                let rights: Rc<RefCell<HashMap<K, Vec<(V2, u64)>>>> =
                    Rc::new(RefCell::new(HashMap::new()));
                // The accumulated relation persists across epochs, so both
                // sides are registered for checkpointing (§3.4) — keyed by
                // the exchange hash, so rescales can re-partition them.
                info.register_keyed_state(lefts.clone(), |k: &K| hash_of(k));
                info.register_keyed_state(rights.clone(), |k: &K| hash_of(k));
                move |left: &mut InputPort<(K, V1)>,
                      right: &mut InputPort<(K, V2)>,
                      output: &mut OutputPort<R>| {
                    let mut lefts = lefts.borrow_mut();
                    let mut rights = rights.borrow_mut();
                    left.for_each(|time, data| {
                        for (k, v1) in data {
                            if let Some(v2s) = rights.get(&k) {
                                for (v2, e2) in v2s {
                                    // A match belongs to the epoch that
                                    // completed it, not the epoch of
                                    // whichever record arrived second.
                                    let epoch = time.epoch.max(*e2);
                                    output
                                        .session(Timestamp::new(epoch))
                                        .give(result(&k, &v1, v2));
                                }
                            }
                            lefts.entry(k).or_default().push((v1, time.epoch));
                        }
                    });
                    right.for_each(|time, data| {
                        for (k, v2) in data {
                            if let Some(v1s) = lefts.get(&k) {
                                for (v1, e1) in v1s {
                                    let epoch = time.epoch.max(*e1);
                                    output
                                        .session(Timestamp::new(epoch))
                                        .give(result(&k, v1, &v2));
                                }
                            }
                            rights.entry(k).or_default().push((v2, time.epoch));
                        }
                    });
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    #[test]
    fn per_time_join_matches_within_epoch_only() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut names, mut ages, captured) = worker.dataflow(|scope| {
                let (names_in, names) = scope.new_input::<(u64, String)>();
                let (ages_in, ages) = scope.new_input::<(u64, u64)>();
                let joined = names.join(&ages, |k, name, age| (*k, name.clone(), *age));
                (names_in, ages_in, joined.capture())
            });
            if worker.index() == 0 {
                names.send((1, "ann".into()));
                names.send((2, "bob".into()));
                ages.send((1, 30));
                names.advance_to(1);
                ages.advance_to(1);
                // Epoch 1: the age for key 2 arrives too late to meet the
                // epoch-0 name.
                ages.send((2, 40));
            }
            names.close();
            ages.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let all: Vec<_> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        assert_eq!(all, vec![(1, "ann".to_string(), 30)]);
    }

    #[test]
    fn accumulating_join_matches_across_epochs() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut names, mut ages, captured) = worker.dataflow(|scope| {
                let (names_in, names) = scope.new_input::<(u64, String)>();
                let (ages_in, ages) = scope.new_input::<(u64, u64)>();
                let joined = names.join_accumulate(&ages, |k, name, age| (*k, name.clone(), *age));
                (names_in, ages_in, joined.capture())
            });
            if worker.index() == 0 {
                names.send((1, "ann".into()));
                names.send((2, "bob".into()));
                names.advance_to(1);
                ages.advance_to(1);
                ages.send((2, 40));
                ages.send((1, 30));
            }
            names.close();
            ages.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<_> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        all.sort();
        assert_eq!(
            all,
            vec![(1, "ann".to_string(), 30), (2, "bob".to_string(), 40)]
        );
    }
}
