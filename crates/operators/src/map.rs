//! Record-at-a-time transformations: `map` (LINQ `Select`), `flat_map`
//! (`SelectMany`), `filter` (`Where`), and `filter_map`.
//!
//! None of these buffer or coordinate: they transform and forward from
//! `OnRecv`, like the specialized `Select` implementation §4.2 describes.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;
use naiad_wire::ExchangeData;

/// Stateless per-record operators.
pub trait MapOps<D: ExchangeData> {
    /// Applies `logic` to every record (LINQ `Select`).
    fn map<D2: ExchangeData>(&self, logic: impl FnMut(D) -> D2 + 'static) -> Stream<D2>;

    /// Applies `logic` and flattens the results (LINQ `SelectMany`).
    fn flat_map<D2: ExchangeData, I: IntoIterator<Item = D2>>(
        &self,
        logic: impl FnMut(D) -> I + 'static,
    ) -> Stream<D2>;

    /// Keeps records satisfying `predicate` (LINQ `Where`).
    fn filter(&self, predicate: impl FnMut(&D) -> bool + 'static) -> Stream<D>;

    /// Applies `logic`, keeping only `Some` results.
    fn filter_map<D2: ExchangeData>(
        &self,
        logic: impl FnMut(D) -> Option<D2> + 'static,
    ) -> Stream<D2>;
}

impl<D: ExchangeData> MapOps<D> for Stream<D> {
    fn map<D2: ExchangeData>(&self, mut logic: impl FnMut(D) -> D2 + 'static) -> Stream<D2> {
        self.unary(Pact::Pipeline, "Map", move |_info| {
            move |input: &mut InputPort<D>, output: &mut OutputPort<D2>| {
                input.for_each_batch(|time, data| {
                    output
                        .session(time)
                        .give_iterator(data.drain(..).map(&mut logic));
                });
            }
        })
    }

    fn flat_map<D2: ExchangeData, I: IntoIterator<Item = D2>>(
        &self,
        mut logic: impl FnMut(D) -> I + 'static,
    ) -> Stream<D2> {
        self.unary(Pact::Pipeline, "FlatMap", move |_info| {
            move |input: &mut InputPort<D>, output: &mut OutputPort<D2>| {
                input.for_each_batch(|time, data| {
                    let mut session = output.session(time);
                    for record in data.drain(..) {
                        session.give_iterator(logic(record));
                    }
                });
            }
        })
    }

    fn filter(&self, mut predicate: impl FnMut(&D) -> bool + 'static) -> Stream<D> {
        self.unary(Pact::Pipeline, "Filter", move |_info| {
            move |input: &mut InputPort<D>, output: &mut OutputPort<D>| {
                input.for_each_batch(|time, data| {
                    data.retain(&mut predicate);
                    if !data.is_empty() {
                        output.session(time).give_container(data);
                    }
                });
            }
        })
    }

    fn filter_map<D2: ExchangeData>(
        &self,
        mut logic: impl FnMut(D) -> Option<D2> + 'static,
    ) -> Stream<D2> {
        self.unary(Pact::Pipeline, "FilterMap", move |_info| {
            move |input: &mut InputPort<D>, output: &mut OutputPort<D2>| {
                input.for_each_batch(|time, data| {
                    output
                        .session(time)
                        .give_iterator(data.drain(..).filter_map(&mut logic));
                });
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_epochs;

    #[test]
    fn map_transforms_each_record() {
        let out = run_epochs(2, vec![vec![1u64, 2, 3], vec![4]], |s| s.map(|x| x * 10));
        assert_eq!(out, vec![(0, 10), (0, 20), (0, 30), (1, 40)]);
    }

    #[test]
    fn flat_map_expands_and_flattens() {
        let out = run_epochs(1, vec![vec![2u64, 3]], |s| {
            s.flat_map(|x| (0..x).collect::<Vec<_>>())
        });
        assert_eq!(out, vec![(0, 0), (0, 0), (0, 1), (0, 1), (0, 2)]);
    }

    #[test]
    fn filter_keeps_matching() {
        let out = run_epochs(2, vec![(0..10u64).collect()], |s| s.filter(|x| x % 3 == 0));
        assert_eq!(out, vec![(0, 0), (0, 3), (0, 6), (0, 9)]);
    }

    #[test]
    fn filter_map_combines_both() {
        let out = run_epochs(1, vec![vec![1u64, 2, 3, 4]], |s| {
            s.filter_map(|x| (x % 2 == 0).then_some(x * 100))
        });
        assert_eq!(out, vec![(0, 200), (0, 400)]);
    }
}
