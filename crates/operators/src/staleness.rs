//! Bounded staleness (§2.4): notifications with a capability time *before*
//! the guarantee time, used to constrain otherwise asynchronous loops.
//!
//! The paper observes that a notification's guarantee time `tg` and
//! capability time `tc` can be decoupled; with `tc < tg` one can implement
//! "bounded staleness", guaranteeing the system does not proceed more than
//! a defined number of iterations beyond any incomplete iteration. This
//! operator realizes that: records of iteration `c ≥ k` are withheld until
//! iteration `c − k` has completed, turning a free-running asynchronous
//! loop into a `k`-bounded one.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_wire::ExchangeData;

/// Staleness control for loop streams.
pub trait StalenessOps<D: ExchangeData> {
    /// Forwards records of loop iteration `c` only once iteration `c − k`
    /// is complete. `k = 1` yields fully synchronous iterations; larger
    /// `k` permits bounded pipelining (the "bounded staleness" of §2.4).
    ///
    /// # Panics
    ///
    /// Panics (at runtime, when data flows) if the stream is not inside a
    /// loop context, or if `k` is zero.
    fn bounded_staleness(&self, k: u64) -> Stream<D>;
}

impl<D: ExchangeData> StalenessOps<D> for Stream<D> {
    fn bounded_staleness(&self, k: u64) -> Stream<D> {
        assert!(k > 0, "a staleness bound of zero would deadlock the loop");
        self.unary_notify(Pact::Pipeline, "BoundedStaleness", move |_info| {
            let held: Rc<RefCell<HashMap<Timestamp, Vec<D>>>> =
                Rc::new(RefCell::new(HashMap::new()));
            let recv_held = held.clone();
            (
                move |input: &mut InputPort<D>, output: &mut OutputPort<D>, notify: &Notify| {
                    input.for_each(|time, data| {
                        let counters = time.counters.as_slice();
                        let c = *counters
                            .last()
                            .expect("bounded_staleness requires a loop context");
                        if c < k {
                            // Within the allowed lead: pass through.
                            output.session(time).give_vec(data);
                        } else {
                            // Hold until iteration c − k completes. The
                            // notification's guarantee time is the earlier
                            // iteration; its "capability" is exercised at
                            // the later time we emit at — tc > tg is always
                            // legal, and here it is what bounds the lead.
                            let mut gate = time;
                            gate.counters = gate
                                .counters
                                .popped()
                                .expect("loop counter present")
                                .pushed(c - k);
                            let mut held = recv_held.borrow_mut();
                            let first = !held.contains_key(&time);
                            held.entry(time).or_default().extend(data);
                            if first {
                                notify.notify_at(gate);
                            }
                        }
                    });
                },
                move |gate: Timestamp, output: &mut OutputPort<D>, _notify: &Notify| {
                    // Iteration `gate` is complete: release `gate + k`.
                    let counters = gate.counters.as_slice();
                    let c = *counters.last().expect("loop counter present");
                    let mut release = gate;
                    release.counters = release
                        .counters
                        .popped()
                        .expect("loop counter present")
                        .pushed(c + k);
                    if let Some(data) = held.borrow_mut().remove(&release) {
                        output.session(release).give_vec(data);
                    }
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use naiad::{execute, Config};

    /// A free-running doubling loop, bounded to one-iteration lead: the
    /// output must be correct, and downstream must observe iteration
    /// counters in non-decreasing order (the synchronization the bound
    /// buys).
    #[test]
    fn bounded_loop_is_ordered_and_correct() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut input, order, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::<u64>::new()));
                let seen = order.clone();
                let out = stream.iterate(Some(32), |inner| {
                    let bounded = inner.bounded_staleness(1);
                    bounded
                        .inspect(move |time, _| {
                            seen.borrow_mut()
                                .push(*time.counters.as_slice().last().unwrap());
                        })
                        .map(|x| if x < 64 { x * 2 } else { x })
                        .distinct()
                });
                let captured = out.filter(|&x| x >= 64).distinct().capture();
                (input, order, captured)
            });
            if worker.index() == 0 {
                input.send_batch([3, 5]);
            }
            input.close();
            worker.step_until_done();
            let result = (order.borrow().clone(), captured.borrow().clone());
            result
        })
        .unwrap();
        let mut finals: Vec<u64> = results
            .iter()
            .flat_map(|(_, cap)| cap.iter().flat_map(|(_, d)| d.iter().copied()))
            .collect();
        finals.sort_unstable();
        assert_eq!(finals, vec![80, 96]);
        for (order, _) in &results {
            for pair in order.windows(2) {
                assert!(
                    pair[0] <= pair[1],
                    "iteration counters regressed under k = 1: {order:?}"
                );
            }
        }
    }

    #[test]
    fn zero_bound_is_rejected() {
        // The assertion fires on the worker thread, which `execute`
        // surfaces as a WorkerPanic.
        let result = execute(Config::single_process(1), |worker| {
            worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let out = stream.iterate(Some(4), |inner| inner.bounded_staleness(0));
                let _ = out.probe();
                input
            });
        });
        assert!(matches!(
            result,
            Err(naiad::runtime::ExecuteError::WorkerPanic(0))
        ));
    }
}
