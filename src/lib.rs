//! Shared helpers for the repository's examples and integration tests.
//!
//! The substance lives in the workspace crates (see `crates/`); this root
//! package exists to host the runnable examples (`cargo run --example
//! quickstart`) and the cross-crate integration tests (`cargo test`).

#![forbid(unsafe_code)]

/// Splits `items` round-robin across `peers` workers and returns the slice
/// for `index` — the feeding pattern every example uses.
pub fn my_share<T: Clone>(items: &[T], index: usize, peers: usize) -> Vec<T> {
    items
        .iter()
        .enumerate()
        .filter(|(i, _)| i % peers == index)
        .map(|(_, item)| item.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_partition_everything_exactly_once() {
        let items: Vec<u32> = (0..10).collect();
        let mut all: Vec<u32> = (0..3).flat_map(|w| my_share(&items, w, 3)).collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }
}
